//! Device-heterogeneity walkthrough: how differently six phones see the
//! same building, and how SAFELOC's detector tolerates them while flagging
//! actual poison.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example heterogeneous_fleet
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use safeloc::{RceMode, SafeLoc, SafeLocConfig};
use safeloc_attacks::Attack;
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::Framework;

fn main() {
    let data = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 3);

    println!("device fleet:");
    for d in &data.devices {
        println!(
            "  {:20} offset {:+.1} dB, scale {:.2}, sensitivity {:.1} dBm, per-AP gain σ {:.1} dB",
            d.name, d.offset_db, d.scale, d.sensitivity_dbm, d.ap_gain_db
        );
    }

    let mut framework = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::default_scale(3),
    );
    framework.pretrain(&data.server_train);
    let threshold = framework.effective_threshold();
    println!(
        "\ndetector: clean baseline {:.3}, effective threshold {:.3} (tau = {})\n",
        framework.rce_baseline(),
        threshold,
        framework.tau()
    );

    println!("clean data per device — accuracy and flag rate:");
    for (i, set) in data.eval_sets() {
        let out = framework
            .network()
            .predict_with_detection(&set.x, threshold, RceMode::Relative);
        let acc = out
            .labels
            .iter()
            .zip(&set.labels)
            .filter(|(a, b)| a == b)
            .count() as f32
            / set.labels.len() as f32;
        let flagged = out.flagged.iter().filter(|&&f| f).count();
        println!(
            "  {:20} accuracy {:.1}%, flagged {:>3}/{}",
            data.devices[i].name,
            acc * 100.0,
            flagged,
            set.len()
        );
    }

    println!("\nFGSM-poisoned data (eps sweep) — flag rate:");
    let clean = &data.client_test[0];
    for eps in [0.05f32, 0.1, 0.2, 0.4] {
        let mut rng = StdRng::seed_from_u64(5);
        let (px, _) = Attack::fgsm(eps).poison(
            &clean.x,
            &clean.labels,
            framework.network(),
            data.building.num_rps(),
            &mut rng,
        );
        let out = framework
            .network()
            .predict_with_detection(&px, threshold, RceMode::Relative);
        let flagged = out.flagged.iter().filter(|&&f| f).count();
        println!("  eps {eps:.2}: flagged {flagged:>3}/{}", px.rows());
    }
}
