//! Side-by-side defense demo: the same boosted label-flipping attacker
//! against (1) the undefended FEDLOC baseline, (2) a defense composed
//! from pipeline parts — norm clipping in front of Krum selection — on
//! the *same* FEDLOC architecture, and (3) the full SAFELOC framework.
//!
//! The middle contender is the point of the defense-pipeline API: a
//! layered robust-aggregation strategy is a value built from stages and a
//! combiner (`DefensePipeline`), swapped into a server with
//! `set_aggregator` — no new framework type required. The round reports
//! then attribute rejections to the stage that made them.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example poisoning_defense
//! ```

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_baselines::FedLoc;
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceProfile};
use safeloc_fl::defense::{DefensePipeline, NormClip};
use safeloc_fl::{pooled_stage_telemetry, Client, FlSession, Framework, Krum, ServerConfig};
use safeloc_metrics::{localization_errors, ErrorStats};

fn attacked_mean(mut framework: Box<dyn Framework>, data: &BuildingDataset, rounds: usize) -> f32 {
    framework.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(data, 11);
    let attacker = DeviceProfile::ATTACKER_DEVICE;
    clients[attacker].injector =
        Some(PoisonInjector::new(Attack::label_flip(0.8), 11).with_boost(6.0));
    let mut session = FlSession::builder(framework).clients(clients).build();
    session.run(rounds);
    if let Some(rate) = session.attacker_rejection_rate() {
        println!(
            "  (attacker updates rejected in {:.0}% of rounds)",
            rate * 100.0
        );
    }
    // Per-stage attribution from the round reports: which stage of the
    // defense pipeline did the rejecting, and what it cost per round.
    for stage in pooled_stage_telemetry(session.reports().iter()) {
        println!(
            "  (stage {}: {} rejections, {:.2} ms/round)",
            stage.stage, stage.rejections, stage.wall_ms
        );
    }
    let mut errors = Vec::new();
    for (_, set) in data.eval_sets() {
        let pred = session.framework().predict(&set.x);
        errors.extend(localization_errors(&data.building, &pred, &set.labels));
    }
    ErrorStats::from_errors(&errors).mean
}

fn main() {
    let data = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 11);
    let rounds = 6;
    println!(
        "label-flipping attacker (HTC U11, flip fraction 0.8, boosted) over {rounds} rounds\n"
    );

    let aps = data.building.num_aps();
    let rps = data.building.num_rps();

    let fedloc = FedLoc::new(aps, rps, ServerConfig::default_scale(11));
    let fedloc_mean = attacked_mean(Box::new(fedloc), &data, rounds);
    println!("FEDLOC  (FedAvg, no defense): mean error {fedloc_mean:.2} m\n");

    // The same FEDLOC architecture, but its server-side defense replaced
    // by a composed pipeline: clip update norms at 3x the round median,
    // then Krum-select among the bounded survivors.
    let mut composed = FedLoc::new(aps, rps, ServerConfig::default_scale(11));
    composed
        .set_aggregator(Box::new(DefensePipeline::new(
            "norm-clip+krum",
            vec![Box::new(NormClip::new(3.0))],
            Box::new(Krum::new(1)),
        )))
        .expect("FEDLOC supports defense replacement");
    let composed_mean = attacked_mean(Box::new(composed), &data, rounds);
    println!("FEDLOC + norm-clip→Krum pipeline: mean error {composed_mean:.2} m\n");

    let safeloc = SafeLoc::new(aps, rps, SafeLocConfig::default_scale(11));
    let safeloc_mean = attacked_mean(Box::new(safeloc), &data, rounds);
    println!("SAFELOC (saliency + de-noise): mean error {safeloc_mean:.2} m");

    println!(
        "\nvs undefended FedAvg ({fedloc_mean:.2} m): SAFELOC {safeloc_mean:.2} m, \
         composed norm-clip→Krum {composed_mean:.2} m — a layered defense is one \
         `DefensePipeline` value, not a new framework"
    );
}
