//! Side-by-side defense demo: the same label-flipping attacker against
//! SAFELOC and against the undefended FEDLOC baseline.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example poisoning_defense
//! ```

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_baselines::FedLoc;
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceProfile};
use safeloc_fl::{Client, FlSession, Framework, ServerConfig};
use safeloc_metrics::{localization_errors, ErrorStats};

fn attacked_mean(mut framework: Box<dyn Framework>, data: &BuildingDataset, rounds: usize) -> f32 {
    framework.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(data, 11);
    let attacker = DeviceProfile::ATTACKER_DEVICE;
    clients[attacker].injector =
        Some(PoisonInjector::new(Attack::label_flip(0.8), 11).with_boost(6.0));
    let mut session = FlSession::builder(framework).clients(clients).build();
    session.run(rounds);
    if let Some(rate) = session.attacker_rejection_rate() {
        println!(
            "  (attacker updates rejected in {:.0}% of rounds)",
            rate * 100.0
        );
    }
    let mut errors = Vec::new();
    for (_, set) in data.eval_sets() {
        let pred = session.framework().predict(&set.x);
        errors.extend(localization_errors(&data.building, &pred, &set.labels));
    }
    ErrorStats::from_errors(&errors).mean
}

fn main() {
    let data = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 11);
    let rounds = 6;
    println!(
        "label-flipping attacker (HTC U11, flip fraction 0.8, boosted) over {rounds} rounds\n"
    );

    let fedloc = FedLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        ServerConfig::default_scale(11),
    );
    let fedloc_mean = attacked_mean(Box::new(fedloc), &data, rounds);
    println!("FEDLOC  (FedAvg, no defense): mean error {fedloc_mean:.2} m");

    let safeloc = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::default_scale(11),
    );
    let safeloc_mean = attacked_mean(Box::new(safeloc), &data, rounds);
    println!("SAFELOC (saliency + de-noise): mean error {safeloc_mean:.2} m");

    println!(
        "\nSAFELOC is {:.1}x more accurate under this attack",
        fedloc_mean / safeloc_mean.max(1e-6)
    );
}
