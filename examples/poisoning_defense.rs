//! Side-by-side defense demo: the same label-flipping attacker against
//! SAFELOC and against the undefended FEDLOC baseline.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example poisoning_defense
//! ```

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_baselines::FedLoc;
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceProfile};
use safeloc_fl::{Client, Framework, ServerConfig};
use safeloc_metrics::{localization_errors, ErrorStats};

fn attacked_mean(framework: &mut dyn Framework, data: &BuildingDataset, rounds: usize) -> f32 {
    framework.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(data, 11);
    let attacker = DeviceProfile::ATTACKER_DEVICE;
    clients[attacker].injector =
        Some(PoisonInjector::new(Attack::label_flip(0.8), 11).with_boost(6.0));
    framework.run_rounds(&mut clients, rounds);
    let mut errors = Vec::new();
    for (_, set) in data.eval_sets() {
        let pred = framework.predict(&set.x);
        errors.extend(localization_errors(&data.building, &pred, &set.labels));
    }
    ErrorStats::from_errors(&errors).mean
}

fn main() {
    let data = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 11);
    let rounds = 6;
    println!(
        "label-flipping attacker (HTC U11, flip fraction 0.8, boosted) over {rounds} rounds\n"
    );

    let mut fedloc = FedLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        ServerConfig::default_scale(11),
    );
    let fedloc_mean = attacked_mean(&mut fedloc, &data, rounds);
    println!("FEDLOC  (FedAvg, no defense): mean error {fedloc_mean:.2} m");

    let mut safeloc = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::default_scale(11),
    );
    let safeloc_mean = attacked_mean(&mut safeloc, &data, rounds);
    println!("SAFELOC (saliency + de-noise): mean error {safeloc_mean:.2} m");

    println!(
        "\nSAFELOC is {:.1}x more accurate under this attack",
        fedloc_mean / safeloc_mean.max(1e-6)
    );
}
