//! Quickstart: train SAFELOC on a small synthetic building, run a
//! federated session with one malicious client and partial participation,
//! and read the round-by-round defense telemetry.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example quickstart
//! ```

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Client, ClientOutcome, CohortSampler, FlSession, Framework};
use safeloc_metrics::{localization_errors, ErrorStats};

fn main() {
    // 1. A synthetic building: reference points on a 1 m walking path,
    //    Wi-Fi APs with log-distance propagation, six heterogeneous phones.
    let data = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 7);
    println!(
        "building {} — {} reference points, {} visible APs, {} client phones",
        data.building.id,
        data.building.num_rps(),
        data.building.num_aps(),
        data.num_clients()
    );

    // 2. SAFELOC: fused autoencoder+classifier, RCE detection, saliency
    //    aggregation. The config mirrors the paper's hyperparameters at a
    //    scaled-down epoch count.
    let mut framework = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::default_scale(7),
    );
    println!(
        "SAFELOC fused network: {} parameters, tau = {}",
        framework.num_params(),
        framework.tau()
    );

    // 3. Server-side pretraining on the survey split (Motorola Z2).
    framework.pretrain(&data.server_train);
    println!(
        "pretrained; clean RCE baseline = {:.3}",
        framework.rce_baseline()
    );

    // 4. A federated session with the HTC U11 compromised by a
    //    label-flipping attacker. Unlike the paper's everyone-every-round
    //    protocol, this session samples a 5-of-6 cohort per round and lets
    //    clients drop out 10% of the time — the production regime.
    let mut clients = Client::from_dataset(&data, 7);
    clients[5].injector = Some(PoisonInjector::new(Attack::label_flip(0.8), 7).with_boost(6.0));
    let mut session = FlSession::builder(Box::new(framework))
        .clients(clients)
        .sampler(CohortSampler::uniform(5, 7).with_dropout(0.1))
        .build();

    // 5. Every round yields a RoundReport: who was sampled, who dropped
    //    out, and what the defense decided about each delivered update.
    //    Saliency aggregation never rejects outright — it *weights* — so
    //    the attacker shows up with a collapsed acceptance weight.
    println!("\nround-by-round telemetry:");
    for _ in 0..4 {
        let report = session.next_round();
        println!("  {report}");
        for c in &report.clients {
            let tag = if c.malicious { " <- attacker" } else { "" };
            match &c.outcome {
                ClientOutcome::Trained { weight } => {
                    println!(
                        "      client {}: accepted, weight {weight:.3}{tag}",
                        c.client_id
                    )
                }
                ClientOutcome::Rejected { rule, score } => println!(
                    "      client {}: rejected by {rule} (score {score:.3}){tag}",
                    c.client_id
                ),
                ClientOutcome::DroppedOut => {
                    println!("      client {}: dropped out{tag}", c.client_id)
                }
                ClientOutcome::Straggled => {
                    println!("      client {}: straggled past deadline{tag}", c.client_id)
                }
            }
        }
    }
    if let Some(w) = session
        .reports()
        .iter()
        .filter_map(|r| r.mean_attacker_weight())
        .next_back()
    {
        println!("\nattacker mean saliency weight (last round it appeared): {w:.3}");
    }

    // 6. Evaluate localization error on the five non-training phones.
    let mut errors = Vec::new();
    for (device, set) in data.eval_sets() {
        let pred = session.framework().predict(&set.x);
        let device_errors = localization_errors(&data.building, &pred, &set.labels);
        let stats = ErrorStats::from_errors(&device_errors);
        println!("  {} — {}", data.devices[device].name, stats);
        errors.extend(device_errors);
    }
    let overall = ErrorStats::from_errors(&errors);
    println!("overall under attack: {overall}");
}
