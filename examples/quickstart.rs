//! Quickstart: train SAFELOC on a small synthetic building, run federated
//! rounds with one malicious client, and localize.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example quickstart
//! ```

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Client, Framework};
use safeloc_metrics::{localization_errors, ErrorStats};

fn main() {
    // 1. A synthetic building: reference points on a 1 m walking path,
    //    Wi-Fi APs with log-distance propagation, six heterogeneous phones.
    let data = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 7);
    println!(
        "building {} — {} reference points, {} visible APs, {} client phones",
        data.building.id,
        data.building.num_rps(),
        data.building.num_aps(),
        data.num_clients()
    );

    // 2. SAFELOC: fused autoencoder+classifier, RCE detection, saliency
    //    aggregation. The config mirrors the paper's hyperparameters at a
    //    scaled-down epoch count.
    let mut framework = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::default_scale(7),
    );
    println!(
        "SAFELOC fused network: {} parameters, tau = {}",
        framework.num_params(),
        framework.tau()
    );

    // 3. Server-side pretraining on the survey split (Motorola Z2).
    framework.pretrain(&data.server_train);
    println!(
        "pretrained; clean RCE baseline = {:.3}",
        framework.rce_baseline()
    );

    // 4. Federated rounds with the HTC U11 compromised by a label-flipping
    //    attacker.
    let mut clients = Client::from_dataset(&data, 7);
    clients[5].injector = Some(PoisonInjector::new(Attack::label_flip(0.8), 7).with_boost(6.0));
    framework.run_rounds(&mut clients, 4);

    // 5. Evaluate localization error on the five non-training phones.
    let mut errors = Vec::new();
    for (device, set) in data.eval_sets() {
        let pred = framework.predict(&set.x);
        let device_errors = localization_errors(&data.building, &pred, &set.labels);
        let stats = ErrorStats::from_errors(&device_errors);
        println!("  {} — {}", data.devices[device].name, stats);
        errors.extend(device_errors);
    }
    let overall = ErrorStats::from_errors(&errors);
    println!("overall under attack: {overall}");
}
