//! Scenario-suite engine walkthrough: declare a grid, run it, read the
//! per-cell defense telemetry — the same machinery behind every `fig*` and
//! `table*` binary and the checked-in `scenarios/` specs.
//!
//! Runs on tiny synthetic buildings so it finishes in seconds:
//!
//! ```text
//! cargo run --release --example scenario_suite
//! ```

use safeloc_repro::attacks::Attack;
use safeloc_repro::bench::{
    AttackSpec, FrameworkSpec, HarnessConfig, ParticipationSpec, Scale, ScenarioSpec, SuiteRunner,
};
use safeloc_repro::dataset::{Building, BuildingDataset, DatasetConfig};

fn main() {
    // One declarative spec instead of hand-rolled sweep loops: the grid is
    // frameworks × buildings × fleets × attacks × participation × seeds.
    let mut spec = ScenarioSpec::new(
        "example",
        vec![FrameworkSpec::Krum, FrameworkSpec::FedLoc],
        vec![AttackSpec::clean(), AttackSpec::of(Attack::label_flip(1.0))],
    );
    spec.description = "Krum vs undefended FedAvg under shrinking cohorts".into();
    spec.buildings = vec![4];
    spec.rounds = 3;
    spec.boost = Some(4.0);
    spec.participation = vec![
        ParticipationSpec::full(),
        ParticipationSpec::fraction(0.67).with_churn(0.1, 0.0),
    ];

    let cfg = HarnessConfig {
        scale: Scale::Quick,
        seed: 7,
    };
    // The default runner generates the paper's buildings; the example swaps
    // in tiny ones so it runs in seconds.
    let mut runner = SuiteRunner::new(cfg, spec).with_dataset_builder(|building, _fleet, seed| {
        BuildingDataset::generate(
            Building::tiny(building as u64),
            &DatasetConfig::tiny(),
            seed,
        )
    });

    println!(
        "expanding {} cells at {:?} scale\n",
        runner.cells().len(),
        cfg.scale
    );
    let run = runner.run();

    // Every cell carries errors, accuracy and the defense decision trail.
    println!("\n{}", run.markdown());

    // Per-rule rejection statistics answer "which rule caught the attacker,
    // and what did it cost the honest clients?"
    for cell in &run.cells {
        for rule in cell.rule_stats() {
            println!(
                "{} / {}: rule {:?} rejected {} attacker + {} honest deliveries",
                cell.cell.framework.label(),
                cell.cell.participation.label(cell.fleet_size),
                rule.rule,
                rule.attacker_rejections,
                rule.honest_rejections,
            );
        }
    }

    // The whole suite serializes for regression tracking (the `suite` bin
    // writes this next to BENCH_nn.json; CI uploads it as an artifact).
    let report = run.report();
    println!(
        "\nSuiteReport: {} cells, schema {}",
        report.cells.len(),
        report.schema
    );
}
