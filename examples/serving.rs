//! The training→publish→serve loop end to end: pretrain a global model,
//! publish it (plus a per-device HetNN variant) into the hot-swappable
//! registry, serve micro-batched traffic, and hot-swap the model from a
//! live FL session while requests keep flowing.
//!
//! Run with `cargo run --example serving`.

use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceCatalog};
use safeloc_fl::{Client, DefensePipeline, FlSession, Framework, SequentialFlServer, ServerConfig};
use safeloc_serve::{
    request_pool, run_load, LoadPlan, LocalizeRequest, ModelKey, ModelRegistry, RegistryPublisher,
    ServeConfig, Service,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A small building with the six-phone fleet.
    let data = BuildingDataset::generate(Building::tiny(7), &DatasetConfig::tiny(), 7);
    let mut server = SequentialFlServer::new(
        &[data.building.num_aps(), 24, data.building.num_rps()],
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    println!("pretraining the global model...");
    server.pretrain(&data.server_train);

    // Publish the pretrained model as the building default, plus one
    // per-device variant (here just the same weights; `serve_bench`
    // fine-tunes real variants).
    let registry = Arc::new(ModelRegistry::new());
    let key = ModelKey::default_for(data.building.id);
    registry.publish(
        key.clone(),
        server.global_model().clone(),
        Some(data.building.clone()),
    );
    registry.publish(
        ModelKey::new(data.building.id, &data.devices[0].name),
        server.global_model().clone(),
        Some(data.building.clone()),
    );

    // Start the micro-batched service.
    let service = Service::start(
        Arc::clone(&registry),
        DeviceCatalog::new(data.devices.clone()),
        ServeConfig {
            max_batch: 16,
            batch_deadline: Duration::from_micros(500),
            workers: 2,
        },
    );

    // One query: raw dBm in, location out.
    let request = LocalizeRequest::new(
        data.building.id,
        &data.devices[0].name,
        vec![-60.0; data.building.num_aps()],
    );
    let response = service.localize(&request).expect("served");
    println!(
        "single query: RP {} at {:?} via class {:?}, model v{}",
        response.label, response.position, response.device_class, response.model_version
    );

    // Closed-loop load while an FL session hot-swaps the default model
    // every round through the publisher hook.
    println!("running closed-loop load under live FL publishing...");
    let mut session = FlSession::builder(Box::new(server))
        .clients(Client::from_dataset(&data, 7))
        .publisher(Box::new(RegistryPublisher::new(
            Arc::clone(&registry),
            key.clone(),
        )))
        .build();
    let pool = request_pool(&data);
    let stats = std::thread::scope(|scope| {
        let trainer = scope.spawn(move || session.run(3).len());
        let stats = run_load(&service, &pool, &LoadPlan::new(4, 25, 7)).stats();
        let rounds = trainer.join().expect("trainer panicked");
        println!("FL session published {rounds} rounds while serving");
        stats
    });
    println!(
        "{} requests at {:.0} req/s — p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        stats.requests, stats.throughput_rps, stats.p50_ms, stats.p95_ms, stats.p99_ms
    );
    println!(
        "model versions observed in-flight: v{}..v{} (registry now at v{})",
        stats.min_version,
        stats.max_version,
        registry.get(&key).expect("published").version
    );
    service.shutdown();
}
