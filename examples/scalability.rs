//! Fleet-scaling demo: grow the client fleet with synthetic phones and an
//! increasing number of colluding attackers, as in the paper's Fig. 7 —
//! then go past what a materialized fleet can hold: a streaming round
//! over 50 000 synthetic clients shipping top-k compressed deltas.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example scalability
//! ```

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_bench::SyntheticFleet;
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{
    Client, ClientOutcome, CohortSampler, DefensePipeline, DeltaRepr, DeltaSpec, FlSession,
    Framework, SequentialFlServer, ServerConfig, StreamingFlSession,
};
use safeloc_metrics::{localization_errors, ErrorStats};

fn main() {
    for (total, poisoned) in [(6usize, 1usize), (12, 4), (18, 8)] {
        let cfg = DatasetConfig::paper().with_fleet(total, 9);
        let data = BuildingDataset::generate(Building::paper(5), &cfg, 9);

        let mut framework = SafeLoc::new(
            data.building.num_aps(),
            data.building.num_rps(),
            SafeLocConfig::default_scale(9),
        );
        framework.pretrain(&data.server_train);

        let mut clients = Client::from_dataset(&data, 9);
        let boost = total as f32 / poisoned as f32;
        let mut compromised = 0;
        for id in (0..clients.len()).rev() {
            if compromised == poisoned {
                break;
            }
            if id == data.train_device {
                continue;
            }
            clients[id].injector =
                Some(PoisonInjector::new(Attack::label_flip(0.6), 9 + id as u64).with_boost(boost));
            compromised += 1;
        }

        let mut session = FlSession::builder(Box::new(framework))
            .clients(clients)
            .build();
        session.run(3);

        let mut errors = Vec::new();
        for (_, set) in data.eval_sets() {
            let pred = session.framework().predict(&set.x);
            errors.extend(localization_errors(&data.building, &pred, &set.labels));
        }
        println!(
            "fleet ({total:>2} clients, {poisoned:>2} poisoned): {}",
            ErrorStats::from_errors(&errors)
        );
    }

    // Past Fig. 7: a fleet no Vec<Client> should hold. The provider
    // generates each sampled client on demand and retains only the
    // compressor residuals between rounds, so memory is bounded by the
    // 64-client cohort — never the 50 000-client fleet.
    const FLEET: usize = 50_000;
    const COHORT: usize = 64;
    let delta = DeltaSpec::TopK { fraction: 0.05 };
    let dims = [128usize, 64, 32];
    let num_params: usize = dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
    let fleet = SyntheticFleet::new(FLEET, dims[0], dims[2], 128, 9, delta);
    let materialized_mib = fleet.materialized_bytes() as f64 / (1024.0 * 1024.0);
    let server = SequentialFlServer::new(
        &dims,
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    let mut session = StreamingFlSession::builder(Box::new(server), Box::new(fleet))
        .sampler(CohortSampler::uniform(COHORT, 9))
        .build();
    for _ in 0..2 {
        let report = session.next_round();
        let trained = report
            .clients
            .iter()
            .filter(|c| matches!(c.outcome, ClientOutcome::Trained { .. }))
            .count();
        let compressed_kib = (4 + 8 * (num_params as f32 * 0.05) as usize) * trained / 1024;
        let dense_kib = DeltaRepr::Dense.wire_bytes(num_params) * trained / 1024;
        println!(
            "streaming round {} over {FLEET} clients ({}): cohort {trained}/{COHORT} trained, \
             ~{compressed_kib} KiB on wire vs {dense_kib} KiB dense \
             (materialized fleet would be {materialized_mib:.0} MiB)",
            report.round,
            delta.label(),
        );
    }
}
