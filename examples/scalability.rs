//! Fleet-scaling demo: grow the client fleet with synthetic phones and an
//! increasing number of colluding attackers, as in the paper's Fig. 7.
//!
//! ```text
//! cargo run -p safeloc-bench --release --example scalability
//! ```

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Client, FlSession, Framework};
use safeloc_metrics::{localization_errors, ErrorStats};

fn main() {
    for (total, poisoned) in [(6usize, 1usize), (12, 4), (18, 8)] {
        let cfg = DatasetConfig::paper().with_fleet(total, 9);
        let data = BuildingDataset::generate(Building::paper(5), &cfg, 9);

        let mut framework = SafeLoc::new(
            data.building.num_aps(),
            data.building.num_rps(),
            SafeLocConfig::default_scale(9),
        );
        framework.pretrain(&data.server_train);

        let mut clients = Client::from_dataset(&data, 9);
        let boost = total as f32 / poisoned as f32;
        let mut compromised = 0;
        for id in (0..clients.len()).rev() {
            if compromised == poisoned {
                break;
            }
            if id == data.train_device {
                continue;
            }
            clients[id].injector =
                Some(PoisonInjector::new(Attack::label_flip(0.6), 9 + id as u64).with_boost(boost));
            compromised += 1;
        }

        let mut session = FlSession::builder(Box::new(framework))
            .clients(clients)
            .build();
        session.run(3);

        let mut errors = Vec::new();
        for (_, set) in data.eval_sets() {
            let pred = session.framework().predict(&set.x);
            errors.extend(localization_errors(&data.building, &pred, &set.labels));
        }
        println!(
            "fleet ({total:>2} clients, {poisoned:>2} poisoned): {}",
            ErrorStats::from_errors(&errors)
        );
    }
}
