//! The telemetry side channel end to end: a faulty remote federated
//! round, live serving traffic, a Prometheus scrape over loopback TCP,
//! and a chrome-trace dump — all from one process tree.
//!
//! The parent re-executes itself once per fleet member (`--child`, the
//! `remote_round` pattern) and injects transport faults: every child
//! sleeps on upload and one closes its connection instead of delivering.
//! The dropout lands in `wire_round_dropouts_total`, the round split in
//! `fl_round_*`, the defense stages in `fl_stage_*`. The trained global
//! model is then published into a serving registry, a [`WireServer`]
//! fronts it over TCP, and after a burst of localization traffic a
//! [`WireClient`] scrapes the live process over the same socket with the
//! v3 `MetricsRequest` frame — the text it gets back is parsed and
//! cross-checked against served-request counts.
//!
//! Everything ends up in three artifacts: `TELEM_ci.json` (the full
//! [`TelemetryDump`]: snapshot + Prometheus text + chrome trace),
//! `TRACE_ci.json` (the chrome trace alone — load it in
//! `chrome://tracing` or Perfetto), and stdout. CI's `telemetry-smoke`
//! job runs this example and then gates on `telemetry_dump --check
//! TELEM_ci.json`.
//!
//! ```text
//! cargo run --example observability
//! cargo run --example observability -- --out TELEM.json --trace TRACE.json
//! ```

use safeloc_bench::{record_peak_rss_gauge, TelemetryDump};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceCatalog};
use safeloc_fl::client::train_sequential_lm;
use safeloc_fl::{Client, ClientOutcome, DefensePipeline, Framework, RoundPlan, ServerConfig};
use safeloc_nn::{Activation, HasParams, Sequential};
use safeloc_serve::{LocalizeRequest, ModelKey, ModelRegistry, ServeConfig, Service};
use safeloc_wire::{
    FaultProfile, Frame, FrameConn, RemoteFlServer, RemoteFleet, UpdateFrame, WireClient,
    WireServer,
};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Every process derives the same fleet from these seeds.
const DATA_SEED: u64 = 3;
const FLEET_SEED: u64 = 0;
/// This client crash-stops instead of uploading — the dropout the round
/// must survive and the telemetry must count.
const DROP_CLIENT: usize = 2;
/// Upload latency injected into every surviving client.
const LATENCY_MS: f64 = 10.0;

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(DATA_SEED), &DatasetConfig::tiny(), DATA_SEED)
}

fn dims(data: &BuildingDataset) -> Vec<usize> {
    vec![data.building.num_aps(), 16, data.building.num_rps()]
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--child") {
        child(&argv);
        return;
    }
    parent(&argv);
}

// ------------------------------------------------------------- the server

fn parent(argv: &[String]) {
    let out = flag_value(argv, "--out").unwrap_or_else(|| "TELEM_ci.json".to_string());
    let trace_out = flag_value(argv, "--trace").unwrap_or_else(|| "TRACE_ci.json".to_string());
    let recorder = safeloc_telemetry::flight_recorder();
    recorder.clear();

    // Phase 1: a federated round split across OS processes, with faults.
    let data = dataset();
    let dims = dims(&data);
    let n = data.num_clients();
    println!(
        "phase 1: remote round, {n} clients ({} uploads with {LATENCY_MS} ms latency, \
         client {DROP_CLIENT} crash-stops)",
        n - 1
    );
    let fleet = RemoteFleet::bind(n).expect("bind loopback fleet");
    let addr = fleet.addr();
    let fleet = Arc::new(Mutex::new(fleet));
    let exe = std::env::current_exe().expect("own executable path");
    let mut children: Vec<Child> = (0..n)
        .map(|client| {
            let mut fault = FaultProfile::latency(LATENCY_MS, 0.0, 7);
            if client == DROP_CLIENT {
                fault = fault.with_drops(1.0);
            }
            Command::new(&exe)
                .args([
                    "--child",
                    "--addr",
                    &addr.to_string(),
                    "--client",
                    &client.to_string(),
                    "--fault",
                    &serde_json::to_string(&fault).expect("profile serializes"),
                ])
                .stdin(Stdio::null())
                .spawn()
                .expect("spawn child client")
        })
        .collect();
    fleet
        .lock()
        .unwrap()
        .accept_all(Duration::from_secs(60))
        .expect("all clients join");

    let mut server = RemoteFlServer::new(
        &dims,
        Box::new(DefensePipeline::krum(1)),
        ServerConfig::tiny(),
        Arc::clone(&fleet),
        Duration::from_secs(5),
    );
    {
        let _span = recorder.span("pretrain", "fl");
        server.pretrain(&data.server_train);
    }
    let mut mirror = Client::from_dataset(&data, FLEET_SEED);
    for round in 0..2 {
        let _span = recorder.span("remote_round", "fl");
        let report = server.run_round(&mut mirror, &RoundPlan::full(n));
        let dropped = report
            .clients
            .iter()
            .filter(|c| matches!(c.outcome, ClientOutcome::DroppedOut))
            .count();
        println!(
            "  round {round}: {} client reports, {dropped} dropout(s)",
            report.clients.len()
        );
        assert!(dropped >= 1, "the crash-stopped client must be detected");
    }
    fleet.lock().unwrap().broadcast_bye();
    for child in &mut children {
        let _ = child.wait();
    }

    // Phase 2: serve the trained model over TCP and scrape the live
    // process through the same socket.
    println!("phase 2: serving the trained model over TCP");
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(
        ModelKey::default_for(data.building.id),
        {
            let mut gm = Sequential::mlp(&dims, Activation::Relu, 0);
            gm.load(&server.global_params()).expect("GM fits the dims");
            gm
        },
        Some(data.building.clone()),
    );
    let service = Arc::new(Service::start(
        registry,
        DeviceCatalog::new(data.devices.clone()),
        ServeConfig {
            max_batch: 16,
            batch_deadline: Duration::from_micros(500),
            workers: 2,
        },
    ));
    let wire = WireServer::serve(Arc::clone(&service)).expect("bind wire front");
    let mut client = WireClient::connect(wire.addr()).expect("connect");
    println!("  negotiated wire schema v{}", client.schema());
    let burst = 40usize;
    {
        let _span = recorder.span("serving_burst", "serve");
        for i in 0..burst {
            let request = LocalizeRequest::new(
                data.building.id,
                &data.devices[i % data.devices.len()].name,
                vec![-60.0 - (i % 7) as f32; data.building.num_aps()],
            );
            client.localize(&request).expect("served over the wire");
        }
    }

    // The live scrape: a v3 MetricsRequest frame over the same loopback
    // connection the localization traffic used.
    let scraped = client.scrape_metrics().expect("live scrape");
    let samples = safeloc_telemetry::parse_prometheus(&scraped).expect("scrape parses back");
    let served: f64 = samples
        .iter()
        .filter(|s| s.name == "serve_requests_total")
        .map(|s| s.value)
        .sum();
    assert!(
        served >= burst as f64,
        "scrape reports {served} served requests, burst sent {burst}"
    );
    let dropouts: f64 = samples
        .iter()
        .filter(|s| s.name == "wire_round_dropouts_total")
        .map(|s| s.value)
        .sum();
    assert!(dropouts >= 1.0, "the dropout must be visible in the scrape");
    println!(
        "  live scrape over {}: {} samples, serve_requests_total = {served}, \
         wire_round_dropouts_total = {dropouts}",
        wire.addr(),
        samples.len()
    );
    client.bye();
    service.shutdown();

    // Phase 3: freeze everything into the dump artifacts.
    record_peak_rss_gauge();
    let dump = TelemetryDump::capture(&safeloc_telemetry::global());
    let problems = dump.validate();
    assert!(problems.is_empty(), "dump must validate: {problems:?}");
    std::fs::write(&trace_out, &dump.chrome_trace)
        .unwrap_or_else(|e| panic!("cannot write {trace_out}: {e}"));
    let json = serde_json::to_string_pretty(&dump).expect("dump serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "phase 3: wrote {out} ({} series) and {trace_out} (load in chrome://tracing)",
        dump.snapshot.len()
    );
}

// ------------------------------------------------------------- the client

/// One fleet member as its own process — the `remote_round` child,
/// trimmed: rebuild deterministically, train on every broadcast, apply
/// the injected fault, upload.
fn child(argv: &[String]) {
    let addr = flag_value(argv, "--addr").expect("--addr");
    let client: usize = flag_value(argv, "--client")
        .expect("--client")
        .parse()
        .expect("client index");
    let fault: FaultProfile =
        serde_json::from_str(&flag_value(argv, "--fault").unwrap_or_else(|| "{}".to_string()))
            .expect("--fault parses");

    let data = dataset();
    let dims = dims(&data);
    let local = ServerConfig::tiny().local;
    let mut clients = Client::from_dataset(&data, FLEET_SEED);
    let mut me = clients.swap_remove(client);

    let mut conn = FrameConn::connect(addr.as_str()).expect("connect to the round server");
    conn.client_handshake().expect("schema handshake");
    conn.send(&Frame::Join {
        client_index: me.id as u32,
    })
    .expect("join");

    loop {
        match conn.recv() {
            Ok(Frame::CohortInvite { .. }) | Ok(Frame::RoundPlan { .. }) => continue,
            Ok(Frame::GmBroadcast {
                round,
                round_salt,
                params,
            }) => {
                let draw = fault.draw(round as u64, me.id as u64);
                if draw.drop {
                    conn.shutdown();
                    return;
                }
                let mut gm = Sequential::mlp(&dims, Activation::Relu, 0);
                gm.load(&params).expect("GM fits the shared dims");
                let set = me.prepare_round_data(&gm, gm.out_dim(), &local);
                let lm = train_sequential_lm(&gm, &set, &local, me.seed ^ round_salt);
                let lm = me.finalize_params(&params, lm);
                if draw.latency_ms > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(draw.latency_ms / 1e3));
                }
                conn.send(&Frame::Update(UpdateFrame {
                    client_id: me.id as u64,
                    round,
                    building: data.building.id as u32,
                    device_class: me.device_name.clone(),
                    num_samples: set.len() as u64,
                    params: lm,
                }))
                .expect("upload update");
            }
            Ok(Frame::Bye) | Err(_) => return,
            Ok(other) => panic!("unexpected {} from the round server", other.kind()),
        }
    }
}
