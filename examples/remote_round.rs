//! A federated round split across OS processes, over loopback TCP.
//!
//! The parent process binds a [`RemoteFleet`], re-executes itself once per
//! client (`--child`), pretrains the global model, and drives rounds
//! through [`RemoteFlServer`] — the wire-protocol twin of the in-process
//! engine. Each child rebuilds its fleet member deterministically from the
//! shared seeds, joins over TCP, trains on every broadcast, and uploads
//! its full local model. With no faults injected, the resulting global
//! model is bitwise identical to what the in-process engine computes; the
//! example asserts exactly that.
//!
//! Transport faults come from the same deterministic [`FaultProfile`] the
//! scenario suite replays in-process: `--latency-ms` sleeps every upload,
//! and `--drop-client` makes one client close its connection instead of
//! delivering (crash-stop). The server's round deadline turns hung or
//! trickling clients into stragglers instead of stalling aggregation.
//!
//! ```text
//! cargo run --example remote_round
//! cargo run --example remote_round -- --rounds 3 --latency-ms 20 --drop-client 2 --out WIRE.json
//! ```

use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::client::train_sequential_lm;
use safeloc_fl::{
    Client, ClientOutcome, DefensePipeline, Framework, RoundPlan, SequentialFlServer, ServerConfig,
};
use safeloc_nn::{Activation, HasParams, Sequential};
use safeloc_wire::{FaultProfile, Frame, FrameConn, RemoteFlServer, RemoteFleet, UpdateFrame};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Every process derives the same fleet from these seeds.
const DATA_SEED: u64 = 3;
const FLEET_SEED: u64 = 0;

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(DATA_SEED), &DatasetConfig::tiny(), DATA_SEED)
}

fn dims(data: &BuildingDataset) -> Vec<usize> {
    vec![data.building.num_aps(), 16, data.building.num_rps()]
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--child") {
        child(&argv);
        return;
    }
    parent(&argv);
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

// ------------------------------------------------------------- the server

fn parent(argv: &[String]) {
    let rounds: usize = flag_value(argv, "--rounds")
        .map(|v| v.parse().expect("--rounds takes an integer"))
        .unwrap_or(2);
    let latency_ms: f64 = flag_value(argv, "--latency-ms")
        .map(|v| v.parse().expect("--latency-ms takes a number"))
        .unwrap_or(0.0);
    let drop_client: Option<usize> =
        flag_value(argv, "--drop-client").map(|v| v.parse().expect("--drop-client takes an index"));
    let out = flag_value(argv, "--out");

    let data = dataset();
    let dims = dims(&data);
    let n = data.num_clients();
    println!(
        "fleet: {n} clients, building {} ({} APs → {} RPs)",
        data.building.id,
        data.building.num_aps(),
        data.building.num_rps()
    );

    let fleet = RemoteFleet::bind(n).expect("bind loopback fleet");
    let addr = fleet.addr();
    let fleet = Arc::new(Mutex::new(fleet));

    // One child process per fleet member, each with its own fault profile.
    let exe = std::env::current_exe().expect("own executable path");
    let mut children: Vec<Child> = (0..n)
        .map(|client| {
            let mut fault = FaultProfile::latency(latency_ms, 0.0, 7);
            if drop_client == Some(client) {
                fault = fault.with_drops(1.0);
            }
            Command::new(&exe)
                .args([
                    "--child",
                    "--addr",
                    &addr.to_string(),
                    "--client",
                    &client.to_string(),
                    "--fault",
                    &serde_json::to_string(&fault).expect("profile serializes"),
                ])
                .stdin(Stdio::null())
                .spawn()
                .expect("spawn child client")
        })
        .collect();
    fleet
        .lock()
        .unwrap()
        .accept_all(Duration::from_secs(60))
        .expect("all clients join");
    println!("all {n} clients joined over {addr}");

    // The wire server — and, when nothing is injected, an in-process twin
    // built from the same arguments to pin bitwise reproduction.
    let deadline = Duration::from_secs(5);
    let mut server = RemoteFlServer::new(
        &dims,
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
        Arc::clone(&fleet),
        deadline,
    );
    println!("pretraining the global model...");
    server.pretrain(&data.server_train);
    // The mirror fleet never trains here (training happens in the child
    // processes) — it provides the per-client report metadata.
    let mut mirror = Client::from_dataset(&data, FLEET_SEED);
    let faultless = latency_ms <= 0.0 && drop_client.is_none();
    let mut twin = faultless.then(|| {
        let mut twin = SequentialFlServer::new(
            &dims,
            Box::new(DefensePipeline::fedavg()),
            ServerConfig::tiny(),
        );
        twin.pretrain(&data.server_train);
        (twin, Client::from_dataset(&data, FLEET_SEED))
    });

    let mut rows = Vec::new();
    let mut failures = 0usize;
    for round in 0..rounds {
        let started = Instant::now();
        let report = server.run_round(&mut mirror, &RoundPlan::full(n));
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let mut trained = 0usize;
        let mut dropped = 0usize;
        let mut straggled = 0usize;
        for c in &report.clients {
            match &c.outcome {
                ClientOutcome::Trained { .. } => trained += 1,
                ClientOutcome::DroppedOut => {
                    dropped += 1;
                    if drop_client != Some(c.client_id) {
                        eprintln!("round {round}: client {} dropped unexpectedly", c.client_id);
                        failures += 1;
                    }
                }
                ClientOutcome::Straggled => straggled += 1,
                ClientOutcome::Rejected { rule, .. } => {
                    eprintln!("round {round}: client {} rejected by {rule}", c.client_id);
                }
            }
        }
        println!(
            "round {round}: {trained} trained, {dropped} dropped, {straggled} straggled \
             in {wall_ms:.0} ms"
        );
        // The deliberately dropped client must be benched, not waited for.
        if drop_client.is_some() && dropped == 0 {
            eprintln!("round {round}: the dropped client was not detected");
            failures += 1;
        }
        if let Some((twin, clients)) = twin.as_mut() {
            twin.run_round(clients, &RoundPlan::full(n));
            assert_eq!(
                server.global_params(),
                twin.global_params(),
                "wire round {round} diverged from the in-process engine"
            );
            println!("round {round}: global model bitwise identical to the in-process engine");
        }
        rows.push(format!(
            "{{\"round\": {round}, \"wall_ms\": {wall_ms:.3}, \"trained\": {trained}, \
             \"dropped\": {dropped}, \"straggled\": {straggled}}}"
        ));
    }

    fleet.lock().unwrap().broadcast_bye();
    for child in &mut children {
        let _ = child.wait();
    }

    if let Some(path) = out {
        let json = format!(
            "{{\n  \"rounds\": {rounds},\n  \"clients\": {n},\n  \"latency_ms\": {latency_ms},\n  \
             \"dropped_client\": {},\n  \"deadline_ms\": {},\n  \"round_reports\": [\n    {}\n  ]\n}}\n",
            drop_client
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".to_string()),
            deadline.as_millis(),
            rows.join(",\n    ")
        );
        std::fs::write(&path, json).expect("write transport report");
        println!("wrote {path}");
    }
    if failures > 0 {
        eprintln!("{failures} unexpected client outcome(s)");
        std::process::exit(1);
    }
}

// ------------------------------------------------------------- the client

/// One fleet member as its own process: the same deterministic rebuild +
/// round protocol as the `fl_client` binary, inlined so the example is
/// self-contained.
fn child(argv: &[String]) {
    let addr = flag_value(argv, "--addr").expect("--addr");
    let client: usize = flag_value(argv, "--client").expect("--client").and_parse();
    let fault: FaultProfile =
        serde_json::from_str(&flag_value(argv, "--fault").unwrap_or_else(|| "{}".to_string()))
            .expect("--fault parses");

    let data = dataset();
    let dims = dims(&data);
    let local = ServerConfig::tiny().local;
    let mut clients = Client::from_dataset(&data, FLEET_SEED);
    let mut me = clients.swap_remove(client);

    let mut conn = FrameConn::connect(addr.as_str()).expect("connect to the round server");
    conn.client_handshake().expect("schema handshake");
    conn.send(&Frame::Join {
        client_index: me.id as u32,
    })
    .expect("join");

    loop {
        match conn.recv() {
            Ok(Frame::CohortInvite { .. }) | Ok(Frame::RoundPlan { .. }) => continue,
            Ok(Frame::GmBroadcast {
                round,
                round_salt,
                params,
            }) => {
                let draw = fault.draw(round as u64, me.id as u64);
                if draw.drop {
                    conn.shutdown();
                    return;
                }
                let mut gm = Sequential::mlp(&dims, Activation::Relu, 0);
                gm.load(&params).expect("GM fits the shared dims");
                let set = me.prepare_round_data(&gm, gm.out_dim(), &local);
                let lm = train_sequential_lm(&gm, &set, &local, me.seed ^ round_salt);
                let lm = me.finalize_params(&params, lm);
                if draw.latency_ms > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(draw.latency_ms / 1e3));
                }
                conn.send(&Frame::Update(UpdateFrame {
                    client_id: me.id as u64,
                    round,
                    building: data.building.id as u32,
                    device_class: me.device_name.clone(),
                    num_samples: set.len() as u64,
                    params: lm,
                }))
                .expect("upload update");
            }
            Ok(Frame::Bye) | Err(_) => return,
            Ok(other) => panic!("unexpected {} from the round server", other.kind()),
        }
    }
}

/// Tiny parse helper so child flags stay one-liners.
trait AndParse {
    fn and_parse<T: std::str::FromStr>(self) -> T
    where
        T::Err: std::fmt::Debug;
}

impl AndParse for String {
    fn and_parse<T: std::str::FromStr>(self) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.parse().expect("numeric flag")
    }
}
