//! Integration: the full SAFELOC pipeline and every baseline, end to end on
//! a tiny building — dataset generation → pretraining → poisoned federated
//! rounds → evaluation.

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_baselines::{FedCc, FedHil, FedLoc, FedLs, KrumFramework, Onlad};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Client, Framework, RoundPlan, ServerConfig};
use safeloc_metrics::{localization_errors, ErrorStats};

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(42), &DatasetConfig::tiny(), 42)
}

fn run_full_rounds(f: &mut dyn Framework, clients: &mut [Client], n: usize) {
    let plan = RoundPlan::full(clients.len());
    for _ in 0..n {
        f.run_round(clients, &plan);
    }
}

fn eval(framework: &dyn Framework, data: &BuildingDataset) -> ErrorStats {
    let mut errors = Vec::new();
    for (_, set) in data.eval_sets() {
        let pred = framework.predict(&set.x);
        errors.extend(localization_errors(&data.building, &pred, &set.labels));
    }
    ErrorStats::from_errors(&errors)
}

#[test]
fn safeloc_full_pipeline_under_attack() {
    let data = dataset();
    let mut f = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::tiny(),
    );
    f.pretrain(&data.server_train);
    let clean = eval(&f, &data);

    let mut clients = Client::from_dataset(&data, 42);
    let last = clients.len() - 1;
    clients[last].injector = Some(PoisonInjector::new(Attack::label_flip(1.0), 42).with_boost(3.0));
    run_full_rounds(&mut f, &mut clients, 3);
    let attacked = eval(&f, &data);

    // The tiny floor is ~10 m across; random guessing gives ~2.5 m mean.
    assert!(clean.mean < 2.0, "clean mean {}", clean.mean);
    assert!(
        attacked.mean < clean.mean + 1.5,
        "SAFELOC lost robustness: clean {} -> attacked {}",
        clean.mean,
        attacked.mean
    );
}

#[test]
fn every_baseline_completes_rounds() {
    let data = dataset();
    let (aps, rps) = (data.building.num_aps(), data.building.num_rps());
    let cfg = ServerConfig::tiny();
    let mut frameworks: Vec<Box<dyn Framework>> = vec![
        Box::new(FedLoc::new(aps, rps, cfg)),
        Box::new(FedHil::new(aps, rps, cfg)),
        Box::new(FedCc::new(aps, rps, cfg)),
        Box::new(FedLs::new(aps, rps, cfg)),
        Box::new(Onlad::new(aps, rps, cfg)),
        Box::new(KrumFramework::new(aps, rps, cfg)),
    ];
    for f in &mut frameworks {
        f.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 1);
        clients[0].injector = Some(PoisonInjector::new(Attack::fgsm(0.3), 1));
        run_full_rounds(f.as_mut(), &mut clients, 2);
        let stats = eval(f.as_ref(), &data);
        assert!(
            stats.mean.is_finite() && stats.n > 0,
            "{} produced no finite errors",
            f.name()
        );
    }
}

#[test]
fn safeloc_beats_fedloc_under_boosted_label_flip() {
    let data = dataset();
    let rounds = 4;
    let run = |mut f: Box<dyn Framework>| -> f32 {
        f.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 3);
        let last = clients.len() - 1;
        clients[last].injector =
            Some(PoisonInjector::new(Attack::label_flip(1.0), 3).with_boost(3.0));
        run_full_rounds(f.as_mut(), &mut clients, rounds);
        eval(f.as_ref(), &data).mean
    };
    let safeloc = run(Box::new(SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::tiny(),
    )));
    let fedloc = run(Box::new(FedLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        ServerConfig::tiny(),
    )));
    assert!(
        safeloc <= fedloc + 0.3,
        "SAFELOC ({safeloc}) should not be worse than FEDLOC ({fedloc}) under attack"
    );
}

#[test]
fn cloned_framework_is_independent() {
    let data = dataset();
    let mut f = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::tiny(),
    );
    f.pretrain(&data.server_train);
    let template: Box<dyn Framework> = Box::new(f);
    let before = eval(template.as_ref(), &data);

    let mut fork = template.clone_box();
    let mut clients = Client::from_dataset(&data, 0);
    run_full_rounds(fork.as_mut(), &mut clients, 2);

    // The template must be untouched by the fork's rounds.
    let after = eval(template.as_ref(), &data);
    assert_eq!(before, after, "clone_box shares state with the template");
}
