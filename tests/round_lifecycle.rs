//! Integration: the round-lifecycle API is a pure superset of the seed
//! engine. For every one of the seven frameworks (SAFELOC + six
//! baselines):
//!
//! * a full-participation `FlSession` reproduces the seed trajectory of
//!   manually driven full-participation `run_round` calls **bitwise**,
//! * reports carry a complete, consistent per-client outcome trail,
//! * partial participation trains exactly the sampled cohort.

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_baselines::{FedCc, FedHil, FedLoc, FedLs, KrumFramework, Onlad};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceProfile};
use safeloc_fl::{
    Availability, Client, ClientOutcome, CohortSampler, FlSession, Framework, RoundPlan,
    ServerConfig,
};

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(31), &DatasetConfig::tiny(), 31)
}

/// All seven frameworks of the paper's comparison, pretrained.
fn all_seven(data: &BuildingDataset) -> Vec<Box<dyn Framework>> {
    let (aps, rps) = (data.building.num_aps(), data.building.num_rps());
    let cfg = ServerConfig::tiny();
    let mut frameworks: Vec<Box<dyn Framework>> = vec![
        Box::new(SafeLoc::new(aps, rps, SafeLocConfig::tiny())),
        Box::new(Onlad::new(aps, rps, cfg)),
        Box::new(FedLs::new(aps, rps, cfg)),
        Box::new(FedCc::new(aps, rps, cfg)),
        Box::new(FedHil::new(aps, rps, cfg)),
        Box::new(FedLoc::new(aps, rps, cfg)),
        Box::new(KrumFramework::new(aps, rps, cfg)),
    ];
    for f in &mut frameworks {
        f.pretrain(&data.server_train);
    }
    frameworks
}

fn attacked_fleet(data: &BuildingDataset) -> Vec<Client> {
    let mut clients = Client::from_dataset(data, 31);
    let last = clients.len() - 1;
    clients[last].injector = Some(PoisonInjector::new(Attack::label_flip(1.0), 31).with_boost(3.0));
    clients
}

#[test]
fn full_participation_session_reproduces_manual_rounds_bitwise_for_all_seven() {
    let data = dataset();
    let rounds = 2;
    for template in all_seven(&data) {
        // Seed path: full-participation `run_round`s driven by hand,
        // exactly the shape pre-session code ran.
        let mut legacy = template.clone_box();
        let mut clients = attacked_fleet(&data);
        let plan = RoundPlan::full(clients.len());
        for _ in 0..rounds {
            legacy.run_round(&mut clients, &plan);
        }

        // New path: a session with the default (full) sampler.
        let mut session = FlSession::builder(template.clone_box())
            .clients(attacked_fleet(&data))
            .build();
        session.run(rounds);

        assert_eq!(
            session.framework().global_params(),
            legacy.global_params(),
            "{}: full-participation session diverged from manual full rounds",
            template.name()
        );
        // Full participation: every client appears in every report and
        // every update is either accepted or rejected by a named rule.
        for report in session.reports() {
            assert_eq!(report.clients.len(), session.clients().len());
            assert_eq!(report.participants(), report.clients.len());
            assert_eq!(report.dropped() + report.straggled(), 0);
            assert_eq!(report.framework, template.name());
        }
    }
}

#[test]
fn reports_expose_defense_decisions_per_framework() {
    let data = dataset();
    for template in all_seven(&data) {
        let mut session = FlSession::builder(template.clone_box())
            .clients(attacked_fleet(&data))
            .build();
        session.run(2);
        for report in session.reports() {
            for c in &report.clients {
                match &c.outcome {
                    ClientOutcome::Trained { weight } => {
                        assert!(
                            weight.is_finite() && *weight >= 0.0,
                            "{}: bad acceptance weight {weight}",
                            template.name()
                        );
                    }
                    ClientOutcome::Rejected { rule, score } => {
                        assert!(
                            !rule.is_empty() && score.is_finite(),
                            "{}: rejection without rule/score",
                            template.name()
                        );
                    }
                    other => panic!("{}: full participation produced {other:?}", template.name()),
                }
            }
        }
        // Exactly one malicious client participated each round.
        let attacker_rounds = session
            .reports()
            .iter()
            .filter(|r| r.clients.iter().any(|c| c.malicious))
            .count();
        assert_eq!(attacker_rounds, 2, "{}", template.name());
    }
}

#[test]
fn krum_reports_reject_the_boosted_attacker() {
    let data = dataset();
    let (aps, rps) = (data.building.num_aps(), data.building.num_rps());
    let mut f = KrumFramework::new(aps, rps, ServerConfig::tiny());
    f.pretrain(&data.server_train);
    let mut session = FlSession::builder(Box::new(f))
        .clients(attacked_fleet(&data))
        .build();
    session.run(3);
    let rate = session
        .attacker_rejection_rate()
        .expect("attacker participates under full participation");
    assert!(
        rate > 0.6,
        "Krum rejected the boosted label-flipper in only {:.0}% of rounds",
        rate * 100.0
    );
}

#[test]
fn partial_participation_trains_exactly_the_sampled_cohort() {
    let data = dataset();
    for template in all_seven(&data) {
        let mut session = FlSession::builder(template.clone_box())
            .clients(Client::from_dataset(&data, 31))
            .sampler(CohortSampler::uniform(2, 5))
            .build();
        session.run(2);
        for report in session.reports() {
            assert_eq!(
                report.clients.len(),
                2,
                "{}: cohort size not honored",
                template.name()
            );
            assert_eq!(report.accepted() + report.rejected(), 2);
        }
    }
}

/// Regression for the fig8 participation-sweep collapse: FEDLS's latent
/// filter used to return `all_accepted` for any round smaller than its
/// 3-update guard, so a single boosted attacker sampled into a cohort of
/// two bypassed the defense entirely. With benign history accumulated from
/// earlier full rounds, the small round is now screened against it: the
/// attacker is rejected and the honest cohort member still trains.
#[test]
fn fedls_small_cohort_rejects_the_boosted_attacker() {
    // The paper's six-phone fleet at tiny sample counts: full rounds need
    // enough honest updates for the round-local filter to keep the benign
    // history clean.
    let cfg = DatasetConfig {
        devices: DeviceProfile::paper_fleet(),
        ..DatasetConfig::tiny()
    };
    let data = BuildingDataset::generate(Building::tiny(8), &cfg, 8);
    let mut f = FedLs::new(
        data.building.num_aps(),
        data.building.num_rps(),
        ServerConfig::tiny(),
    );
    f.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(&data, 8);
    let attacker = DeviceProfile::ATTACKER_DEVICE;
    clients[attacker].injector =
        Some(PoisonInjector::new(Attack::label_flip(1.0), 8).with_boost(6.0));

    let full = RoundPlan::full(clients.len());
    for _ in 0..3 {
        f.run_round(&mut clients, &full);
    }

    // The collapse shape: a cohort of two — one honest client, the attacker.
    let plan = RoundPlan::new(vec![
        (0, Availability::Participates),
        (attacker, Availability::Participates),
    ]);
    let report = f.run_round(&mut clients, &plan);
    assert_eq!(report.participants(), 2);
    let attacker_report = report
        .clients
        .iter()
        .find(|c| c.malicious)
        .expect("attacker in cohort");
    assert!(
        matches!(attacker_report.outcome, ClientOutcome::Rejected { .. }),
        "small-cohort attacker passed FEDLS: {:?}",
        attacker_report.outcome
    );
    let honest = report
        .clients
        .iter()
        .find(|c| !c.malicious)
        .expect("honest client in cohort");
    assert!(
        matches!(honest.outcome, ClientOutcome::Trained { .. }),
        "honest small-cohort update rejected: {:?}",
        honest.outcome
    );
}

#[test]
fn cohort_membership_does_not_perturb_other_clients_training() {
    // Client 0 participates in both runs; the *other* cohort members
    // differ. Client 0's contribution — and thus a FedAvg-of-one GM — must
    // be identical, because per-client seed streams are independent of
    // cohort shape.
    let data = dataset();
    let (aps, rps) = (data.building.num_aps(), data.building.num_rps());
    let run = |extra: usize| {
        let mut f = FedLoc::new(aps, rps, ServerConfig::tiny());
        f.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 31);
        let plan = RoundPlan::new(vec![
            (0, safeloc_fl::Availability::Participates),
            (extra, safeloc_fl::Availability::DropsOut),
        ]);
        let report = f.run_round(&mut clients, &plan);
        assert_eq!(report.accepted(), 1);
        f.global_params()
    };
    assert_eq!(
        run(1),
        run(2),
        "a dropped-out peer changed another client's training stream"
    );
}
