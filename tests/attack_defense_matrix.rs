//! Integration: the qualitative attack × defense matrix the paper's
//! evaluation rests on, at test scale.

use safeloc::{SafeLoc, SafeLocConfig, SaliencyAggregator};
use safeloc_attacks::{Attack, PoisonInjector, ALL_ATTACK_KINDS};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Aggregator, Client, ClientUpdate, DefensePipeline, Framework, RoundPlan};
use safeloc_metrics::{localization_errors, ErrorStats};
use safeloc_nn::{Matrix, NamedParams};

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(21), &DatasetConfig::tiny(), 21)
}

fn attacked_mean(attack: Attack, boost: f32) -> f32 {
    let data = dataset();
    let mut f = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::tiny(),
    );
    f.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(&data, 21);
    let last = clients.len() - 1;
    clients[last].injector = Some(PoisonInjector::new(attack, 21).with_boost(boost));
    let plan = RoundPlan::full(clients.len());
    for _ in 0..3 {
        f.run_round(&mut clients, &plan);
    }
    let mut errors = Vec::new();
    for (_, set) in data.eval_sets() {
        let pred = f.predict(&set.x);
        errors.extend(localization_errors(&data.building, &pred, &set.labels));
    }
    ErrorStats::from_errors(&errors).mean
}

#[test]
fn safeloc_is_stable_under_every_attack_kind() {
    // The tiny floor is ~10 m across; random guessing is ~2.5 m mean error.
    for kind in ALL_ATTACK_KINDS {
        let mean = attacked_mean(Attack::of_kind(kind, 0.4), 3.0);
        assert!(
            mean < 2.2,
            "SAFELOC collapsed under {kind:?}: mean {mean} m"
        );
    }
}

#[test]
fn saliency_suppresses_boosted_outliers_more_than_fedavg() {
    // Direct aggregation-level comparison on identical updates.
    let gm = NamedParams::new(vec![(
        "w".into(),
        Matrix::from_vec(1, 4, vec![0.0; 4]).unwrap(),
    )]);
    let honest: Vec<ClientUpdate> = (0..5)
        .map(|i| {
            let p = NamedParams::new(vec![(
                "w".into(),
                Matrix::from_vec(1, 4, vec![0.05; 4]).unwrap(),
            )]);
            ClientUpdate::new(i, p, 10)
        })
        .collect();
    let mut updates = honest.clone();
    updates.push(ClientUpdate::new(
        9,
        NamedParams::new(vec![(
            "w".into(),
            Matrix::from_vec(1, 4, vec![3.0; 4]).unwrap(),
        )]),
        10,
    ));

    let fedavg = DefensePipeline::fedavg().aggregate(&gm, &updates);
    let saliency = SaliencyAggregator::default()
        .into_pipeline()
        .aggregate(&gm, &updates);
    let fa = fedavg.params.get("w").unwrap().get(0, 0);
    let sa = saliency.params.get("w").unwrap().get(0, 0);
    assert!(
        sa < fa / 3.0,
        "saliency ({sa}) barely better than FedAvg ({fa})"
    );
}

#[test]
fn detection_neutralizes_backdoor_but_not_label_flip() {
    // The architecture's division of labour: the client-side detector
    // handles input perturbations; label flips can only be damped at the
    // server. Per the paper (Fig. 5), label flipping at full strength hurts
    // *more* than an equally strong backdoor.
    let backdoor = attacked_mean(Attack::fgsm(0.6), 3.0);
    let flip = attacked_mean(Attack::label_flip(1.0), 3.0);
    assert!(
        flip + 0.3 >= backdoor,
        "expected label flip ({flip}) to be at least as damaging as a detected backdoor ({backdoor})"
    );
}

#[test]
fn unboosted_attacks_are_weaker_than_boosted() {
    let unboosted = attacked_mean(Attack::label_flip(1.0), 1.0);
    let boosted = attacked_mean(Attack::label_flip(1.0), 3.0);
    assert!(
        unboosted <= boosted + 0.3,
        "boost should not reduce attack strength: unboosted {unboosted}, boosted {boosted}"
    );
}
