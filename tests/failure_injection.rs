//! Integration: failure injection — the federated pipeline must survive
//! dropped clients, empty rounds, NaN-weight updates and degenerate data.

use safeloc::{SafeLoc, SafeLocConfig, SaliencyAggregator};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, FingerprintSet};
use safeloc_fl::{
    Aggregator, Availability, Client, ClientUpdate, DefensePipeline, Framework, RoundPlan,
    SequentialFlServer, ServerConfig, UpdateDecision,
};
use safeloc_nn::{Matrix, NamedParams};

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(13), &DatasetConfig::tiny(), 13)
}

/// The six paper rules as their canonical pipeline compositions — the
/// shared guard contract must hold for every one of them.
fn all_aggregators() -> Vec<Box<dyn Aggregator>> {
    vec![
        Box::new(DefensePipeline::fedavg()),
        Box::new(DefensePipeline::krum(1)),
        Box::new(DefensePipeline::selective(0.5)),
        Box::new(DefensePipeline::cluster(0.15)),
        Box::new(DefensePipeline::latent(0)),
        Box::new(SaliencyAggregator::default().into_pipeline()),
        Box::new(DefensePipeline::latent_with_history(0)),
    ]
}

#[test]
fn every_aggregator_survives_an_empty_round() {
    let gm = NamedParams::new(vec![(
        "w".into(),
        Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap(),
    )]);
    for mut agg in all_aggregators() {
        let out = agg.aggregate(&gm, &[]);
        assert_eq!(
            out.params,
            gm,
            "{} corrupted the GM on an empty round",
            agg.name()
        );
        assert!(out.decisions.is_empty());
    }
}

#[test]
fn every_aggregator_rejects_all_nan_updates() {
    let gm = NamedParams::new(vec![(
        "w".into(),
        Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap(),
    )]);
    let nan_update = ClientUpdate::new(
        0,
        NamedParams::new(vec![(
            "w".into(),
            Matrix::from_vec(1, 3, vec![f32::NAN, f32::INFINITY, 0.0]).unwrap(),
        )]),
        10,
    );
    for mut agg in all_aggregators() {
        let out = agg.aggregate(&gm, std::slice::from_ref(&nan_update));
        assert!(
            !out.params.has_non_finite(),
            "{} let NaN weights into the GM",
            agg.name()
        );
        // The shared guard owns this rule: the GM is untouched and the
        // decision trail names the rejection, for every aggregator alike.
        assert_eq!(
            out.params,
            gm,
            "{} rewrote the GM from a fully non-finite round",
            agg.name()
        );
        match &out.decisions[0] {
            UpdateDecision::Rejected { rule, .. } => {
                assert_eq!(rule, safeloc_fl::aggregate::NON_FINITE_RULE)
            }
            other => panic!("{} accepted a NaN update: {other:?}", agg.name()),
        }
    }
}

#[test]
fn rounds_with_a_subset_of_clients_work() {
    let data = dataset();
    let mut server = SequentialFlServer::new(
        &[data.building.num_aps(), 12, data.building.num_rps()],
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    server.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(&data, 13);
    // Only one client shows up this round.
    let mut solo = clients.split_off(clients.len() - 1);
    let report = server.run_round(&mut solo, &RoundPlan::full(1));
    assert_eq!(report.accepted(), 1);
    // Nobody shows up the next round.
    let mut nobody: Vec<Client> = Vec::new();
    let report = server.run_round(&mut nobody, &RoundPlan::full(0));
    assert_eq!(report.participants(), 0);
    let acc = server.accuracy(&data.server_train.x, &data.server_train.labels);
    assert!(
        acc > 0.3,
        "server lost the model after sparse rounds: {acc}"
    );
}

#[test]
fn safeloc_handles_single_sample_clients() {
    let data = dataset();
    let mut f = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::tiny(),
    );
    f.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(&data, 13);
    for c in &mut clients {
        c.local = c.local.subset(&[0]); // one fingerprint each
    }
    let plan = RoundPlan::full(clients.len());
    f.run_round(&mut clients, &plan);
    let test = &data.client_test[0];
    assert!(f.accuracy(&test.x, &test.labels) > 0.2);
}

#[test]
fn safeloc_predicts_on_degenerate_inputs() {
    let data = dataset();
    let mut f = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig::tiny(),
    );
    f.pretrain(&data.server_train);
    // All-zero fingerprint (no AP heard) and all-ones (saturated).
    let x = Matrix::from_rows(&[
        vec![0.0; data.building.num_aps()],
        vec![1.0; data.building.num_aps()],
    ]);
    let labels = f.predict(&x);
    assert_eq!(labels.len(), 2);
    assert!(labels.iter().all(|&l| l < data.building.num_rps()));
}

#[test]
fn empty_fingerprint_sets_are_harmless() {
    let set = FingerprintSet::empty(10);
    assert_eq!(set.len(), 0);
    let sub = set.subset(&[]);
    assert!(sub.is_empty());
}

#[test]
fn stale_plans_referencing_departed_clients_are_harmless() {
    // A plan can outlive fleet churn: cohort entries beyond the current
    // fleet are skipped by training and by the report alike.
    let data = dataset();
    let mut server = SequentialFlServer::new(
        &[data.building.num_aps(), 12, data.building.num_rps()],
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    server.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(&data, 13);
    let plan = RoundPlan::new(vec![
        (0, Availability::Participates),
        (clients.len() + 5, Availability::Participates),
        (clients.len() + 9, Availability::DropsOut),
    ]);
    let report = server.run_round(&mut clients, &plan);
    assert_eq!(report.clients.len(), 1, "ghost clients reported");
    assert_eq!(report.accepted(), 1);
}
