//! Integration: serde round-trips of the types a deployment would persist —
//! model weights, configurations, datasets and attack configs.

use safeloc::{FusedConfig, FusedNetwork, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceProfile};
use safeloc_nn::{Activation, HasParams, Matrix, NamedParams, Sequential};

#[test]
fn fused_network_weights_round_trip() {
    let net = FusedNetwork::new(&FusedConfig::paper(30, 10, 3));
    let json = serde_json::to_string(&net).unwrap();
    let back: FusedNetwork = serde_json::from_str(&json).unwrap();
    let x = Matrix::from_rows(&[vec![0.4; 30]]);
    assert_eq!(net.forward_trace(&x).logits, back.forward_trace(&x).logits);
}

#[test]
fn named_params_round_trip_preserves_behaviour() {
    let model = Sequential::mlp(&[8, 6, 4], Activation::Relu, 2);
    let snap = model.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: NamedParams = serde_json::from_str(&json).unwrap();
    assert_eq!(snap, back);
    let mut restored = Sequential::mlp(&[8, 6, 4], Activation::Relu, 9);
    restored.load(&back).unwrap();
    let x = Matrix::from_rows(&[vec![0.3; 8]]);
    assert_eq!(model.forward(&x), restored.forward(&x));
}

#[test]
fn configs_round_trip() {
    let cfg = SafeLocConfig::paper(5);
    let back: SafeLocConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
    assert_eq!(cfg, back);

    let dcfg = DatasetConfig::paper();
    let back: DatasetConfig = serde_json::from_str(&serde_json::to_string(&dcfg).unwrap()).unwrap();
    assert_eq!(dcfg, back);
}

#[test]
fn attacks_and_injectors_round_trip() {
    for attack in [
        Attack::clb(0.2),
        Attack::fgsm(0.1),
        Attack::pgd(0.3),
        Attack::mim(0.4),
        Attack::label_flip(0.5),
    ] {
        let json = serde_json::to_string(&attack).unwrap();
        let back: Attack = serde_json::from_str(&json).unwrap();
        assert_eq!(attack, back);
    }
    let injector = PoisonInjector::new(Attack::fgsm(0.2), 7).with_boost(6.0);
    let back: PoisonInjector =
        serde_json::from_str(&serde_json::to_string(&injector).unwrap()).unwrap();
    assert_eq!(injector, back);
    assert_eq!(back.boost(), 6.0);
}

#[test]
fn injector_without_boost_field_deserializes_with_default() {
    // Forward compatibility: snapshots produced before the boost field.
    let json = r#"{"attack":{"Fgsm":{"epsilon":0.1}},"seed":3,"invocation":0}"#;
    let injector: PoisonInjector = serde_json::from_str(json).unwrap();
    assert_eq!(injector.boost(), 1.0);
}

#[test]
fn buildings_and_devices_round_trip() {
    let b = Building::paper(3);
    let back: Building = serde_json::from_str(&serde_json::to_string(&b).unwrap()).unwrap();
    assert_eq!(b, back);

    let d = &DeviceProfile::paper_fleet()[4];
    let back: DeviceProfile = serde_json::from_str(&serde_json::to_string(d).unwrap()).unwrap();
    assert_eq!(*d, back);
}

#[test]
fn full_dataset_round_trips() {
    let data = BuildingDataset::generate(Building::tiny(2), &DatasetConfig::tiny(), 2);
    let json = serde_json::to_string(&data).unwrap();
    let back: BuildingDataset = serde_json::from_str(&json).unwrap();
    assert_eq!(data.server_train, back.server_train);
    assert_eq!(data.building, back.building);
}

#[test]
fn round_lifecycle_types_round_trip() {
    use safeloc_fl::{Availability, CohortSampler, RoundPlan};

    // A deployment persists its sampler configuration and audit-logs its
    // plans and reports; all three must survive serde.
    let sampler = CohortSampler::weighted(3, vec![1.0, 2.0, 0.5, 4.0], 17)
        .with_dropout(0.1)
        .with_straggle(0.05);
    let back: CohortSampler =
        serde_json::from_str(&serde_json::to_string(&sampler).unwrap()).unwrap();
    assert_eq!(sampler, back);

    let plan = RoundPlan::new(vec![
        (0, Availability::Participates),
        (2, Availability::Straggles),
        (3, Availability::DropsOut),
    ]);
    let back: RoundPlan = serde_json::from_str(&serde_json::to_string(&plan).unwrap()).unwrap();
    assert_eq!(plan, back);
}

#[test]
fn round_reports_round_trip() {
    use safeloc_fl::{
        Client, DefensePipeline, Framework, RoundPlan, RoundReport, SequentialFlServer,
        ServerConfig,
    };

    let data = BuildingDataset::generate(Building::tiny(2), &DatasetConfig::tiny(), 2);
    let mut s = SequentialFlServer::new(
        &[data.building.num_aps(), 8, data.building.num_rps()],
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    s.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(&data, 2);
    let plan = RoundPlan::full(clients.len());
    let report = s.run_round(&mut clients, &plan);
    let back: RoundReport = serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    assert_eq!(report, back);
}
