//! The parallel federated round must be an optimization, not a semantics
//! change: for a fixed seed, every framework's post-round global model is
//! bitwise identical regardless of how many threads the fleet trains on —
//! and the same holds for the round-lifecycle layer: a seeded
//! `CohortSampler` draws identical cohorts and an `FlSession` produces
//! identical reports and GMs for any thread count.
//!
//! This holds by construction — clients draw from per-client seed streams,
//! the parallel map preserves client order, and plans are drawn from a
//! dedicated `(seed, round)` RNG stream — and this suite pins it.

use rayon::ThreadPoolBuilder;
use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{
    Aggregator, Client, ClientUpdate, CohortSampler, DefensePipeline, DeltaCompressor, DeltaSpec,
    FlSession, Framework, RoundPlan, RoundReport, SequentialFlServer, ServerConfig,
};
use safeloc_nn::{HasParams, NamedParams};

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(4), &DatasetConfig::tiny(), 4)
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("pool")
        .install(f)
}

#[test]
fn sequential_server_round_is_bitwise_deterministic_across_thread_counts() {
    let data = dataset();
    let run = |threads: usize| -> NamedParams {
        with_threads(threads, || {
            let mut s = SequentialFlServer::new(
                &[data.building.num_aps(), 16, data.building.num_rps()],
                Box::new(safeloc_fl::DefensePipeline::fedavg()),
                ServerConfig::tiny(),
            );
            s.pretrain(&data.server_train);
            let mut clients = Client::from_dataset(&data, 0);
            let plan = RoundPlan::full(clients.len());
            for _ in 0..2 {
                s.run_round(&mut clients, &plan);
            }
            s.global_model().snapshot()
        })
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "1 vs 2 threads diverged");
    assert_eq!(serial, run(5), "1 vs 5 threads diverged");
}

#[test]
fn safeloc_round_is_bitwise_deterministic_across_thread_counts() {
    let data = dataset();
    let run = |threads: usize| -> NamedParams {
        with_threads(threads, || {
            let mut f = SafeLoc::new(
                data.building.num_aps(),
                data.building.num_rps(),
                SafeLocConfig::tiny(),
            );
            f.pretrain(&data.server_train);
            let mut clients = Client::from_dataset(&data, 0);
            let plan = RoundPlan::full(clients.len());
            f.run_round(&mut clients, &plan);
            f.network().snapshot()
        })
    };
    let serial = run(1);
    assert_eq!(
        serial,
        run(3),
        "SAFELOC round diverged across thread counts"
    );
}

#[test]
fn krum_with_shared_distance_matrix_is_thread_count_invariant() {
    // Synthetic updates with a known consensus cluster and one outlier.
    let dims = 40;
    let gm: NamedParams = NamedParams::new(vec![("w".into(), safeloc_nn::Matrix::zeros(1, dims))]);
    let updates: Vec<ClientUpdate> = (0..8)
        .map(|i| {
            let v: Vec<f32> = (0..dims)
                .map(|c| {
                    if i == 7 {
                        50.0 + c as f32
                    } else {
                        1.0 + (i * dims + c) as f32 * 1e-3
                    }
                })
                .collect();
            ClientUpdate::new(
                i,
                NamedParams::new(vec![(
                    "w".into(),
                    safeloc_nn::Matrix::from_vec(1, dims, v).unwrap(),
                )]),
                5,
            )
        })
        .collect();
    let run = |threads: usize| -> NamedParams {
        with_threads(threads, || {
            DefensePipeline::krum(1).aggregate(&gm, &updates).params
        })
    };
    let serial = run(1);
    assert_eq!(
        serial,
        run(4),
        "Krum selection diverged across thread counts"
    );
    // And it still rejects the outlier.
    let w = serial.get("w").unwrap().get(0, 0);
    assert!(w < 10.0, "Krum picked the outlier: {w}");
}

#[test]
fn batch_prediction_is_identical_across_thread_counts() {
    let data = dataset();
    let model = safeloc_nn::Sequential::mlp(
        &[data.building.num_aps(), 24, data.building.num_rps()],
        safeloc_nn::Activation::Relu,
        3,
    );
    // Enough rows to trigger the parallel row-chunk path.
    let mut rows = Vec::new();
    for _ in 0..6 {
        rows.extend(data.server_train.x.iter_rows().map(|r| r.to_vec()));
    }
    let x = safeloc_nn::Matrix::from_rows(&rows);
    let serial = with_threads(1, || model.predict(&x));
    let parallel = with_threads(4, || model.predict(&x));
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), x.rows());
}

#[test]
fn cohort_sampling_is_seed_deterministic_across_thread_counts() {
    let sampler = CohortSampler::uniform(3, 21)
        .with_dropout(0.2)
        .with_straggle(0.2);
    let draw = |threads: usize| -> Vec<RoundPlan> {
        with_threads(threads, || (0..10).map(|r| sampler.plan(r, 8)).collect())
    };
    let serial = draw(1);
    assert_eq!(serial, draw(4), "plan stream diverged across thread counts");
    // The same seed re-queried out of order still reproduces.
    assert_eq!(serial[7], sampler.plan(7, 8));
}

#[test]
fn compressed_rounds_are_bitwise_deterministic_across_thread_counts() {
    // Error-feedback compression must not perturb determinism: a fleet
    // where every client ships top-k deltas (and one ships q8) produces a
    // bitwise-identical GM and outcome trail on any thread count. The
    // compressors are stateful — residuals accumulate round to round — so
    // this also pins that residual state evolves identically under the
    // parallel client map.
    let data = dataset();
    let run = |threads: usize| -> (NamedParams, Vec<RoundReport>) {
        with_threads(threads, || {
            let mut s = SequentialFlServer::new(
                &[data.building.num_aps(), 16, data.building.num_rps()],
                Box::new(safeloc_fl::DefensePipeline::fedavg()),
                ServerConfig::tiny(),
            );
            s.pretrain(&data.server_train);
            let mut clients = Client::from_dataset(&data, 0);
            for client in &mut clients {
                client.compressor = Some(DeltaCompressor::new(DeltaSpec::TopK { fraction: 0.1 }));
            }
            clients[1].compressor = Some(DeltaCompressor::new(DeltaSpec::QuantizedI8));
            let mut session = FlSession::builder(Box::new(s))
                .clients(clients)
                .sampler(CohortSampler::uniform(3, 13))
                .build();
            session.run(3);
            let (framework, _, reports) = session.into_parts();
            (framework.global_params(), reports)
        })
    };
    let (gm_serial, reports_serial) = run(1);
    let (gm_parallel, reports_parallel) = run(4);
    assert_eq!(gm_serial, gm_parallel, "compressed session GM diverged");
    let outcomes = |reports: &[RoundReport]| -> Vec<_> {
        reports
            .iter()
            .map(|r| r.clients.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        outcomes(&reports_serial),
        outcomes(&reports_parallel),
        "compressed per-client outcomes diverged across thread counts"
    );
}

#[test]
fn subsampled_session_is_bitwise_deterministic_across_thread_counts() {
    // A churny session — uniform-3 cohorts with dropouts and stragglers —
    // must produce identical cohorts, identical per-client outcomes and a
    // bitwise-identical GM on any thread count.
    let data = dataset();
    let run = |threads: usize| -> (NamedParams, Vec<RoundReport>) {
        with_threads(threads, || {
            let mut s = SequentialFlServer::new(
                &[data.building.num_aps(), 16, data.building.num_rps()],
                Box::new(safeloc_fl::DefensePipeline::fedavg()),
                ServerConfig::tiny(),
            );
            s.pretrain(&data.server_train);
            let mut session = FlSession::builder(Box::new(s))
                .clients(Client::from_dataset(&data, 0))
                .sampler(
                    CohortSampler::uniform(3, 13)
                        .with_dropout(0.25)
                        .with_straggle(0.25),
                )
                .build();
            session.run(3);
            let (framework, _, reports) = session.into_parts();
            (framework.global_params(), reports)
        })
    };
    let (gm_serial, reports_serial) = run(1);
    let (gm_parallel, reports_parallel) = run(4);
    assert_eq!(gm_serial, gm_parallel, "subsampled session GM diverged");
    // Timings differ run to run; the client outcome trail must not.
    let outcomes = |reports: &[RoundReport]| -> Vec<_> {
        reports
            .iter()
            .map(|r| r.clients.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        outcomes(&reports_serial),
        outcomes(&reports_parallel),
        "per-client outcomes diverged across thread counts"
    );
}
