//! The parallel federated round must be an optimization, not a semantics
//! change: for a fixed seed, every framework's post-round global model is
//! bitwise identical regardless of how many threads the fleet trains on.
//!
//! This holds by construction — clients draw from per-client seed streams
//! and the parallel map preserves client order — and this suite pins it.

use rayon::ThreadPoolBuilder;
use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{
    Aggregator, Client, ClientUpdate, Framework, Krum, SequentialFlServer, ServerConfig,
};
use safeloc_nn::{HasParams, NamedParams};

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(4), &DatasetConfig::tiny(), 4)
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("pool")
        .install(f)
}

#[test]
fn sequential_server_round_is_bitwise_deterministic_across_thread_counts() {
    let data = dataset();
    let run = |threads: usize| -> NamedParams {
        with_threads(threads, || {
            let mut s = SequentialFlServer::new(
                &[data.building.num_aps(), 16, data.building.num_rps()],
                Box::new(safeloc_fl::FedAvg),
                ServerConfig::tiny(),
            );
            s.pretrain(&data.server_train);
            let mut clients = Client::from_dataset(&data, 0);
            s.run_rounds(&mut clients, 2);
            s.global_model().snapshot()
        })
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "1 vs 2 threads diverged");
    assert_eq!(serial, run(5), "1 vs 5 threads diverged");
}

#[test]
fn safeloc_round_is_bitwise_deterministic_across_thread_counts() {
    let data = dataset();
    let run = |threads: usize| -> NamedParams {
        with_threads(threads, || {
            let mut f = SafeLoc::new(
                data.building.num_aps(),
                data.building.num_rps(),
                SafeLocConfig::tiny(),
            );
            f.pretrain(&data.server_train);
            let mut clients = Client::from_dataset(&data, 0);
            f.round(&mut clients);
            f.network().snapshot()
        })
    };
    let serial = run(1);
    assert_eq!(
        serial,
        run(3),
        "SAFELOC round diverged across thread counts"
    );
}

#[test]
fn krum_with_shared_distance_matrix_is_thread_count_invariant() {
    // Synthetic updates with a known consensus cluster and one outlier.
    let dims = 40;
    let gm: NamedParams = NamedParams::new(vec![("w".into(), safeloc_nn::Matrix::zeros(1, dims))]);
    let updates: Vec<ClientUpdate> = (0..8)
        .map(|i| {
            let v: Vec<f32> = (0..dims)
                .map(|c| {
                    if i == 7 {
                        50.0 + c as f32
                    } else {
                        1.0 + (i * dims + c) as f32 * 1e-3
                    }
                })
                .collect();
            ClientUpdate::new(
                i,
                NamedParams::new(vec![(
                    "w".into(),
                    safeloc_nn::Matrix::from_vec(1, dims, v).unwrap(),
                )]),
                5,
            )
        })
        .collect();
    let run = |threads: usize| -> NamedParams {
        with_threads(threads, || Krum::new(1).aggregate(&gm, &updates))
    };
    let serial = run(1);
    assert_eq!(
        serial,
        run(4),
        "Krum selection diverged across thread counts"
    );
    // And it still rejects the outlier.
    let w = serial.get("w").unwrap().get(0, 0);
    assert!(w < 10.0, "Krum picked the outlier: {w}");
}

#[test]
fn batch_prediction_is_identical_across_thread_counts() {
    let data = dataset();
    let model = safeloc_nn::Sequential::mlp(
        &[data.building.num_aps(), 24, data.building.num_rps()],
        safeloc_nn::Activation::Relu,
        3,
    );
    // Enough rows to trigger the parallel row-chunk path.
    let mut rows = Vec::new();
    for _ in 0..6 {
        rows.extend(data.server_train.x.iter_rows().map(|r| r.to_vec()));
    }
    let x = safeloc_nn::Matrix::from_rows(&rows);
    let serial = with_threads(1, || model.predict(&x));
    let parallel = with_threads(4, || model.predict(&x));
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), x.rows());
}
