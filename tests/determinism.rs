//! Integration: the whole stack is deterministic given a seed — datasets,
//! attacks, training, federated rounds and evaluation.

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Client, DefensePipeline, Framework, RoundPlan, SequentialFlServer, ServerConfig};
use safeloc_nn::HasParams;

fn run_safeloc(seed: u64) -> Vec<usize> {
    let data = BuildingDataset::generate(Building::tiny(seed), &DatasetConfig::tiny(), seed);
    let mut f = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        SafeLocConfig {
            seed,
            ..SafeLocConfig::tiny()
        },
    );
    f.pretrain(&data.server_train);
    let mut clients = Client::from_dataset(&data, seed);
    clients[0].injector = Some(PoisonInjector::new(Attack::mim(0.2), seed));
    let plan = RoundPlan::full(clients.len());
    for _ in 0..2 {
        f.run_round(&mut clients, &plan);
    }
    f.predict(&data.client_test[1].x)
}

#[test]
fn safeloc_runs_reproduce_bit_for_bit() {
    assert_eq!(run_safeloc(7), run_safeloc(7));
}

#[test]
fn different_seeds_give_different_runs() {
    assert_ne!(run_safeloc(7), run_safeloc(8));
}

#[test]
fn sequential_server_rounds_reproduce() {
    let data = BuildingDataset::generate(Building::tiny(5), &DatasetConfig::tiny(), 5);
    let run = || {
        let mut s = SequentialFlServer::new(
            &[data.building.num_aps(), 16, data.building.num_rps()],
            Box::new(DefensePipeline::fedavg()),
            ServerConfig::tiny(),
        );
        s.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 5);
        clients[1].injector = Some(PoisonInjector::new(Attack::label_flip(0.5), 5));
        let plan = RoundPlan::full(clients.len());
        for _ in 0..2 {
            s.run_round(&mut clients, &plan);
        }
        s.global_model().snapshot()
    };
    assert_eq!(run(), run());
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    let a = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 99);
    let b = BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), 99);
    assert_eq!(a.server_train, b.server_train);
    assert_eq!(a.client_local, b.client_local);
    assert_eq!(a.client_test, b.client_test);
}
