//! Indoor radio propagation: log-distance path loss with log-normal shadow
//! fading, frozen into a per-building [`RadioMap`].
//!
//! The radio map is the "ground truth" of the simulation: for every
//! (RP, AP) pair it stores the RSS a perfectly calibrated receiver would
//! observe. Shadow fading is sampled **once** per (RP, AP) pair — walls and
//! furniture do not move between measurements — so repeated fingerprints at
//! the same RP differ only by device distortion and measurement noise,
//! exactly like real survey data.

use crate::building::Building;
use crate::device::DeviceProfile;
use crate::normalize::{dbm_to_unit, RSS_FLOOR_DBM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use safeloc_nn::Matrix;
use serde::{Deserialize, Serialize};

/// Log-distance path-loss model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationModel {
    /// Path-loss exponent; ~3.0 for obstructed indoor environments
    /// (ITU indoor office: 2.8–3.3).
    pub path_loss_exponent: f32,
    /// Standard deviation of log-normal shadow fading, in dB.
    pub shadowing_db: f32,
}

impl Default for PropagationModel {
    fn default() -> Self {
        Self {
            path_loss_exponent: 3.2,
            shadowing_db: 6.0,
        }
    }
}

impl PropagationModel {
    /// Deterministic mean RSS (dBm) at distance `d` meters from an AP whose
    /// received power at 1 m is `tx_dbm`.
    pub fn mean_rss_dbm(&self, tx_dbm: f32, d: f32) -> f32 {
        let d = d.max(0.5); // avoid the near-field singularity
        tx_dbm - 10.0 * self.path_loss_exponent * d.log10()
    }
}

/// The frozen ground-truth RSS of one building: a `(n_rps, n_aps)` matrix of
/// dBm values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioMap {
    base_dbm: Matrix,
}

impl RadioMap {
    /// Generates the radio map for `building` under `model`, with shadow
    /// fading drawn deterministically from `seed`.
    pub fn generate(building: &Building, model: &PropagationModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AD0_11A9);
        let shadow = Normal::new(0.0f32, model.shadowing_db.max(0.0))
            .expect("shadowing_db is finite and non-negative");
        let n_rps = building.num_rps();
        let n_aps = building.num_aps();
        let mut base = Matrix::zeros(n_rps, n_aps);
        for (r, rp) in building.rps().iter().enumerate() {
            for (a, ap) in building.aps().iter().enumerate() {
                let dx = rp.x - ap.x;
                let dy = rp.y - ap.y;
                let d = (dx * dx + dy * dy + ap.z * ap.z).sqrt();
                let mean = model.mean_rss_dbm(ap.tx_dbm, d);
                let rss = mean + shadow.sample(&mut rng);
                base.set(r, a, rss.clamp(RSS_FLOOR_DBM, 0.0));
            }
        }
        Self { base_dbm: base }
    }

    /// Number of reference points covered.
    pub fn num_rps(&self) -> usize {
        self.base_dbm.rows()
    }

    /// Number of access points covered.
    pub fn num_aps(&self) -> usize {
        self.base_dbm.cols()
    }

    /// Ground-truth dBm row for RP `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn truth_dbm(&self, label: usize) -> &[f32] {
        self.base_dbm.row(label)
    }

    /// Simulates one fingerprint measurement of RP `label` by `device`,
    /// returning `[0,1]`-normalized RSS values (one per AP).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn measure(&self, label: usize, device: &DeviceProfile, rng: &mut impl Rng) -> Vec<f32> {
        self.truth_dbm(label)
            .iter()
            .enumerate()
            .map(|(ap, &dbm)| dbm_to_unit(device.measure_dbm(dbm, ap, rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_decays_with_distance() {
        let m = PropagationModel::default();
        let near = m.mean_rss_dbm(-40.0, 1.0);
        let mid = m.mean_rss_dbm(-40.0, 10.0);
        let far = m.mean_rss_dbm(-40.0, 30.0);
        assert!(near > mid && mid > far);
        // 10x distance under n=3.2 costs 32 dB.
        assert!((near - mid - 32.0).abs() < 1e-4);
    }

    #[test]
    fn near_field_is_clamped() {
        let m = PropagationModel::default();
        assert_eq!(m.mean_rss_dbm(-40.0, 0.0), m.mean_rss_dbm(-40.0, 0.5));
    }

    #[test]
    fn radio_map_shapes_match_building() {
        let b = Building::tiny(1);
        let map = RadioMap::generate(&b, &PropagationModel::default(), 1);
        assert_eq!(map.num_rps(), b.num_rps());
        assert_eq!(map.num_aps(), b.num_aps());
    }

    #[test]
    fn radio_map_is_deterministic() {
        let b = Building::tiny(1);
        let a = RadioMap::generate(&b, &PropagationModel::default(), 5);
        let c = RadioMap::generate(&b, &PropagationModel::default(), 5);
        assert_eq!(a, c);
        let d = RadioMap::generate(&b, &PropagationModel::default(), 6);
        assert_ne!(a, d);
    }

    #[test]
    fn truth_values_are_in_range() {
        let b = Building::paper(5);
        let map = RadioMap::generate(&b, &PropagationModel::default(), 2);
        for r in 0..map.num_rps() {
            for &v in map.truth_dbm(r) {
                assert!((RSS_FLOOR_DBM..=0.0).contains(&v));
            }
        }
    }

    #[test]
    fn nearby_rps_have_similar_fingerprints() {
        // Spatial consistency: adjacent RPs (1 m apart) must be much more
        // similar than RPs at opposite ends of the path, else localization
        // is impossible.
        let b = Building::paper(1);
        let map = RadioMap::generate(&b, &PropagationModel::default(), 3);
        let dist = |a: usize, c: usize| -> f32 {
            map.truth_dbm(a)
                .iter()
                .zip(map.truth_dbm(c))
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let near = dist(0, 1);
        let far = dist(0, b.num_rps() - 1);
        assert!(
            far > near * 1.5,
            "no spatial structure: near {near}, far {far}"
        );
    }

    #[test]
    fn measurements_are_normalized() {
        let b = Building::tiny(2);
        let map = RadioMap::generate(&b, &PropagationModel::default(), 2);
        let device = &DeviceProfile::paper_fleet()[0];
        let mut rng = StdRng::seed_from_u64(0);
        let fp = map.measure(3, device, &mut rng);
        assert_eq!(fp.len(), b.num_aps());
        assert!(fp.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn different_devices_see_different_fingerprints() {
        let b = Building::tiny(2);
        let map = RadioMap::generate(&b, &PropagationModel::default(), 2);
        let fleet = DeviceProfile::paper_fleet();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let fa = map.measure(0, &fleet[0], &mut rng_a);
        let fb = map.measure(0, &fleet[4], &mut rng_b);
        let diff: f32 = fa.iter().zip(&fb).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.05, "device heterogeneity not visible: {diff}");
    }
}
