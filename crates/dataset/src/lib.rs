//! Synthetic Wi-Fi RSS fingerprint substrate for the SAFELOC reproduction.
//!
//! The paper evaluates on a proprietary dataset: RSS fingerprints collected
//! in five university buildings with six heterogeneous smartphones. That data
//! is not public, so this crate builds the closest synthetic equivalent that
//! exercises the same code paths (see `DESIGN.md` §5):
//!
//! * [`Building`] — a floorplan with reference points (RPs) laid out on a
//!   1 m-granularity walking path and Wi-Fi access points (APs) scattered
//!   over the floor. [`Building::paper`] reconstructs the five buildings with
//!   the paper's exact RP/AP counts.
//! * [`PropagationModel`] — log-distance path loss with log-normal shadow
//!   fading; [`RadioMap`] freezes one realization per building so that every
//!   fingerprint of the same RP is spatially consistent.
//! * [`DeviceProfile`] — per-device gain offset, RSS scaling, sensitivity
//!   floor and measurement noise: the *device heterogeneity* the paper
//!   stresses. [`DeviceProfile::paper_fleet`] returns the six phones.
//! * [`FingerprintSet`] — a `(batch, n_aps)` matrix of `[0,1]`-normalized
//!   RSS rows plus RP labels, ready for the models in `safeloc-nn`.
//! * [`BuildingDataset`] — the full experimental bundle: server-side
//!   training split (Motorola Z2, 5 fingerprints/RP), per-client local data
//!   and held-out test splits (1 fingerprint/RP), exactly mirroring the
//!   paper's §V.A protocol.
//!
//! # Example
//!
//! ```
//! use safeloc_dataset::{Building, DatasetConfig, BuildingDataset};
//!
//! let cfg = DatasetConfig::tiny(); // small counts for tests/docs
//! let data = BuildingDataset::generate(Building::tiny(7), &cfg, 7);
//! assert_eq!(data.server_train.x.cols(), data.building.num_aps());
//! assert!(data.server_train.x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
//! ```

pub mod building;
pub mod device;
pub mod fingerprint;
pub mod generator;
pub mod normalize;
pub mod propagation;

pub use building::{AccessPoint, Building, ReferencePoint};
pub use device::{DeviceCatalog, DeviceProfile};
pub use fingerprint::FingerprintSet;
pub use generator::{BuildingDataset, DatasetConfig};
pub use normalize::{dbm_to_unit, unit_to_dbm, RSS_FLOOR_DBM};
pub use propagation::{PropagationModel, RadioMap};
