//! End-to-end dataset generation mirroring the paper's §V.A protocol:
//! train on Motorola Z2 (5 fingerprints/RP), test on the other five phones
//! (1 fingerprint/RP), with per-client local data for federated rounds.

use crate::building::Building;
use crate::device::DeviceProfile;
use crate::fingerprint::FingerprintSet;
use crate::propagation::{PropagationModel, RadioMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safeloc_nn::Matrix;
use serde::{Deserialize, Serialize};

/// Dataset-generation knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Radio model.
    pub propagation: PropagationModel,
    /// Devices carried by clients (the paper's six phones by default).
    pub devices: Vec<DeviceProfile>,
    /// Index into `devices` of the phone used for server-side training.
    pub train_device: usize,
    /// Fingerprints per RP collected by the training device (paper: 5).
    pub train_fp_per_rp: usize,
    /// Fingerprints per RP in each client's local (re-training) split.
    pub client_fp_per_rp: usize,
    /// Fingerprints per RP in each client's held-out test split (paper: 1).
    pub test_fp_per_rp: usize,
}

impl DatasetConfig {
    /// The paper's protocol: six phones, train on Motorola Z2 with 5
    /// fingerprints/RP, test with 1 fingerprint/RP on the rest.
    pub fn paper() -> Self {
        Self {
            propagation: PropagationModel::default(),
            devices: DeviceProfile::paper_fleet(),
            train_device: DeviceProfile::TRAIN_DEVICE,
            train_fp_per_rp: 5,
            client_fp_per_rp: 2,
            test_fp_per_rp: 1,
        }
    }

    /// Scales the client fleet to `n` devices (Fig. 7's scalability sweep),
    /// topping up with synthetic phones.
    pub fn with_fleet(mut self, n: usize, seed: u64) -> Self {
        self.devices = DeviceProfile::fleet(n.max(self.train_device + 1), seed);
        self
    }

    /// Small counts for tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            propagation: PropagationModel::default(),
            devices: DeviceProfile::paper_fleet().into_iter().take(3).collect(),
            train_device: 2,
            train_fp_per_rp: 3,
            client_fp_per_rp: 1,
            test_fp_per_rp: 1,
        }
    }
}

/// The complete experimental bundle for one building.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildingDataset {
    /// The floorplan (geometry + label→coordinate mapping).
    pub building: Building,
    /// Frozen ground-truth radio environment.
    pub radio_map: RadioMap,
    /// Server-side training split, collected by the training device.
    pub server_train: FingerprintSet,
    /// Per-client local data, one entry per device in config order
    /// (including the training device, which also acts as a client).
    pub client_local: Vec<FingerprintSet>,
    /// Per-client held-out test split, aligned with `client_local`.
    pub client_test: Vec<FingerprintSet>,
    /// The device profiles, aligned with the client splits.
    pub devices: Vec<DeviceProfile>,
    /// Which device collected `server_train`.
    pub train_device: usize,
}

impl BuildingDataset {
    /// Generates the bundle for `building` under `cfg`, deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.train_device` is out of range or `cfg.devices` is
    /// empty.
    pub fn generate(building: Building, cfg: &DatasetConfig, seed: u64) -> Self {
        assert!(!cfg.devices.is_empty(), "at least one device required");
        assert!(
            cfg.train_device < cfg.devices.len(),
            "train_device {} out of range {}",
            cfg.train_device,
            cfg.devices.len()
        );
        let radio_map = RadioMap::generate(&building, &cfg.propagation, seed);

        let collect = |device: &DeviceProfile, fp_per_rp: usize, stream: u64| -> FingerprintSet {
            let mut rng = StdRng::seed_from_u64(seed ^ stream);
            let n = building.num_rps() * fp_per_rp;
            let mut rows = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for rp in 0..building.num_rps() {
                for _ in 0..fp_per_rp {
                    rows.push(radio_map.measure(rp, device, &mut rng));
                    labels.push(rp);
                }
            }
            FingerprintSet::new(Matrix::from_rows(&rows), labels)
        };

        let server_train = collect(
            &cfg.devices[cfg.train_device],
            cfg.train_fp_per_rp,
            0x7EA1_0000,
        );
        let client_local: Vec<FingerprintSet> = cfg
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| collect(d, cfg.client_fp_per_rp, 0xC11E_0000 + i as u64))
            .collect();
        let client_test: Vec<FingerprintSet> = cfg
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| collect(d, cfg.test_fp_per_rp, 0x7E57_0000 + i as u64))
            .collect();

        Self {
            building,
            radio_map,
            server_train,
            client_local,
            client_test,
            devices: cfg.devices.clone(),
            train_device: cfg.train_device,
        }
    }

    /// Number of clients (devices).
    pub fn num_clients(&self) -> usize {
        self.devices.len()
    }

    /// The held-out test sets of every device *except* the training device —
    /// the paper evaluates on the five non-training phones.
    pub fn eval_sets(&self) -> Vec<(usize, &FingerprintSet)> {
        self.client_test
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.train_device)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 11)
    }

    #[test]
    fn shapes_follow_config() {
        let d = tiny();
        let n_rps = d.building.num_rps();
        assert_eq!(d.server_train.len(), n_rps * 3);
        assert_eq!(d.client_local.len(), 3);
        assert_eq!(d.client_test.len(), 3);
        for c in &d.client_local {
            assert_eq!(c.len(), n_rps);
            assert_eq!(c.num_aps(), d.building.num_aps());
        }
    }

    #[test]
    fn labels_cover_all_rps() {
        let d = tiny();
        let max = d.server_train.max_label().unwrap();
        assert_eq!(max, d.building.num_rps() - 1);
        for rp in 0..d.building.num_rps() {
            assert!(d.server_train.labels.contains(&rp));
        }
    }

    #[test]
    fn all_values_normalized() {
        let d = tiny();
        for set in std::iter::once(&d.server_train)
            .chain(&d.client_local)
            .chain(&d.client_test)
        {
            assert!(set.x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.server_train, b.server_train);
        assert_eq!(a.client_test, b.client_test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 11);
        let b = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 12);
        assert_ne!(a.server_train, b.server_train);
    }

    #[test]
    fn eval_sets_exclude_train_device() {
        let d = tiny();
        let evals = d.eval_sets();
        assert_eq!(evals.len(), 2);
        assert!(evals.iter().all(|(i, _)| *i != d.train_device));
    }

    #[test]
    fn paper_config_matches_protocol() {
        let cfg = DatasetConfig::paper();
        assert_eq!(cfg.devices.len(), 6);
        assert_eq!(cfg.train_fp_per_rp, 5);
        assert_eq!(cfg.test_fp_per_rp, 1);
        assert_eq!(cfg.devices[cfg.train_device].name, "Motorola Z2");
    }

    #[test]
    fn fleet_scaling_preserves_train_device() {
        let cfg = DatasetConfig::paper().with_fleet(12, 0);
        assert_eq!(cfg.devices.len(), 12);
        assert_eq!(cfg.devices[cfg.train_device].name, "Motorola Z2");
    }

    #[test]
    fn training_split_is_learnable() {
        // A nearest-neighbour classifier on the training split should beat
        // random guessing by a wide margin on the test split of another
        // device — i.e. the synthetic data actually supports localization.
        let d = tiny();
        let train = &d.server_train;
        let test = &d.client_test[0];
        let mut hits = 0;
        for (i, row) in test.x.iter_rows().enumerate() {
            let mut best = (f32::INFINITY, 0usize);
            for (j, trow) in train.x.iter_rows().enumerate() {
                let dist: f32 = row.iter().zip(trow).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist < best.0 {
                    best = (dist, train.labels[j]);
                }
            }
            if best.1 == test.labels[i] {
                hits += 1;
            }
        }
        let acc = hits as f32 / test.len() as f32;
        let chance = 1.0 / d.building.num_rps() as f32;
        assert!(
            acc > chance * 3.0,
            "kNN accuracy {acc} too close to chance {chance}"
        );
    }
}
