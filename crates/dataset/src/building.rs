//! Building floorplans: reference points on a walking path plus access
//! points scattered over the floor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A reference point (RP): a labelled position on the floorplan at which
/// fingerprints are collected. The paper uses 1 m granularity between RPs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReferencePoint {
    /// X coordinate in meters.
    pub x: f32,
    /// Y coordinate in meters.
    pub y: f32,
}

impl ReferencePoint {
    /// Euclidean distance to another RP, in meters — the unit every
    /// localization-error figure in the paper reports.
    pub fn distance(&self, other: &ReferencePoint) -> f32 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A Wi-Fi access point with a position and transmit power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessPoint {
    /// X coordinate in meters.
    pub x: f32,
    /// Y coordinate in meters.
    pub y: f32,
    /// Z offset in meters (APs are usually ceiling-mounted).
    pub z: f32,
    /// Received power at the 1 m reference distance, in dBm.
    pub tx_dbm: f32,
}

/// A building floorplan: RPs along a serpentine walking path at 1 m
/// granularity, and APs placed uniformly over the floor.
///
/// [`Building::paper`] reproduces the five buildings of the paper's §V.A
/// with the exact RP/AP counts; geometry is synthetic (see `DESIGN.md` §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Building {
    /// Identifier (1-based for the paper buildings).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Floor width in meters.
    pub width: f32,
    /// Floor height in meters.
    pub height: f32,
    rps: Vec<ReferencePoint>,
    aps: Vec<AccessPoint>,
}

impl Building {
    /// Generates a building with `n_rps` reference points on a serpentine
    /// path (1 m spacing) and `n_aps` access points placed uniformly.
    ///
    /// The same `(id, n_rps, n_aps, seed)` always produces the same
    /// building.
    ///
    /// # Panics
    ///
    /// Panics if `n_rps == 0` or `n_aps == 0`.
    pub fn generate(id: usize, name: &str, n_rps: usize, n_aps: usize, seed: u64) -> Self {
        assert!(n_rps > 0, "a building needs at least one RP");
        assert!(n_aps > 0, "a building needs at least one AP");
        // Serpentine path over a roughly square grid with 1 m pitch and
        // 2 m corridor spacing between passes.
        let per_row = (n_rps as f32).sqrt().ceil() as usize;
        let rows = n_rps.div_ceil(per_row);
        let width = per_row as f32 + 2.0;
        let height = rows as f32 * 2.0 + 2.0;

        let mut rps = Vec::with_capacity(n_rps);
        'outer: for row in 0..rows {
            for col in 0..per_row {
                if rps.len() == n_rps {
                    break 'outer;
                }
                let x = if row % 2 == 0 {
                    col as f32 + 1.0
                } else {
                    (per_row - 1 - col) as f32 + 1.0
                };
                let y = row as f32 * 2.0 + 1.0;
                rps.push(ReferencePoint { x, y });
            }
        }

        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let aps = (0..n_aps)
            .map(|_| AccessPoint {
                x: rng.gen_range(0.0..width),
                y: rng.gen_range(0.0..height),
                z: rng.gen_range(2.0..3.0),
                // Typical measured power at 1 m from consumer APs seen
                // through at least one wall; weak enough that distant APs
                // drop below device sensitivity, giving realistically
                // sparse fingerprints.
                tx_dbm: rng.gen_range(-55.0..-42.0),
            })
            .collect();

        Self {
            id,
            name: name.to_string(),
            width,
            height,
            rps,
            aps,
        }
    }

    /// One of the paper's five buildings (`1..=5`), with the published
    /// RP/AP counts:
    ///
    /// | Building | RPs | visible APs |
    /// |---|---|---|
    /// | 1 | 60 | 203 |
    /// | 2 | 48 | 201 |
    /// | 3 | 70 | 187 |
    /// | 4 | 80 | 135 |
    /// | 5 | 90 | 78 |
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `1..=5`.
    pub fn paper(id: usize) -> Self {
        let (n_rps, n_aps) = match id {
            1 => (60, 203),
            2 => (48, 201),
            3 => (70, 187),
            4 => (80, 135),
            5 => (90, 78),
            _ => panic!("paper buildings are numbered 1..=5, got {id}"),
        };
        Self::generate(
            id,
            &format!("Building {id}"),
            n_rps,
            n_aps,
            0xB17D + id as u64,
        )
    }

    /// All five paper buildings.
    pub fn paper_all() -> Vec<Self> {
        (1..=5).map(Self::paper).collect()
    }

    /// A small building (8 RPs, 12 APs) for fast tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self::generate(0, "Tiny", 8, 12, seed)
    }

    /// Number of reference points (= number of classification labels).
    pub fn num_rps(&self) -> usize {
        self.rps.len()
    }

    /// Number of access points (= model input dimensionality).
    pub fn num_aps(&self) -> usize {
        self.aps.len()
    }

    /// The reference points in label order.
    pub fn rps(&self) -> &[ReferencePoint] {
        &self.rps
    }

    /// The access points in feature order.
    pub fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// Coordinate of RP `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= num_rps()`.
    pub fn rp_coord(&self, label: usize) -> ReferencePoint {
        self.rps[label]
    }

    /// Localization error in meters between a predicted and a true label.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn label_error_m(&self, predicted: usize, truth: usize) -> f32 {
        self.rps[predicted].distance(&self.rps[truth])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_buildings_match_published_counts() {
        let expected = [(60, 203), (48, 201), (70, 187), (80, 135), (90, 78)];
        for (i, (rps, aps)) in expected.iter().enumerate() {
            let b = Building::paper(i + 1);
            assert_eq!(b.num_rps(), *rps, "building {}", i + 1);
            assert_eq!(b.num_aps(), *aps, "building {}", i + 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Building::paper(1), Building::paper(1));
        assert_eq!(Building::tiny(3), Building::tiny(3));
        assert_ne!(Building::tiny(3), Building::tiny(4));
    }

    #[test]
    fn rps_have_one_meter_pitch_along_path() {
        let b = Building::paper(1);
        let rps = b.rps();
        // Consecutive RPs on the same row are exactly 1 m apart; row changes
        // are 2 m. Every step is between 1 and 2.24 m (diagonal at turn).
        for w in rps.windows(2) {
            let d = w[0].distance(&w[1]);
            assert!((0.99..=2.4).contains(&d), "step {d}");
        }
    }

    #[test]
    fn rps_are_unique_positions() {
        let b = Building::paper(5);
        let rps = b.rps();
        for i in 0..rps.len() {
            for j in (i + 1)..rps.len() {
                assert!(rps[i].distance(&rps[j]) > 0.5, "RPs {i} and {j} collide");
            }
        }
    }

    #[test]
    fn aps_are_inside_floor() {
        for b in Building::paper_all() {
            for ap in b.aps() {
                assert!((0.0..=b.width).contains(&ap.x));
                assert!((0.0..=b.height).contains(&ap.y));
            }
        }
    }

    #[test]
    fn label_error_is_zero_for_correct_prediction() {
        let b = Building::tiny(0);
        assert_eq!(b.label_error_m(3, 3), 0.0);
        assert!(b.label_error_m(0, 7) > 0.0);
    }

    #[test]
    fn label_error_is_symmetric() {
        let b = Building::paper(2);
        assert_eq!(b.label_error_m(0, 10), b.label_error_m(10, 0));
    }

    #[test]
    #[should_panic(expected = "numbered 1..=5")]
    fn paper_rejects_bad_id() {
        let _ = Building::paper(9);
    }
}
