//! RSS normalization: the paper standardizes RSS between 0 dBm (strongest)
//! and −100 dBm (weakest); models consume values in `[0, 1]`.

/// Weakest representable RSS; also the "AP not heard" sentinel.
pub const RSS_FLOOR_DBM: f32 = -100.0;

/// Strongest representable RSS.
pub const RSS_CEIL_DBM: f32 = 0.0;

/// Maps dBm in `[-100, 0]` to `[0, 1]` (clamping out-of-range values).
///
/// `0.0` means "not heard / weakest", `1.0` means strongest — the same
/// convention the paper's standardization uses.
pub fn dbm_to_unit(dbm: f32) -> f32 {
    ((dbm.clamp(RSS_FLOOR_DBM, RSS_CEIL_DBM)) - RSS_FLOOR_DBM) / (RSS_CEIL_DBM - RSS_FLOOR_DBM)
}

/// Inverse of [`dbm_to_unit`] for unit values in `[0, 1]` (clamped).
pub fn unit_to_dbm(unit: f32) -> f32 {
    RSS_FLOOR_DBM + unit.clamp(0.0, 1.0) * (RSS_CEIL_DBM - RSS_FLOOR_DBM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        assert_eq!(dbm_to_unit(RSS_FLOOR_DBM), 0.0);
        assert_eq!(dbm_to_unit(RSS_CEIL_DBM), 1.0);
        assert_eq!(unit_to_dbm(0.0), RSS_FLOOR_DBM);
        assert_eq!(unit_to_dbm(1.0), RSS_CEIL_DBM);
    }

    #[test]
    fn midpoint() {
        assert!((dbm_to_unit(-50.0) - 0.5).abs() < 1e-6);
        assert!((unit_to_dbm(0.5) + 50.0).abs() < 1e-4);
    }

    #[test]
    fn out_of_range_is_clamped() {
        assert_eq!(dbm_to_unit(-150.0), 0.0);
        assert_eq!(dbm_to_unit(20.0), 1.0);
        assert_eq!(unit_to_dbm(-0.5), RSS_FLOOR_DBM);
        assert_eq!(unit_to_dbm(1.5), RSS_CEIL_DBM);
    }

    #[test]
    fn round_trip_within_range() {
        for dbm in [-99.0f32, -73.5, -40.0, -1.0] {
            let back = unit_to_dbm(dbm_to_unit(dbm));
            assert!((back - dbm).abs() < 1e-3, "{dbm} -> {back}");
        }
    }

    #[test]
    fn monotonic() {
        let mut last = -1.0;
        for i in 0..=100 {
            let u = dbm_to_unit(-100.0 + i as f32);
            assert!(u > last);
            last = u;
        }
    }
}
