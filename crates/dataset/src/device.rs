//! Device heterogeneity profiles.
//!
//! Different phones report systematically different RSS for the same radio
//! environment: antenna gain, AGC curves, chipset sensitivity and driver
//! quantization all differ. The paper's six phones are modelled as affine
//! dB-domain transforms plus a sensitivity floor and measurement noise —
//! the standard heterogeneity model in the Wi-Fi fingerprinting literature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How one device model distorts ground-truth RSS.
///
/// A measured value is `scale * rss + offset_db + N(0, noise_db)`, reported
/// only if above `sensitivity_dbm` (otherwise the AP is "not heard" and the
/// fingerprint records the −100 dBm floor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device model name.
    pub name: String,
    /// Additive dB offset (antenna gain / calibration bias).
    pub offset_db: f32,
    /// Multiplicative distortion of the dB value (AGC curvature).
    pub scale: f32,
    /// Weakest RSS the chipset reports; below this the AP is missed.
    pub sensitivity_dbm: f32,
    /// Standard deviation of per-measurement Gaussian noise, in dB.
    pub noise_db: f32,
    /// Standard deviation of the *per-AP* gain deviation, in dB: each
    /// (device, AP) pair has a fixed gain error (antenna pattern, channel
    /// response), which is what makes cross-device generalization genuinely
    /// hard — a global offset alone is easy for a DNN to absorb.
    pub ap_gain_db: f32,
    /// Seed of the device's per-AP gain pattern.
    pub gain_seed: u64,
}

impl DeviceProfile {
    /// The six phones used in the paper's data collection.
    ///
    /// `Motorola Z2` (index 2) is the training device; `HTC U11` (index 5)
    /// is the device the paper compromises in the attack experiments.
    pub fn paper_fleet() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile {
                name: "Samsung Galaxy S7".into(),
                offset_db: 3.5,
                scale: 1.04,
                sensitivity_dbm: -93.0,
                noise_db: 1.8,
                ap_gain_db: 3.0,
                gain_seed: 0xF1EE7001,
            },
            DeviceProfile {
                name: "OnePlus 3".into(),
                offset_db: -4.0,
                scale: 0.97,
                sensitivity_dbm: -92.5,
                noise_db: 2.2,
                ap_gain_db: 4.0,
                gain_seed: 0xF1EE7002,
            },
            DeviceProfile {
                name: "Motorola Z2".into(),
                offset_db: 0.0,
                scale: 1.0,
                sensitivity_dbm: -94.0,
                noise_db: 1.5,
                ap_gain_db: 1.0,
                gain_seed: 0xF1EE7003,
            },
            DeviceProfile {
                name: "LG V20".into(),
                offset_db: 2.0,
                scale: 0.93,
                sensitivity_dbm: -92.0,
                noise_db: 2.5,
                ap_gain_db: 3.5,
                gain_seed: 0xF1EE7004,
            },
            DeviceProfile {
                name: "BLU Vivo 8".into(),
                offset_db: -5.0,
                scale: 1.06,
                sensitivity_dbm: -91.5,
                noise_db: 3.0,
                ap_gain_db: 3.5,
                gain_seed: 0xF1EE7005,
            },
            DeviceProfile {
                name: "HTC U11".into(),
                offset_db: 1.5,
                scale: 1.02,
                sensitivity_dbm: -93.0,
                noise_db: 2.0,
                ap_gain_db: 3.0,
                gain_seed: 0xF1EE7006,
            },
        ]
    }

    /// Index of the training device (Motorola Z2) within
    /// [`DeviceProfile::paper_fleet`].
    pub const TRAIN_DEVICE: usize = 2;

    /// Index of the attacker device (HTC U11) within
    /// [`DeviceProfile::paper_fleet`].
    pub const ATTACKER_DEVICE: usize = 5;

    /// A synthetic phone for scalability experiments beyond the six real
    /// devices (Fig. 7 grows the fleet to 24 clients).
    ///
    /// Deterministic per `(index, seed)`.
    pub fn synthetic(index: usize, seed: u64) -> DeviceProfile {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        DeviceProfile {
            name: format!("Synthetic Phone {index}"),
            offset_db: rng.gen_range(-6.0..6.0),
            scale: rng.gen_range(0.92..1.08),
            sensitivity_dbm: rng.gen_range(-94.0..-91.0),
            noise_db: rng.gen_range(1.2..3.2),
            ap_gain_db: rng.gen_range(2.0..4.0),
            gain_seed: seed ^ (index as u64).wrapping_mul(0xA5A5_5A5A_1234_5678),
        }
    }

    /// Builds a fleet of `n` devices: the six paper phones first, topped up
    /// with synthetic ones.
    pub fn fleet(n: usize, seed: u64) -> Vec<DeviceProfile> {
        let mut fleet = Self::paper_fleet();
        fleet.truncate(n);
        for i in fleet.len()..n {
            fleet.push(Self::synthetic(i, seed));
        }
        fleet
    }

    /// Fixed per-AP gain deviation of this device, in dB (deterministic
    /// for a given `(gain_seed, ap)` pair).
    pub fn ap_gain(&self, ap: usize) -> f32 {
        if self.ap_gain_db == 0.0 {
            return 0.0;
        }
        // SplitMix64 hash of (gain_seed, ap) -> approximately N(0, 1) via
        // the sum of four uniforms, scaled to ap_gain_db.
        let mut z = self
            .gain_seed
            .wrapping_add((ap as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut acc = 0.0f32;
        for _ in 0..4 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            acc += (x >> 40) as f32 / (1u64 << 24) as f32; // uniform [0,1)
        }
        // Sum of 4 uniforms: mean 2, std sqrt(4/12) = 0.577.
        (acc - 2.0) / 0.577 * self.ap_gain_db
    }

    /// Applies the device transform to a ground-truth dB value from AP
    /// `ap` (no measurement noise).
    pub fn distort_db(&self, rss_dbm: f32, ap: usize) -> f32 {
        self.scale * rss_dbm + self.offset_db + self.ap_gain(ap)
    }

    /// Applies the device transform plus Gaussian measurement noise,
    /// returning the reported dBm (floored at −100 when below sensitivity).
    pub fn measure_dbm(&self, rss_dbm: f32, ap: usize, rng: &mut impl Rng) -> f32 {
        use crate::normalize::RSS_FLOOR_DBM;
        use rand_distr::{Distribution, Normal};
        let noisy = self.distort_db(rss_dbm, ap)
            + if self.noise_db > 0.0 {
                Normal::new(0.0, self.noise_db)
                    .expect("noise_db is finite and non-negative")
                    .sample(rng)
            } else {
                0.0
            };
        if noisy < self.sensitivity_dbm {
            RSS_FLOOR_DBM
        } else {
            // Chipsets report integer dBm.
            noisy.round().clamp(RSS_FLOOR_DBM, 0.0)
        }
    }
}

/// A lookup table from reported device-model names to their
/// [`DeviceProfile`]s — the serving front's HetNN mapping.
///
/// Phones report a free-form model string; the catalog resolves it to a
/// known device class (case-insensitively) so the server can route the
/// request to that class's model variant. Unknown devices resolve to
/// `None`, and the caller falls back to the building's default model —
/// serving must degrade gracefully for phones the survey never saw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceCatalog {
    profiles: Vec<DeviceProfile>,
}

impl DeviceCatalog {
    /// A catalog over an explicit fleet.
    pub fn new(profiles: Vec<DeviceProfile>) -> Self {
        Self { profiles }
    }

    /// The catalog of the paper's six phones.
    pub fn paper() -> Self {
        Self::new(DeviceProfile::paper_fleet())
    }

    /// The known device classes, in fleet order.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// Resolves a reported model name to its class index
    /// (case-insensitive, surrounding whitespace ignored).
    pub fn class_of(&self, name: &str) -> Option<usize> {
        let wanted = name.trim();
        self.profiles
            .iter()
            .position(|p| p.name.eq_ignore_ascii_case(wanted))
    }

    /// Resolves a reported model name to its profile.
    pub fn resolve(&self, name: &str) -> Option<&DeviceProfile> {
        self.class_of(name).map(|i| &self.profiles[i])
    }

    /// The canonical class name for a reported model name (the catalog's
    /// spelling, not the phone's), or `None` for unknown devices.
    pub fn canonical_name(&self, name: &str) -> Option<&str> {
        self.resolve(name).map(|p| p.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fleet_has_six_paper_phones() {
        let fleet = DeviceProfile::paper_fleet();
        assert_eq!(fleet.len(), 6);
        assert_eq!(fleet[DeviceProfile::TRAIN_DEVICE].name, "Motorola Z2");
        assert_eq!(fleet[DeviceProfile::ATTACKER_DEVICE].name, "HTC U11");
    }

    #[test]
    fn train_device_is_identity_transform() {
        let z2 = &DeviceProfile::paper_fleet()[DeviceProfile::TRAIN_DEVICE];
        assert!((z2.distort_db(-60.0, 0) - -60.0).abs() <= z2.ap_gain_db * 4.0);
    }

    #[test]
    fn devices_actually_differ() {
        let fleet = DeviceProfile::paper_fleet();
        let base = -60.0;
        let readings: Vec<f32> = fleet.iter().map(|d| d.distort_db(base, 0)).collect();
        let min = readings.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = readings.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 5.0, "heterogeneity too small: {readings:?}");
    }

    #[test]
    fn weak_signals_hit_sensitivity_floor() {
        let d = &DeviceProfile::paper_fleet()[4]; // BLU Vivo 8, -87 dBm floor
        let mut rng = StdRng::seed_from_u64(1);
        let measured = d.measure_dbm(-99.0, 0, &mut rng);
        assert_eq!(measured, crate::normalize::RSS_FLOOR_DBM);
    }

    #[test]
    fn measurement_noise_is_bounded_and_nonzero() {
        let d = &DeviceProfile::paper_fleet()[0];
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f32> = (0..200)
            .map(|_| d.measure_dbm(-50.0, 0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let expect = d.distort_db(-50.0, 0);
        assert!(
            (mean - expect).abs() < 1.0,
            "mean {mean} vs expected {expect}"
        );
        let spread = samples
            .iter()
            .map(|s| (s - mean).abs())
            .fold(0.0f32, f32::max);
        assert!(spread > 0.5, "no noise observed");
        assert!(spread < 15.0, "noise implausibly large");
    }

    #[test]
    fn synthetic_devices_are_deterministic_and_distinct() {
        let a = DeviceProfile::synthetic(7, 42);
        let b = DeviceProfile::synthetic(7, 42);
        let c = DeviceProfile::synthetic(8, 42);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn catalog_resolves_names_case_insensitively() {
        let catalog = DeviceCatalog::paper();
        assert_eq!(catalog.class_of("Motorola Z2"), Some(2));
        assert_eq!(catalog.class_of("  htc u11 "), Some(5));
        assert_eq!(catalog.canonical_name("HTC U11"), Some("HTC U11"));
        assert_eq!(catalog.class_of("Pixel 9"), None);
        assert!(catalog.resolve("Pixel 9").is_none());
        assert_eq!(catalog.profiles().len(), 6);
    }

    #[test]
    fn fleet_tops_up_with_synthetics() {
        let fleet = DeviceProfile::fleet(10, 0);
        assert_eq!(fleet.len(), 10);
        assert_eq!(fleet[2].name, "Motorola Z2");
        assert!(fleet[9].name.starts_with("Synthetic"));
        let small = DeviceProfile::fleet(3, 0);
        assert_eq!(small.len(), 3);
    }
}
