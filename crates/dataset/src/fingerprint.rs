//! Fingerprint sets: batches of normalized RSS rows with RP labels.

use safeloc_nn::Matrix;
use serde::{Deserialize, Serialize};

/// A batch of fingerprints: `x` is `(n, n_aps)` with `[0,1]`-normalized RSS,
/// `labels[i]` is the reference-point index of row `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FingerprintSet {
    /// Normalized RSS rows.
    pub x: Matrix,
    /// Reference-point label per row.
    pub labels: Vec<usize>,
}

impl FingerprintSet {
    /// Creates a set, validating that rows and labels line up.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn new(x: Matrix, labels: Vec<usize>) -> Self {
        assert_eq!(labels.len(), x.rows(), "one label per fingerprint row");
        Self { x, labels }
    }

    /// An empty set with `n_aps` feature columns.
    pub fn empty(n_aps: usize) -> Self {
        Self {
            x: Matrix::zeros(0, n_aps),
            labels: Vec::new(),
        }
    }

    /// Number of fingerprints.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the set has no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality (number of APs).
    pub fn num_aps(&self) -> usize {
        self.x.cols()
    }

    /// Appends all fingerprints of `other`.
    ///
    /// # Panics
    ///
    /// Panics if feature dimensionalities differ.
    pub fn extend(&mut self, other: &FingerprintSet) {
        assert_eq!(self.num_aps(), other.num_aps(), "AP count mismatch");
        let mut rows: Vec<Vec<f32>> = self.x.iter_rows().map(|r| r.to_vec()).collect();
        rows.extend(other.x.iter_rows().map(|r| r.to_vec()));
        self.x = Matrix::from_rows(&rows);
        self.labels.extend_from_slice(&other.labels);
    }

    /// Selects a subset of rows by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> FingerprintSet {
        FingerprintSet::new(
            safeloc_nn::gather_rows(&self.x, indices),
            indices.iter().map(|&i| self.labels[i]).collect(),
        )
    }

    /// Largest label present, or `None` for an empty set.
    pub fn max_label(&self) -> Option<usize> {
        self.labels.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set2() -> FingerprintSet {
        FingerprintSet::new(
            Matrix::from_rows(&[vec![0.1, 0.2], vec![0.3, 0.4]]),
            vec![0, 1],
        )
    }

    #[test]
    fn new_validates_lengths() {
        let s = set2();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_aps(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "one label per fingerprint row")]
    fn new_rejects_mismatched_labels() {
        let _ = FingerprintSet::new(Matrix::zeros(2, 3), vec![0]);
    }

    #[test]
    fn empty_set() {
        let s = FingerprintSet::empty(5);
        assert!(s.is_empty());
        assert_eq!(s.num_aps(), 5);
        assert_eq!(s.max_label(), None);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = set2();
        let b = FingerprintSet::new(Matrix::from_rows(&[vec![0.5, 0.6]]), vec![7]);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.labels, vec![0, 1, 7]);
        assert_eq!(a.x.row(2), &[0.5, 0.6]);
        assert_eq!(a.max_label(), Some(7));
    }

    #[test]
    fn subset_selects_rows() {
        let s = set2();
        let sub = s.subset(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.labels, vec![1]);
        assert_eq!(sub.x.row(0), &[0.3, 0.4]);
    }
}
