//! Machine-readable performance reporting (`BENCH_nn.json`).
//!
//! The `perf_report` binary times the numeric hot paths — blocked kernels
//! against the preserved seed baselines in [`crate::naive`], the
//! allocation-free training step, full federated rounds and every
//! aggregation strategy — and serializes the results so the perf
//! trajectory is tracked from PR to PR. Timing here is deliberately plain
//! `Instant`-based median-of-N so the binary has no bench-harness
//! dependency and runs in one shot under `--quick`.

use serde::{Deserialize, Serialize};
use std::time::Instant;

fn usize_zero() -> usize {
    0
}

/// Times `f` as the median of `samples` runs, in nanoseconds per run.
///
/// Each sample executes `f` once; the first (cold) run is excluded via a
/// warmup call. Suitable for workloads ≥ ~10 µs — the report's kernels are
/// timed over inner repetition loops where needed.
pub fn time_median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    times[times.len() / 2]
}

/// One kernel-shape measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Kernel name (`matmul`, `matmul_transposed`, `transposed_matmul`).
    pub kernel: String,
    /// Shape in `m x k · k x n` notation.
    pub shape: String,
    /// Seed scalar-path time, ns per operation.
    pub naive_ns: f64,
    /// Blocked-kernel time, ns per operation.
    pub blocked_ns: f64,
    /// `naive_ns / blocked_ns`.
    pub speedup: f64,
}

/// Training-step measurement on the paper-sized model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTiming {
    /// Model layer widths.
    pub dims: Vec<usize>,
    /// Batch size.
    pub batch: usize,
    /// Seed allocation-per-op path, ns per step.
    pub naive_ns: f64,
    /// Workspace path, ns per step.
    pub workspace_ns: f64,
    /// `naive_ns / workspace_ns`.
    pub speedup: f64,
}

/// Federated-round wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTiming {
    /// Client count in the fleet.
    pub clients: usize,
    /// Seed-style round (scalar kernels, allocation per op, per-client GM
    /// snapshot, strictly sequential clients), ms.
    pub seed_ms: f64,
    /// Rebuilt round forced onto one thread, ms.
    pub serial_ms: f64,
    /// Rebuilt round at the machine's available parallelism, ms.
    pub parallel_ms: f64,
    /// Threads used by the parallel measurement.
    pub threads: usize,
    /// `seed_ms / parallel_ms` — the headline round speedup.
    pub speedup_vs_seed: f64,
    /// `serial_ms / parallel_ms` — the share contributed by threading.
    pub thread_speedup: f64,
}

/// Aggregation-rule cost on paper-sized updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationTiming {
    /// Strategy name.
    pub strategy: String,
    /// Time per aggregate() call, µs.
    pub micros: f64,
}

/// Session-level round timings, folded in from the
/// [`RoundReport`](safeloc_fl::RoundReport) wall clocks an `FlSession`
/// records per round — the train/aggregate split the engine measures for
/// free on every deployment, tracked here so the trajectory catches
/// regressions in either phase independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTiming {
    /// Framework name.
    pub framework: String,
    /// Rounds measured.
    pub rounds: usize,
    /// Fleet size.
    pub clients: usize,
    /// Mean client-training wall time per round, ms.
    pub mean_train_ms: f64,
    /// Mean server-side aggregation wall time per round, ms.
    pub mean_aggregate_ms: f64,
    /// Mean wall time and total rejections per defense stage, in pipeline
    /// order (combiner last) — how the aggregation budget splits across a
    /// composed defense. Empty in reports written before the pipeline
    /// redesign.
    #[serde(default = "Vec::new")]
    pub stage_ms: Vec<StageMean>,
}

/// One defense stage's pooled session cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMean {
    /// Stage (or combiner) name.
    pub stage: String,
    /// Mean wall time per round, ms.
    pub mean_ms: f64,
    /// Total updates rejected by this stage over the session.
    pub rejections: usize,
}

/// Pools [`RoundReport`](safeloc_fl::RoundReport) stage telemetry into
/// per-stage session means (stage order = first appearance, i.e. pipeline
/// order) — the shared [`safeloc_fl::pooled_stage_telemetry`] fold in the
/// `BENCH_nn.json` schema's shape.
pub fn pool_stage_means(reports: &[safeloc_fl::RoundReport]) -> Vec<StageMean> {
    safeloc_fl::pooled_stage_telemetry(reports.iter())
        .into_iter()
        .map(|s| StageMean {
            stage: s.stage,
            mean_ms: s.wall_ms,
            rejections: s.rejections,
        })
        .collect()
}

/// Online-serving measurement from the closed-loop load harness (the
/// `serve_bench` binary): throughput and tail latency of the micro-batched
/// inference service under a synthetic client population — the numbers the
/// ROADMAP's "serve heavy traffic" north star is tracked by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingTiming {
    /// Scenario label (population / batching shape).
    pub scenario: String,
    /// Closed-loop clients driving the service.
    pub population: usize,
    /// Requests completed.
    pub requests: usize,
    /// Requests rejected at admission or by shutdown — nonzero fails
    /// validation: latency/throughput over a surviving subset would
    /// silently mask a misconfigured registry.
    #[serde(default = "usize_zero")]
    pub failures: usize,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Median response latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile response latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile response latency, milliseconds.
    pub p99_ms: f64,
    /// Lowest model version observed across responses.
    pub min_version: u64,
    /// Highest model version observed (`>` min means the run rode through
    /// at least one mid-traffic hot swap).
    pub max_version: u64,
}

/// One TCP-transport serving measurement (the `serve_bench --transport
/// tcp` path): honest end-to-end latency — injected link latency plus
/// framing, the socket round trip and micro-batched inference — under a
/// named fault-injection profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportTiming {
    /// Fault-injection profile label (`loopback`, `lan`, `wan`, …).
    pub profile: String,
    /// Mean injected link latency, ms (0 for the raw loopback profile).
    pub injected_latency_ms: f64,
    /// Injected latency standard deviation, ms.
    pub injected_latency_std_ms: f64,
    /// Closed-loop clients driving the TCP front.
    pub population: usize,
    /// Requests completed.
    pub requests: usize,
    /// Requests rejected by the service (travel as typed error frames).
    #[serde(default = "usize_zero")]
    pub failures: usize,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
}

/// One fleet-scale streaming-round measurement (the `fleet_scale`
/// binary): a synthetic fleet of `clients` devices run through one
/// streaming round at bounded cohort size, recording wall time, the
/// process peak RSS, and the bytes each update representation puts on
/// the wire — the fig. 7 successor at city scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTiming {
    /// Fleet size (total clients the provider can materialize).
    pub clients: usize,
    /// Clients materialized per round (the streaming cohort bound).
    pub cohort: usize,
    /// Delta representation label (`dense`, `topk(5%)`, `q8`).
    pub delta: String,
    /// Wall time for the round, ms.
    pub wall_ms: f64,
    /// Process peak RSS over the round, bytes (`None` where the
    /// platform exposes no watermark — validation then skips it).
    pub peak_rss_bytes: Option<u64>,
    /// Estimated bytes a materialized (non-streaming) fleet of this
    /// size would hold resident: `clients x per-client model+data
    /// footprint`. The streaming headroom claim is
    /// `materialized_bytes / peak_rss_bytes`.
    pub materialized_bytes: u64,
    /// Total update bytes crossing the wire this round under `delta`.
    pub wire_bytes: u64,
    /// Wire bytes a dense round of the same cohort would ship —
    /// `wire_bytes / dense_wire_bytes` is the compression ratio.
    pub dense_wire_bytes: u64,
}

/// One instrumented-vs-uninstrumented overhead measurement: the same
/// workload run with telemetry recording enabled and disabled (the
/// process-global kill switch), interleaved best-of-N so machine drift
/// hits both modes equally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryOverhead {
    /// What was measured (`throughput_rps`, `round_wall_ms`).
    pub metric: String,
    /// Best value with telemetry recording enabled.
    pub on_value: f64,
    /// Best value with telemetry recording disabled.
    pub off_value: f64,
    /// Unit of the two values.
    pub unit: String,
    /// Relative cost of recording, percent, clamped at 0 — noise can
    /// make the instrumented run *faster*, which is zero overhead, not
    /// negative. Validation gates this at [`TELEMETRY_OVERHEAD_GATE_PCT`].
    pub overhead_pct: f64,
}

/// Validation ceiling on telemetry overhead: recording is lock-free
/// relaxed atomics, so anything above 2% means the instrumentation
/// regressed into the hot path.
pub const TELEMETRY_OVERHEAD_GATE_PCT: f64 = 2.0;

fn no_telemetry() -> Option<TelemetrySection> {
    None
}

/// Telemetry-overhead measurements, written by `serve_bench` (serving)
/// and `fleet_scale` (streaming round).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySection {
    /// Serving steady-phase throughput, on vs off (`serve_bench`).
    pub serving: Option<TelemetryOverhead>,
    /// One streaming-round wall time, on vs off (`fleet_scale`).
    pub streaming_round: Option<TelemetryOverhead>,
}

/// The full report serialized to `BENCH_nn.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Report format version.
    pub schema: String,
    /// `true` when produced under `--quick`.
    pub quick: bool,
    /// Threads available to the parallel paths.
    pub threads: usize,
    /// Per-shape kernel timings.
    pub matmul: Vec<KernelTiming>,
    /// Training-step timing.
    pub training_step: StepTiming,
    /// Federated-round timing.
    pub round: RoundTiming,
    /// Per-strategy aggregation cost, including the preserved seed Krum.
    pub aggregation: Vec<AggregationTiming>,
    /// Per-round train/aggregate wall times from `FlSession` round
    /// reports.
    pub session: Vec<SessionTiming>,
    /// Online-serving numbers, written by `serve_bench` (empty until it
    /// runs; `perf_report` preserves an existing section when it rewrites
    /// the file).
    #[serde(default = "Vec::new")]
    pub serving: Vec<ServingTiming>,
    /// TCP-transport serving numbers, written by `serve_bench --transport
    /// tcp` (empty until it runs; preserved on rewrite like `serving`).
    #[serde(default = "Vec::new")]
    pub transport: Vec<TransportTiming>,
    /// Fleet-scale streaming-round numbers, written by `fleet_scale`
    /// (empty until it runs; preserved on rewrite like `serving`).
    #[serde(default = "Vec::new")]
    pub fleet: Vec<FleetTiming>,
    /// Telemetry-overhead measurements, written by `serve_bench` and
    /// `fleet_scale` (absent until one of them runs; preserved on
    /// rewrite like `serving`).
    #[serde(default = "no_telemetry")]
    pub telemetry: Option<TelemetrySection>,
}

impl PerfReport {
    /// Sanity-checks every throughput number: all timings and speedups
    /// must be finite and strictly positive. CI runs `perf_report --quick
    /// --check` and fails the build when this returns an error — a zero or
    /// NaN timing means the measurement itself broke (e.g. a kernel
    /// optimized away or a division by an unmeasured baseline), not that
    /// the code got infinitely fast.
    ///
    /// # Errors
    ///
    /// Returns a message naming every offending metric.
    pub fn validate(&self) -> Result<(), String> {
        let mut problems = Vec::new();
        // Collected separately: `check` holds the borrow on `problems`
        // until its last call.
        let mut failure_problems = Vec::new();
        let mut check = |name: String, value: f64| {
            if !value.is_finite() || value <= 0.0 {
                problems.push(format!("{name} = {value}"));
            }
        };
        for k in &self.matmul {
            check(
                format!("matmul[{} {}].naive_ns", k.kernel, k.shape),
                k.naive_ns,
            );
            check(
                format!("matmul[{} {}].blocked_ns", k.kernel, k.shape),
                k.blocked_ns,
            );
            check(
                format!("matmul[{} {}].speedup", k.kernel, k.shape),
                k.speedup,
            );
        }
        check("training_step.naive_ns".into(), self.training_step.naive_ns);
        check(
            "training_step.workspace_ns".into(),
            self.training_step.workspace_ns,
        );
        check("training_step.speedup".into(), self.training_step.speedup);
        check("round.seed_ms".into(), self.round.seed_ms);
        check("round.serial_ms".into(), self.round.serial_ms);
        check("round.parallel_ms".into(), self.round.parallel_ms);
        check("round.speedup_vs_seed".into(), self.round.speedup_vs_seed);
        check("round.thread_speedup".into(), self.round.thread_speedup);
        for a in &self.aggregation {
            check(format!("aggregation[{}].micros", a.strategy), a.micros);
        }
        for s in &self.session {
            check(
                format!("session[{}].mean_train_ms", s.framework),
                s.mean_train_ms,
            );
            check(
                format!("session[{}].mean_aggregate_ms", s.framework),
                s.mean_aggregate_ms,
            );
        }
        for s in &self.serving {
            check(
                format!("serving[{}].throughput_rps", s.scenario),
                s.throughput_rps,
            );
            check(format!("serving[{}].p50_ms", s.scenario), s.p50_ms);
            check(format!("serving[{}].p95_ms", s.scenario), s.p95_ms);
            check(format!("serving[{}].p99_ms", s.scenario), s.p99_ms);
            // Zero completed requests is a broken measurement too.
            check(
                format!("serving[{}].requests", s.scenario),
                s.requests as f64,
            );
            if s.failures > 0 {
                failure_problems.push(format!(
                    "serving[{}].failures = {} (requests rejected at admission)",
                    s.scenario, s.failures
                ));
            }
        }
        for t in &self.transport {
            check(
                format!("transport[{}].throughput_rps", t.profile),
                t.throughput_rps,
            );
            check(format!("transport[{}].p50_ms", t.profile), t.p50_ms);
            check(format!("transport[{}].p95_ms", t.profile), t.p95_ms);
            check(format!("transport[{}].p99_ms", t.profile), t.p99_ms);
            check(
                format!("transport[{}].requests", t.profile),
                t.requests as f64,
            );
            if t.failures > 0 {
                failure_problems.push(format!(
                    "transport[{}].failures = {} (requests rejected over the wire)",
                    t.profile, t.failures
                ));
            }
        }
        for f in &self.fleet {
            let cell = format!("fleet[{} clients, {}]", f.clients, f.delta);
            check(format!("{cell}.wall_ms"), f.wall_ms);
            check(format!("{cell}.wire_bytes"), f.wire_bytes as f64);
            check(
                format!("{cell}.dense_wire_bytes"),
                f.dense_wire_bytes as f64,
            );
            check(
                format!("{cell}.materialized_bytes"),
                f.materialized_bytes as f64,
            );
            if let Some(rss) = f.peak_rss_bytes {
                check(format!("{cell}.peak_rss_bytes"), rss as f64);
            }
            if f.cohort == 0 || f.cohort > f.clients {
                failure_problems.push(format!(
                    "{cell}.cohort = {} (must be 1..=clients)",
                    f.cohort
                ));
            }
        }
        if let Some(telemetry) = &self.telemetry {
            let entries = [
                ("telemetry.serving", &telemetry.serving),
                ("telemetry.streaming_round", &telemetry.streaming_round),
            ];
            for (name, entry) in entries {
                let Some(o) = entry else { continue };
                check(format!("{name}.on_value"), o.on_value);
                check(format!("{name}.off_value"), o.off_value);
                if !o.overhead_pct.is_finite() || o.overhead_pct < 0.0 {
                    failure_problems.push(format!(
                        "{name}.overhead_pct = {} (must be finite and >= 0)",
                        o.overhead_pct
                    ));
                } else if o.overhead_pct > TELEMETRY_OVERHEAD_GATE_PCT {
                    failure_problems.push(format!(
                        "{name}.overhead_pct = {:.2} (recording must stay within \
                         {TELEMETRY_OVERHEAD_GATE_PCT}%)",
                        o.overhead_pct
                    ));
                }
            }
        }
        problems.extend(failure_problems);
        if problems.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "non-finite or non-positive throughput numbers: {}",
                problems.join(", ")
            ))
        }
    }

    /// Renders the human-readable summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf report ({} threads{})\n",
            self.threads,
            if self.quick { ", --quick" } else { "" }
        ));
        out.push_str("\nkernels (ns/op, seed scalar vs blocked):\n");
        for k in &self.matmul {
            out.push_str(&format!(
                "  {:<20} {:<18} {:>12.0} -> {:>12.0}  ({:.2}x)\n",
                k.kernel, k.shape, k.naive_ns, k.blocked_ns, k.speedup
            ));
        }
        out.push_str(&format!(
            "\ntraining step {:?} batch {}: {:.0} ns -> {:.0} ns ({:.2}x)\n",
            self.training_step.dims,
            self.training_step.batch,
            self.training_step.naive_ns,
            self.training_step.workspace_ns,
            self.training_step.speedup
        ));
        out.push_str(&format!(
            "federated round ({} clients): seed {:.1} ms -> {:.1} ms serial -> {:.1} ms on {} \
             threads ({:.2}x vs seed, {:.2}x from threading)\n",
            self.round.clients,
            self.round.seed_ms,
            self.round.serial_ms,
            self.round.parallel_ms,
            self.round.threads,
            self.round.speedup_vs_seed,
            self.round.thread_speedup
        ));
        out.push_str("\naggregation (µs/round):\n");
        for a in &self.aggregation {
            out.push_str(&format!("  {:<24} {:>12.1}\n", a.strategy, a.micros));
        }
        if !self.session.is_empty() {
            out.push_str("\nsession rounds (RoundReport wall clocks, ms/round):\n");
            for s in &self.session {
                out.push_str(&format!(
                    "  {:<16} {} clients x {} rounds: train {:>8.1}, aggregate {:>6.2}\n",
                    s.framework, s.clients, s.rounds, s.mean_train_ms, s.mean_aggregate_ms
                ));
                for stage in &s.stage_ms {
                    out.push_str(&format!(
                        "    stage {:<16} {:>8.3} ms/round, {} rejections\n",
                        stage.stage, stage.mean_ms, stage.rejections
                    ));
                }
            }
        }
        if !self.serving.is_empty() {
            out.push_str("\nserving (closed-loop load, serve_bench):\n");
            for s in &self.serving {
                out.push_str(&format!(
                    "  {:<28} {:>8.0} req/s  p50 {:>6.2} ms  p95 {:>6.2} ms  p99 {:>6.2} ms  \
                     versions {}..{}\n",
                    s.scenario,
                    s.throughput_rps,
                    s.p50_ms,
                    s.p95_ms,
                    s.p99_ms,
                    s.min_version,
                    s.max_version
                ));
            }
        }
        if !self.transport.is_empty() {
            out.push_str("\ntransport (TCP front, end-to-end incl. injected link latency):\n");
            for t in &self.transport {
                out.push_str(&format!(
                    "  {:<12} link {:>5.1}±{:<4.1} ms  {:>8.0} req/s  p50 {:>6.2} ms  \
                     p95 {:>6.2} ms  p99 {:>6.2} ms\n",
                    t.profile,
                    t.injected_latency_ms,
                    t.injected_latency_std_ms,
                    t.throughput_rps,
                    t.p50_ms,
                    t.p95_ms,
                    t.p99_ms
                ));
            }
        }
        if !self.fleet.is_empty() {
            out.push_str("\nfleet scale (streaming rounds, fleet_scale):\n");
            for f in &self.fleet {
                let rss = match f.peak_rss_bytes {
                    Some(bytes) => format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0)),
                    None => "n/a".to_string(),
                };
                out.push_str(&format!(
                    "  {:>7} clients (cohort {:>5}, {:<9}) {:>9.1} ms  peak RSS {:>10}  \
                     wire {:>12} B ({:.2}x dense)\n",
                    f.clients,
                    f.cohort,
                    f.delta,
                    f.wall_ms,
                    rss,
                    f.wire_bytes,
                    f.wire_bytes as f64 / f.dense_wire_bytes.max(1) as f64,
                ));
            }
        }
        if let Some(telemetry) = &self.telemetry {
            let entries = [
                ("serving", &telemetry.serving),
                ("streaming round", &telemetry.streaming_round),
            ];
            if entries.iter().any(|(_, e)| e.is_some()) {
                out.push_str("\ntelemetry overhead (recording on vs off):\n");
                for (label, entry) in entries {
                    let Some(o) = entry else { continue };
                    out.push_str(&format!(
                        "  {:<16} {:<16} on {:>10.1} / off {:>10.1} {:<6} ({:+.2}%)\n",
                        label, o.metric, o.on_value, o.off_value, o.unit, o.overhead_pct
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_timing_is_positive_and_stable() {
        let ns = time_median_ns(5, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        });
        assert!(ns > 0.0);
    }

    fn sample_report() -> PerfReport {
        PerfReport {
            schema: "safeloc-bench/perf-report/v1".into(),
            quick: true,
            threads: 4,
            matmul: vec![KernelTiming {
                kernel: "matmul".into(),
                shape: "32x203 * 203x128".into(),
                naive_ns: 1000.0,
                blocked_ns: 400.0,
                speedup: 2.5,
            }],
            training_step: StepTiming {
                dims: vec![203, 128, 89, 62, 60],
                batch: 32,
                naive_ns: 5e6,
                workspace_ns: 2e6,
                speedup: 2.5,
            },
            round: RoundTiming {
                clients: 6,
                seed_ms: 300.0,
                serial_ms: 120.0,
                parallel_ms: 40.0,
                threads: 4,
                speedup_vs_seed: 7.5,
                thread_speedup: 3.0,
            },
            aggregation: vec![AggregationTiming {
                strategy: "Krum".into(),
                micros: 800.0,
            }],
            session: vec![SessionTiming {
                framework: "SequentialFL".into(),
                rounds: 3,
                clients: 6,
                mean_train_ms: 90.0,
                mean_aggregate_ms: 1.5,
                stage_ms: vec![StageMean {
                    stage: "sample-mean".into(),
                    mean_ms: 1.4,
                    rejections: 0,
                }],
            }],
            serving: vec![ServingTiming {
                scenario: "population=8".into(),
                population: 8,
                requests: 800,
                failures: 0,
                throughput_rps: 4000.0,
                p50_ms: 1.8,
                p95_ms: 2.4,
                p99_ms: 3.1,
                min_version: 1,
                max_version: 3,
            }],
            transport: vec![TransportTiming {
                profile: "lan".into(),
                injected_latency_ms: 5.0,
                injected_latency_std_ms: 1.0,
                population: 8,
                requests: 800,
                failures: 0,
                throughput_rps: 900.0,
                p50_ms: 6.1,
                p95_ms: 8.0,
                p99_ms: 9.5,
            }],
            fleet: vec![FleetTiming {
                clients: 10_000,
                cohort: 64,
                delta: "topk(5%)".into(),
                wall_ms: 900.0,
                peak_rss_bytes: Some(64 * 1024 * 1024),
                materialized_bytes: 4 * 1024 * 1024 * 1024,
                wire_bytes: 1_500_000,
                dense_wire_bytes: 30_000_000,
            }],
            telemetry: Some(TelemetrySection {
                serving: Some(TelemetryOverhead {
                    metric: "throughput_rps".into(),
                    on_value: 3960.0,
                    off_value: 4000.0,
                    unit: "req/s".into(),
                    overhead_pct: 1.0,
                }),
                streaming_round: Some(TelemetryOverhead {
                    metric: "round_wall_ms".into(),
                    on_value: 905.0,
                    off_value: 900.0,
                    unit: "ms".into(),
                    overhead_pct: 0.56,
                }),
            }),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(report.summary().contains("training step"));
    }

    #[test]
    fn healthy_report_validates() {
        assert_eq!(sample_report().validate(), Ok(()));
    }

    #[test]
    fn zero_and_non_finite_numbers_fail_validation() {
        let mut zero = sample_report();
        zero.training_step.workspace_ns = 0.0;
        let err = zero.validate().unwrap_err();
        assert!(err.contains("training_step.workspace_ns"), "{err}");

        let mut nan = sample_report();
        nan.round.speedup_vs_seed = f64::NAN;
        let err = nan.validate().unwrap_err();
        assert!(err.contains("round.speedup_vs_seed"), "{err}");

        let mut inf = sample_report();
        inf.matmul[0].speedup = f64::INFINITY;
        let err = inf.validate().unwrap_err();
        assert!(err.contains("matmul"), "{err}");

        let mut neg = sample_report();
        neg.aggregation[0].micros = -1.0;
        assert!(neg.validate().is_err());

        let mut session = sample_report();
        session.session[0].mean_aggregate_ms = f64::NAN;
        let err = session.validate().unwrap_err();
        assert!(
            err.contains("session[SequentialFL].mean_aggregate_ms"),
            "{err}"
        );

        let mut serving = sample_report();
        serving.serving[0].p99_ms = 0.0;
        let err = serving.validate().unwrap_err();
        assert!(err.contains("serving[population=8].p99_ms"), "{err}");
        let mut empty = sample_report();
        empty.serving[0].requests = 0;
        let err = empty.validate().unwrap_err();
        assert!(err.contains("serving[population=8].requests"), "{err}");

        let mut failing = sample_report();
        failing.serving[0].failures = 3;
        let err = failing.validate().unwrap_err();
        assert!(err.contains("serving[population=8].failures = 3"), "{err}");

        let mut transport = sample_report();
        transport.transport[0].p95_ms = f64::NAN;
        let err = transport.validate().unwrap_err();
        assert!(err.contains("transport[lan].p95_ms"), "{err}");
        let mut dropped = sample_report();
        dropped.transport[0].failures = 2;
        let err = dropped.validate().unwrap_err();
        assert!(err.contains("transport[lan].failures = 2"), "{err}");
    }

    #[test]
    fn reports_without_a_serving_section_still_parse() {
        // Pre-v3 files have no `serving` key; the field defaults empty so
        // the perf trajectory stays readable across schema bumps.
        let mut report = sample_report();
        report.serving.clear();
        report.transport.clear();
        let json = serde_json::to_string(&report).unwrap();
        let stripped = json
            .replace(",\"serving\":[]", "")
            .replace(",\"transport\":[]", "");
        assert_ne!(json, stripped, "serving key present before stripping");
        let back: PerfReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, report);
        assert!(back.validate().is_ok(), "empty serving section validates");
    }

    #[test]
    fn reports_without_a_transport_section_still_parse() {
        // Pre-wire files have no `transport` key.
        let mut report = sample_report();
        report.transport.clear();
        let json = serde_json::to_string(&report).unwrap();
        let stripped = json.replace(",\"transport\":[]", "");
        assert_ne!(json, stripped, "transport key present before stripping");
        let back: PerfReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, report);
        assert!(back.validate().is_ok(), "empty transport section validates");
    }

    #[test]
    fn reports_without_a_fleet_section_still_parse() {
        // Pre-fleet-sweep files have no `fleet` key.
        let mut report = sample_report();
        report.fleet.clear();
        let json = serde_json::to_string(&report).unwrap();
        let stripped = json.replace(",\"fleet\":[]", "");
        assert_ne!(json, stripped, "fleet key present before stripping");
        let back: PerfReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, report);
        assert!(back.validate().is_ok(), "empty fleet section validates");
    }

    #[test]
    fn reports_without_a_telemetry_section_still_parse() {
        // Pre-telemetry files have no `telemetry` key.
        let mut report = sample_report();
        report.telemetry = None;
        let json = serde_json::to_string(&report).unwrap();
        let stripped = json.replace(",\"telemetry\":null", "");
        assert_ne!(json, stripped, "telemetry key present before stripping");
        let back: PerfReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, report);
        assert!(
            back.validate().is_ok(),
            "absent telemetry section validates"
        );
    }

    #[test]
    fn telemetry_overhead_gate_holds_at_two_percent() {
        // Over-gate overhead is a validation failure: the side channel
        // leaked into the hot path.
        let mut slow = sample_report();
        slow.telemetry
            .as_mut()
            .unwrap()
            .serving
            .as_mut()
            .unwrap()
            .overhead_pct = 2.4;
        let err = slow.validate().unwrap_err();
        assert!(
            err.contains("telemetry.serving.overhead_pct = 2.40"),
            "{err}"
        );

        // Negative overhead means the clamp in the bench was skipped.
        let mut negative = sample_report();
        negative
            .telemetry
            .as_mut()
            .unwrap()
            .streaming_round
            .as_mut()
            .unwrap()
            .overhead_pct = -0.5;
        let err = negative.validate().unwrap_err();
        assert!(
            err.contains("telemetry.streaming_round.overhead_pct"),
            "{err}"
        );

        // Exactly at the gate passes: the bound is inclusive.
        let mut at_gate = sample_report();
        at_gate
            .telemetry
            .as_mut()
            .unwrap()
            .serving
            .as_mut()
            .unwrap()
            .overhead_pct = TELEMETRY_OVERHEAD_GATE_PCT;
        assert!(at_gate.validate().is_ok());

        // A broken measurement (zero off-value) fails like any other.
        let mut broken = sample_report();
        broken
            .telemetry
            .as_mut()
            .unwrap()
            .serving
            .as_mut()
            .unwrap()
            .off_value = 0.0;
        let err = broken.validate().unwrap_err();
        assert!(err.contains("telemetry.serving.off_value"), "{err}");
    }

    #[test]
    fn broken_fleet_cells_fail_validation() {
        let mut zero_wall = sample_report();
        zero_wall.fleet[0].wall_ms = 0.0;
        let err = zero_wall.validate().unwrap_err();
        assert!(
            err.contains("fleet[10000 clients, topk(5%)].wall_ms"),
            "{err}"
        );

        let mut bad_cohort = sample_report();
        bad_cohort.fleet[0].cohort = 0;
        let err = bad_cohort.validate().unwrap_err();
        assert!(err.contains("cohort = 0"), "{err}");

        let mut oversized = sample_report();
        oversized.fleet[0].cohort = oversized.fleet[0].clients + 1;
        assert!(oversized.validate().is_err());

        // A platform with no RSS watermark still validates: the memory
        // column is simply absent, not zero.
        let mut no_rss = sample_report();
        no_rss.fleet[0].peak_rss_bytes = None;
        assert!(no_rss.validate().is_ok());
        assert!(no_rss.summary().contains("n/a"));
    }
}
