//! Declarative scenario suites: one serde-backed spec → a grid of
//! [`FlSession`](safeloc_fl::FlSession) runs → one machine-readable report
//! per cell.
//!
//! Every paper figure is a sweep over the same axes — framework, defense,
//! building, fleet shape, attack, participation, network conditions and
//! seed — and each
//! `fig*`/`table*` binary used to hand-roll its own nested loops over them.
//! A [`ScenarioSpec`] names the axes declaratively; a [`SuiteRunner`]
//! expands the cartesian grid into [`ScenarioCell`]s, pretrains one
//! template per `(framework, building, fleet)` and clones it across cells
//! (exactly the reuse the hand-rolled bins implemented by hand), and runs
//! each cell through a seeded session. The outcome of a suite is a
//! [`SuiteRun`] holding per-sample errors and the full
//! [`RoundReport`] trail per cell, from which a
//! serializable [`SuiteReport`] (accuracy, per-rule rejection and
//! false-positive rates, train/aggregate wall times) is derived.
//!
//! Specs serialize to JSON; named suites live in `scenarios/` at the repo
//! root and run end to end through the `suite` binary:
//!
//! ```text
//! cargo run --release -p safeloc-bench --bin suite -- --spec scenarios/small_cohort.json --quick
//! ```

use crate::harness::{
    default_buildings, run_fleet_with_network, scenario_fleet, HarnessConfig, Scenario,
};
use rayon::prelude::*;
use safeloc::{AggregationMode, DaeAugment, SafeLoc, SaliencyAggregator};
use safeloc_attacks::Attack;
use safeloc_baselines::{FedCc, FedHil, FedLoc, FedLs, KrumFramework, Onlad};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceProfile, FingerprintSet};
use safeloc_fl::defense::{
    Combiner, CoordinateMedian, DefensePipeline, DefenseStage, NonFiniteGuard, NormClip,
    TrimmedMean, UniformMean,
};
use safeloc_fl::report::pooled_rate;
use safeloc_fl::{
    Client, ClientOutcome, ClusterAggregator, CohortSampler, DeltaSpec, FedAvg, Framework,
    HistoryScreen, Krum, LatentFilterAggregator, RoundReport, SelectiveAggregator,
};
use safeloc_metrics::{markdown_table, ErrorStats};
use safeloc_wire::FaultProfile;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

// ------------------------------------------------------------- spec axes

/// The framework axis of a suite cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrameworkSpec {
    /// SAFELOC at the scale's default configuration.
    Safeloc,
    /// SAFELOC with the reconstruction threshold overridden after
    /// pretraining (Fig. 4's sweep; all τ points share one pretrained
    /// template).
    SafelocTau {
        /// Reconstruction threshold τ.
        tau: f32,
    },
    /// A SAFELOC ablation variant (its configuration differs *before*
    /// pretraining, so each variant pretrains its own template).
    SafelocVariant {
        /// Which design choice is toggled.
        variant: SafelocVariant,
    },
    /// ONLAD baseline.
    Onlad,
    /// FEDLS baseline.
    FedLs,
    /// FEDCC baseline.
    FedCc,
    /// FEDHIL baseline.
    FedHil,
    /// FEDLOC baseline.
    FedLoc,
    /// Krum selection baseline.
    Krum,
}

/// SAFELOC ablation variants (see the `ablation` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SafelocVariant {
    /// The full framework: detection + de-noising + saliency.
    Full,
    /// τ = ∞ disables the client-side detector.
    NoDenoise,
    /// Saliency sharpness 0 (S ≡ 1 ⇒ plain delta averaging).
    NoSaliency,
    /// The printed Eq. 9, damped.
    LiteralEq9,
    /// Fused network trained with heterogeneity augmentation (this
    /// repository's extension).
    WithAugment,
    /// Reconstruction gradients flow into the encoder.
    JointDecoder,
}

impl SafelocVariant {
    /// Short display name, matching the ablation table rows.
    pub fn label(&self) -> &'static str {
        match self {
            SafelocVariant::Full => "full",
            SafelocVariant::NoDenoise => "no-denoise",
            SafelocVariant::NoSaliency => "no-saliency",
            SafelocVariant::LiteralEq9 => "literal-eq9",
            SafelocVariant::WithAugment => "with-augment",
            SafelocVariant::JointDecoder => "joint-decoder",
        }
    }

    /// All six variants in ablation-table order.
    pub const ALL: [SafelocVariant; 6] = [
        SafelocVariant::Full,
        SafelocVariant::NoDenoise,
        SafelocVariant::NoSaliency,
        SafelocVariant::LiteralEq9,
        SafelocVariant::WithAugment,
        SafelocVariant::JointDecoder,
    ];
}

/// A pretrained framework template the runner clones across cells.
pub enum Template {
    /// SAFELOC kept concrete so per-cell τ overrides can be applied.
    Safeloc(Box<SafeLoc>),
    /// Any other framework behind the uniform trait.
    Boxed(Box<dyn Framework>),
}

impl Template {
    /// Server-side pretraining on the survey split.
    pub fn pretrain(&mut self, train: &FingerprintSet) {
        match self {
            Template::Safeloc(f) => f.pretrain(train),
            Template::Boxed(f) => f.pretrain(train),
        }
    }

    /// A fresh framework for one cell: clones the template and applies the
    /// cell's post-pretraining overrides (currently: τ).
    pub fn instantiate(&self, spec: &FrameworkSpec) -> Box<dyn Framework> {
        match self {
            Template::Safeloc(f) => {
                let mut clone = (**f).clone();
                if let FrameworkSpec::SafelocTau { tau } = spec {
                    clone.set_tau(*tau);
                }
                Box::new(clone)
            }
            Template::Boxed(f) => f.clone_box(),
        }
    }
}

impl FrameworkSpec {
    /// Display name for tables and reports.
    pub fn label(&self) -> String {
        match self {
            FrameworkSpec::Safeloc => "SAFELOC".to_string(),
            FrameworkSpec::SafelocTau { tau } => format!("SAFELOC(tau={tau:.2})"),
            FrameworkSpec::SafelocVariant { variant } => {
                format!("SAFELOC[{}]", variant.label())
            }
            FrameworkSpec::Onlad => "ONLAD".to_string(),
            FrameworkSpec::FedLs => "FEDLS".to_string(),
            FrameworkSpec::FedCc => "FEDCC".to_string(),
            FrameworkSpec::FedHil => "FEDHIL".to_string(),
            FrameworkSpec::FedLoc => "FEDLOC".to_string(),
            FrameworkSpec::Krum => "KRUM".to_string(),
        }
    }

    /// Cache key for pretrained templates. All τ points share the base
    /// SAFELOC template (τ only matters after pretraining); ablation
    /// variants pretrain differently and get their own entries.
    pub fn template_key(&self) -> String {
        match self {
            FrameworkSpec::Safeloc | FrameworkSpec::SafelocTau { .. } => "SAFELOC".to_string(),
            other => other.label(),
        }
    }

    /// Builds the (untrained) template for a building geometry.
    pub fn build(&self, input_dim: usize, n_classes: usize, cfg: &HarnessConfig) -> Template {
        match self {
            FrameworkSpec::Safeloc | FrameworkSpec::SafelocTau { .. } => Template::Safeloc(
                Box::new(SafeLoc::new(input_dim, n_classes, cfg.safeloc_config())),
            ),
            FrameworkSpec::SafelocVariant { variant } => {
                let mut vcfg = cfg.safeloc_config();
                match variant {
                    SafelocVariant::Full | SafelocVariant::NoSaliency => {}
                    SafelocVariant::NoDenoise => vcfg.tau = f32::INFINITY,
                    SafelocVariant::LiteralEq9 => vcfg.aggregation = AggregationMode::Literal,
                    SafelocVariant::WithAugment => vcfg.augment = Some(DaeAugment::paper()),
                    SafelocVariant::JointDecoder => vcfg.detach_decoder = false,
                }
                let mut f = SafeLoc::new(input_dim, n_classes, vcfg);
                if *variant == SafelocVariant::NoSaliency {
                    f.set_saliency_sharpness(0.0);
                }
                Template::Safeloc(Box::new(f))
            }
            FrameworkSpec::Onlad => Template::Boxed(Box::new(Onlad::new(
                input_dim,
                n_classes,
                cfg.server_config(),
            ))),
            FrameworkSpec::FedLs => Template::Boxed(Box::new(FedLs::new(
                input_dim,
                n_classes,
                cfg.server_config(),
            ))),
            FrameworkSpec::FedCc => Template::Boxed(Box::new(FedCc::new(
                input_dim,
                n_classes,
                cfg.server_config(),
            ))),
            FrameworkSpec::FedHil => Template::Boxed(Box::new(FedHil::new(
                input_dim,
                n_classes,
                cfg.server_config(),
            ))),
            FrameworkSpec::FedLoc => Template::Boxed(Box::new(FedLoc::new(
                input_dim,
                n_classes,
                cfg.server_config(),
            ))),
            FrameworkSpec::Krum => Template::Boxed(Box::new(KrumFramework::new(
                input_dim,
                n_classes,
                cfg.server_config(),
            ))),
        }
    }
}

/// The fleet axis: how many clients, how many of them compromised.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Total clients; 0 = the paper's six-phone protocol.
    #[serde(default = "usize_zero")]
    pub total: usize,
    /// Compromised clients when the cell's attack is not clean (paper: 1,
    /// the HTC U11).
    #[serde(default = "usize_one")]
    pub attackers: usize,
}

impl FleetSpec {
    /// The paper's fleet: six phones, one compromised.
    pub fn paper() -> Self {
        Self {
            total: 0,
            attackers: 1,
        }
    }

    /// Fig. 7-style grown fleet.
    pub fn grown(total: usize, attackers: usize) -> Self {
        Self { total, attackers }
    }

    /// Display label.
    pub fn label(&self) -> String {
        let total = if self.total == 0 { 6 } else { self.total };
        format!("({total}, {})", self.attackers)
    }

    /// Dataset configuration for this fleet shape.
    pub fn dataset_config(&self, seed: u64) -> DatasetConfig {
        let base = DatasetConfig::paper();
        if self.total == 0 {
            base
        } else {
            base.with_fleet(self.total, seed)
        }
    }

    /// The compromised client indices: the HTC U11 first (the paper's
    /// attacker device), topped up from the back of the fleet, skipping the
    /// training device (Fig. 7's assignment). If the fleet cannot host the
    /// requested count (everything but the training device is already
    /// compromised), the shortfall is reported rather than silently run
    /// with a weaker attack.
    pub fn attacker_ids(&self, data: &BuildingDataset) -> Vec<usize> {
        if self.attackers == 0 || data.num_clients() == 0 {
            return Vec::new();
        }
        let mut ids = vec![DeviceProfile::ATTACKER_DEVICE.min(data.num_clients() - 1)];
        let mut next = data.num_clients();
        while ids.len() < self.attackers && next > 0 {
            next -= 1;
            if !ids.contains(&next) && next != data.train_device {
                ids.push(next);
            }
        }
        if ids.len() < self.attackers {
            eprintln!(
                "  warning: fleet {} can only host {} of {} requested attackers \
                 (training device is never compromised)",
                self.label(),
                ids.len(),
                self.attackers
            );
        }
        ids
    }
}

/// The attack axis: one attack (or the clean baseline) per entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// Optional display-name override for tables.
    pub name: Option<String>,
    /// The attack; `None` is the clean baseline.
    pub attack: Option<Attack>,
}

impl AttackSpec {
    /// The clean baseline.
    pub fn clean() -> Self {
        Self {
            name: None,
            attack: None,
        }
    }

    /// An attack cell with the derived label.
    pub fn of(attack: Attack) -> Self {
        Self {
            name: None,
            attack: Some(attack),
        }
    }

    /// An attack cell with an explicit label.
    pub fn named(name: &str, attack: Attack) -> Self {
        Self {
            name: Some(name.to_string()),
            attack: Some(attack),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        match &self.attack {
            None => "Clean".to_string(),
            Some(a) => format!("{} eps={:.2}", a.kind().label(), a.epsilon()),
        }
    }
}

/// How the cohort is drawn in a cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParticipationMode {
    /// Every client, every round (the paper's protocol).
    Full,
    /// A uniform cohort of `round(fraction · n)` clients (≥ 1); 1.0 maps to
    /// the exact full-participation fast path.
    Fraction {
        /// Participation fraction in `(0, 1]`.
        fraction: f32,
    },
    /// A uniform cohort of exactly `k` clients.
    UniformK {
        /// Cohort size.
        k: usize,
    },
    /// `k` clients drawn proportionally to their local data volume
    /// ([`CohortSampler::weighted_by_data_volume`]).
    WeightedByData {
        /// Cohort size.
        k: usize,
    },
}

/// The participation axis: cohort strategy plus churn rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticipationSpec {
    /// Cohort strategy.
    pub mode: ParticipationMode,
    /// Probability a sampled client never responds.
    #[serde(default = "f64_zero")]
    pub dropout: f64,
    /// Probability a sampled, non-dropped client misses the deadline.
    #[serde(default = "f64_zero")]
    pub straggle: f64,
}

impl ParticipationSpec {
    /// The paper's shape: full participation, no churn.
    pub fn full() -> Self {
        Self {
            mode: ParticipationMode::Full,
            dropout: 0.0,
            straggle: 0.0,
        }
    }

    /// Uniform participation at `fraction`, no churn.
    pub fn fraction(fraction: f32) -> Self {
        Self {
            mode: ParticipationMode::Fraction { fraction },
            dropout: 0.0,
            straggle: 0.0,
        }
    }

    /// Adds churn rates.
    pub fn with_churn(mut self, dropout: f64, straggle: f64) -> Self {
        self.dropout = dropout;
        self.straggle = straggle;
        self
    }

    /// The cohort size this spec draws from a fleet of `n` clients.
    pub fn cohort_size(&self, n: usize) -> usize {
        match self.mode {
            ParticipationMode::Full => n,
            ParticipationMode::Fraction { fraction } => {
                ((fraction * n as f32).round() as usize).clamp(1, n.max(1))
            }
            ParticipationMode::UniformK { k } | ParticipationMode::WeightedByData { k } => k.min(n),
        }
    }

    /// The seeded sampler for a concrete fleet.
    pub fn sampler(&self, clients: &[Client], seed: u64) -> CohortSampler {
        let n = clients.len();
        let base = match self.mode {
            ParticipationMode::Full => CohortSampler::full(),
            ParticipationMode::Fraction { .. } => {
                let k = self.cohort_size(n);
                if k >= n {
                    CohortSampler::full()
                } else {
                    CohortSampler::uniform(k, seed)
                }
            }
            ParticipationMode::UniformK { k } => CohortSampler::uniform(k, seed),
            ParticipationMode::WeightedByData { k } => {
                CohortSampler::weighted_by_data_volume(k, clients, seed)
            }
        };
        base.with_dropout(self.dropout).with_straggle(self.straggle)
    }

    /// Display label (`n` = fleet size, for fraction-derived cohorts).
    pub fn label(&self, n: usize) -> String {
        let mut out = match self.mode {
            ParticipationMode::Full => "full".to_string(),
            ParticipationMode::Fraction { fraction } => {
                format!("{fraction:.2} ({}/{n})", self.cohort_size(n))
            }
            ParticipationMode::UniformK { k } => format!("k={k}"),
            ParticipationMode::WeightedByData { k } => format!("weighted k={k}"),
        };
        if self.dropout > 0.0 {
            out.push_str(&format!(" drop={:.2}", self.dropout));
        }
        if self.straggle > 0.0 {
            out.push_str(&format!(" strag={:.2}", self.straggle));
        }
        out
    }
}

// -------------------------------------------------------- the network axis

/// The network axis of a suite cell: a named transport-fault profile plus
/// the server's round deadline.
///
/// Each round's sampled cohort plan is replayed through the wire crate's
/// fault-injection shim ([`FaultProfile::degrade_plan`]) before the
/// framework runs it: a drawn connection drop benches the client as a
/// dropout, and a slow reader — or a latency draw beyond `deadline_ms` —
/// benches it as a straggler. The draws are the *same* deterministic
/// stream the `fl_client` process applies to a real TCP transport, so a
/// spec cell and a cross-process deployment under the same profile and
/// seed degrade identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Optional display-name override for tables (`"lan"`, `"wan-lossy"`).
    #[serde(default = "Option::default")]
    pub name: Option<String>,
    /// Mean injected one-way latency, milliseconds.
    #[serde(default = "f64_zero")]
    pub latency_ms_mean: f64,
    /// Standard deviation of the injected latency (0 = constant).
    #[serde(default = "f64_zero")]
    pub latency_ms_std: f64,
    /// Per-(round, client) probability of dropping the connection instead
    /// of delivering the update.
    #[serde(default = "f64_zero")]
    pub drop_probability: f64,
    /// Per-(round, client) probability of trickling the update slower than
    /// any deadline (a slow-reader straggler).
    #[serde(default = "f64_zero")]
    pub slow_reader_probability: f64,
    /// Server round deadline, milliseconds: a latency draw beyond it turns
    /// the client into a straggler. 0 = no deadline (only drops and slow
    /// readers bite).
    #[serde(default = "f64_zero")]
    pub deadline_ms: f64,
}

impl NetworkSpec {
    /// The perfect network: zero latency, no drops, no stragglers. Cells
    /// under it take the exact pre-axis execution path, bit for bit.
    pub fn ideal() -> Self {
        Self {
            name: None,
            latency_ms_mean: 0.0,
            latency_ms_std: 0.0,
            drop_probability: 0.0,
            slow_reader_probability: 0.0,
            deadline_ms: 0.0,
        }
    }

    /// `true` when the profile can degrade nothing.
    pub fn is_ideal(&self) -> bool {
        self.fault(0).is_ideal()
    }

    /// The seeded fault profile this spec describes; `seed` comes from the
    /// cell ([`ScenarioCell::network_seed`]) so distinct repetitions draw
    /// independent fault streams.
    pub fn fault(&self, seed: u64) -> FaultProfile {
        FaultProfile {
            latency_ms_mean: self.latency_ms_mean,
            latency_ms_std: self.latency_ms_std,
            drop_probability: self.drop_probability,
            slow_reader_probability: self.slow_reader_probability,
            seed,
        }
    }

    /// Display label: the override, or a compact derived form.
    pub fn label(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        if self.is_ideal() {
            return "ideal".to_string();
        }
        let mut parts = Vec::new();
        if self.latency_ms_mean > 0.0 || self.latency_ms_std > 0.0 {
            parts.push(format!(
                "lat={}±{}ms",
                self.latency_ms_mean, self.latency_ms_std
            ));
        }
        if self.drop_probability > 0.0 {
            parts.push(format!("drop={}", self.drop_probability));
        }
        if self.slow_reader_probability > 0.0 {
            parts.push(format!("slow={}", self.slow_reader_probability));
        }
        if self.deadline_ms > 0.0 {
            parts.push(format!("ddl={}ms", self.deadline_ms));
        }
        parts.join(" ")
    }
}

// -------------------------------------------------------- the defense axis

/// The defense axis of a suite cell: the framework's own rule, or a
/// composed stage/combiner pipeline swapped in after pretraining (the
/// global model and client-side protocol are untouched, so every defense
/// variant shares one pretrained template).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DefenseSpec {
    /// The framework's built-in rule (the paper's configuration).
    Builtin,
    /// A composed defense pipeline replacing the built-in rule via
    /// [`Framework::set_aggregator`].
    Pipeline(PipelineSpec),
}

impl DefenseSpec {
    /// Display label; `"builtin"` for the framework's own rule.
    pub fn label(&self) -> String {
        match self {
            DefenseSpec::Builtin => "builtin".to_string(),
            DefenseSpec::Pipeline(p) => p.label(),
        }
    }
}

/// A serde-buildable [`DefensePipeline`]: named stages in order plus one
/// terminal combiner. This is the spec surface that turns robust-
/// aggregation compositions ("norm-clip then Krum", "latent screen then
/// history screen then mean") into `scenarios/*.json` cells instead of
/// new Rust types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Optional display-name override for tables.
    #[serde(default = "Option::default")]
    pub name: Option<String>,
    /// Screening stages, in execution order.
    #[serde(default = "Vec::new")]
    pub stages: Vec<StageSpec>,
    /// Terminal combiner.
    pub combiner: CombinerSpec,
}

impl PipelineSpec {
    /// Display label: the override, or `stage→stage→combiner`.
    pub fn label(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        let mut parts: Vec<String> = self.stages.iter().map(StageSpec::label).collect();
        parts.push(self.combiner.label());
        parts.join("→")
    }

    /// Builds the runnable pipeline; `seed` feeds the stateful stages'
    /// projections so distinct cells draw independent streams.
    pub fn build(&self, seed: u64) -> DefensePipeline {
        let stages: Vec<Box<dyn DefenseStage>> =
            self.stages.iter().map(|s| s.build(seed)).collect();
        DefensePipeline::new(self.label(), stages, self.combiner.build())
    }
}

/// One screening stage of a [`PipelineSpec`]. Unknown stage names fail
/// spec parsing with serde's unknown-variant error (naming the offender
/// and the valid set) instead of silently running without the stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageSpec {
    /// Reject NaN/Inf updates (redundant inside frameworks — the shared
    /// guard already runs — but keeps spec-built pipelines self-contained).
    NonFinite,
    /// Cap update delta norms at `multiple ×` the round's lower-median
    /// norm ([`NormClip`]).
    NormClip {
        /// Cap as a multiple of the round's lower-median delta norm.
        multiple: f32,
    },
    /// FEDCC's majority-cluster screen ([`ClusterAggregator`]).
    ClusterSplit {
        /// Minimum centroid cosine separation for the split to count.
        separation_threshold: f32,
    },
    /// FEDLS's latent-space anomaly screen ([`LatentFilterAggregator`]).
    LatentScreen {
        /// Rejection threshold in σ above the mean reconstruction error.
        z_threshold: f32,
    },
    /// The benign-history screen ([`HistoryScreen`]) — the opt-in stage
    /// closing FEDLS's small-but-≥3-round gap.
    HistoryScreen {
        /// Rejection threshold in σ above the history's mean distance.
        z_threshold: f32,
        /// Accepted rows required before screening activates.
        min_history: usize,
    },
}

impl StageSpec {
    /// Short label for derived pipeline names.
    pub fn label(&self) -> String {
        match self {
            StageSpec::NonFinite => "non-finite".to_string(),
            StageSpec::NormClip { multiple } => format!("norm-clip({multiple})"),
            StageSpec::ClusterSplit { .. } => "cluster".to_string(),
            StageSpec::LatentScreen { .. } => "latent".to_string(),
            StageSpec::HistoryScreen { .. } => "history-screen".to_string(),
        }
    }

    /// Builds the stage, seeding its internal streams from `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn DefenseStage> {
        match *self {
            StageSpec::NonFinite => Box::new(NonFiniteGuard),
            StageSpec::NormClip { multiple } => Box::new(NormClip::new(multiple)),
            StageSpec::ClusterSplit {
                separation_threshold,
            } => Box::new(ClusterAggregator::new(separation_threshold)),
            StageSpec::LatentScreen { z_threshold } => {
                let mut stage = LatentFilterAggregator::new(seed);
                stage.z_threshold = z_threshold;
                Box::new(stage)
            }
            StageSpec::HistoryScreen {
                z_threshold,
                min_history,
            } => {
                let mut stage = HistoryScreen::new(seed);
                stage.z_threshold = z_threshold;
                stage.min_history = min_history;
                Box::new(stage)
            }
        }
    }
}

/// The terminal combiner of a [`PipelineSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CombinerSpec {
    /// Uniform mean of the survivors ([`UniformMean`]).
    Mean,
    /// Sample-count-weighted mean ([`FedAvg`]).
    SampleWeightedMean,
    /// Krum selection ([`Krum`]).
    Krum {
        /// Assumed number of Byzantine clients.
        assumed_byzantine: usize,
    },
    /// Coordinate-wise trimmed mean ([`TrimmedMean`]).
    TrimmedMean {
        /// Fraction trimmed from each tail, in `[0, 0.5)`.
        trim_fraction: f32,
    },
    /// Coordinate-wise median ([`CoordinateMedian`]).
    CoordinateMedian,
    /// FEDHIL's selective per-tensor mean ([`SelectiveAggregator`]).
    Selective {
        /// Fraction of tensors (output side) that are aggregated.
        aggregate_fraction: f32,
    },
    /// SAFELOC's saliency-damped combining ([`SaliencyAggregator`]).
    Saliency {
        /// Deviation sharpness `k` in `S = 1/(1 + k·|ΔW|)`.
        sharpness: f32,
    },
}

impl CombinerSpec {
    /// Short label for derived pipeline names.
    pub fn label(&self) -> String {
        match self {
            CombinerSpec::Mean => "mean".to_string(),
            CombinerSpec::SampleWeightedMean => "sample-mean".to_string(),
            CombinerSpec::Krum { assumed_byzantine } => format!("krum(f={assumed_byzantine})"),
            CombinerSpec::TrimmedMean { trim_fraction } => {
                format!("trimmed-mean({trim_fraction})")
            }
            CombinerSpec::CoordinateMedian => "coordinate-median".to_string(),
            CombinerSpec::Selective { aggregate_fraction } => {
                format!("selective({aggregate_fraction})")
            }
            CombinerSpec::Saliency { sharpness } => format!("saliency(k={sharpness})"),
        }
    }

    /// Builds the runnable combiner.
    pub fn build(&self) -> Box<dyn Combiner> {
        match *self {
            CombinerSpec::Mean => Box::new(UniformMean),
            CombinerSpec::SampleWeightedMean => Box::new(FedAvg),
            CombinerSpec::Krum { assumed_byzantine } => Box::new(Krum::new(assumed_byzantine)),
            CombinerSpec::TrimmedMean { trim_fraction } => {
                Box::new(TrimmedMean::new(trim_fraction))
            }
            CombinerSpec::CoordinateMedian => Box::new(CoordinateMedian),
            CombinerSpec::Selective { aggregate_fraction } => {
                Box::new(SelectiveAggregator::new(aggregate_fraction))
            }
            CombinerSpec::Saliency { sharpness } => {
                Box::new(SaliencyAggregator::default().with_sharpness(sharpness))
            }
        }
    }
}

// --------------------------------------------------------------- the spec

/// A declarative scenario suite: the cartesian grid of eight axes
/// (framework × defense × building × fleet × attack × participation ×
/// network × seed).
///
/// Empty `buildings` means "the scale's default buildings"; `rounds` 0
/// means "the scale's default round count" — so one spec file serves
/// `--quick`, the default and `--full` runs alike.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Suite name (used for the default report filename).
    pub name: String,
    /// One-line description, echoed in the report.
    #[serde(default = "String::new")]
    pub description: String,
    /// Framework axis.
    pub frameworks: Vec<FrameworkSpec>,
    /// Defense axis: each entry runs every framework with that defense
    /// ([`DefenseSpec::Builtin`] = the framework's own rule). Defaults to
    /// builtin only, so pre-existing specs are unchanged.
    #[serde(default = "default_defenses")]
    pub defenses: Vec<DefenseSpec>,
    /// Paper building ids; empty = the scale's defaults.
    #[serde(default = "Vec::new")]
    pub buildings: Vec<usize>,
    /// Fleet axis; defaults to the paper's six-phone fleet.
    #[serde(default = "default_fleets")]
    pub fleets: Vec<FleetSpec>,
    /// Attack axis.
    pub attacks: Vec<AttackSpec>,
    /// Participation axis; defaults to full participation.
    #[serde(default = "default_participation")]
    pub participation: Vec<ParticipationSpec>,
    /// Network axis: transport-fault profiles replayed onto every round's
    /// cohort plan. Defaults to the ideal network only, so pre-existing
    /// specs are unchanged (and bitwise identical).
    #[serde(default = "default_networks")]
    pub networks: Vec<NetworkSpec>,
    /// Delta-representation axis: every client uploads its update under
    /// this compression spec ([`DeltaSpec::Dense`] = the exact path).
    /// Unknown representation names fail spec parsing with serde's
    /// unknown-variant error, like [`DefenseSpec`] stages. Defaults to
    /// dense only, so pre-existing specs are unchanged (and bitwise
    /// identical). The axis does not salt the scenario seed — compression
    /// variants of a cell train on identical streams and stay comparable.
    #[serde(default = "default_deltas")]
    pub deltas: Vec<DeltaSpec>,
    /// Rounds per cell; 0 = the scale's default.
    #[serde(default = "usize_zero")]
    pub rounds: usize,
    /// Seed axis: salts XORed into the harness master seed, one cell
    /// repetition per entry.
    #[serde(default = "default_seed_salts")]
    pub seed_salts: Vec<u64>,
    /// Attacker update-boost factor; `None` = model replacement
    /// (`n_clients / n_attackers`, shared across colluders).
    pub boost: Option<f32>,
    /// Colluding attackers share one poison stream (Fig. 7).
    #[serde(default = "bool_false")]
    pub coherent: bool,
}

fn usize_zero() -> usize {
    0
}
fn usize_one() -> usize {
    1
}
fn f64_zero() -> f64 {
    0.0
}
fn bool_false() -> bool {
    false
}
fn default_fleets() -> Vec<FleetSpec> {
    vec![FleetSpec::paper()]
}
fn default_participation() -> Vec<ParticipationSpec> {
    vec![ParticipationSpec::full()]
}
fn default_seed_salts() -> Vec<u64> {
    vec![0]
}
fn default_defenses() -> Vec<DefenseSpec> {
    vec![DefenseSpec::Builtin]
}
fn default_networks() -> Vec<NetworkSpec> {
    vec![NetworkSpec::ideal()]
}
fn default_deltas() -> Vec<DeltaSpec> {
    vec![DeltaSpec::Dense]
}
fn dense_delta() -> DeltaSpec {
    DeltaSpec::Dense
}
fn ideal_network() -> NetworkSpec {
    NetworkSpec::ideal()
}
fn ideal_network_label() -> String {
    "ideal".to_string()
}
fn dense_delta_label() -> String {
    "dense".to_string()
}
fn builtin_defense() -> DefenseSpec {
    DefenseSpec::Builtin
}

impl ScenarioSpec {
    /// A minimal spec over one framework and the clean scenario; builders
    /// add axes from here.
    pub fn new(name: &str, frameworks: Vec<FrameworkSpec>, attacks: Vec<AttackSpec>) -> Self {
        Self {
            name: name.to_string(),
            description: String::new(),
            frameworks,
            defenses: default_defenses(),
            buildings: Vec::new(),
            fleets: default_fleets(),
            attacks,
            participation: default_participation(),
            networks: default_networks(),
            deltas: default_deltas(),
            rounds: 0,
            seed_salts: default_seed_salts(),
            boost: None,
            coherent: false,
        }
    }
}

// ------------------------------------------------------------- expansion

/// Position of a cell along each spec axis — formatters group by these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellIndex {
    /// Index into [`ScenarioSpec::frameworks`].
    pub framework: usize,
    /// Index into [`ScenarioSpec::defenses`] (0 for pre-axis reports).
    #[serde(default = "usize_zero")]
    pub defense: usize,
    /// Index into the effective building list.
    pub building: usize,
    /// Index into [`ScenarioSpec::fleets`].
    pub fleet: usize,
    /// Index into [`ScenarioSpec::attacks`].
    pub attack: usize,
    /// Index into [`ScenarioSpec::participation`].
    pub participation: usize,
    /// Index into [`ScenarioSpec::networks`] (0 for pre-axis reports).
    #[serde(default = "usize_zero")]
    pub network: usize,
    /// Index into [`ScenarioSpec::deltas`] (0 for pre-axis reports).
    #[serde(default = "usize_zero")]
    pub delta: usize,
    /// Index into [`ScenarioSpec::seed_salts`].
    pub seed: usize,
}

/// One fully resolved grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// Framework under test.
    pub framework: FrameworkSpec,
    /// Defense composition (builtin for pre-axis cells).
    #[serde(default = "builtin_defense")]
    pub defense: DefenseSpec,
    /// Paper building id.
    pub building: usize,
    /// Fleet shape.
    pub fleet: FleetSpec,
    /// Attack (or clean).
    pub attack: AttackSpec,
    /// Cohort strategy + churn.
    pub participation: ParticipationSpec,
    /// Network conditions (ideal for pre-axis cells).
    #[serde(default = "ideal_network")]
    pub network: NetworkSpec,
    /// Update representation every client uploads under (dense for
    /// pre-axis cells).
    #[serde(default = "dense_delta")]
    pub delta: DeltaSpec,
    /// Seed salt from the spec's seed axis.
    pub seed_salt: u64,
    /// Federated rounds.
    pub rounds: usize,
    /// Attacker boost override.
    pub boost: Option<f32>,
    /// Coherent colluders.
    pub coherent: bool,
    /// Axis indices.
    pub index: CellIndex,
}

impl ScenarioCell {
    /// The scenario seed: the harness master seed decorated with per-axis
    /// salts, so distinct attacks/fleets/repetitions draw independent
    /// poison and training streams while participation variants of the
    /// same scenario stay comparable.
    pub fn scenario_seed(&self, base: u64) -> u64 {
        base ^ self.seed_salt
            ^ ((self.index.attack as u64 + 1) << 16)
            ^ ((self.index.fleet as u64 + 1) << 24)
    }

    /// The cohort-sampler seed (decorrelated from the scenario stream).
    pub fn sampler_seed(&self, base: u64) -> u64 {
        self.scenario_seed(base) ^ 0xC0_4082 ^ ((self.index.participation as u64 + 1) << 8)
    }

    /// Seed for spec-built defense stages (projections, AE init). Derived
    /// from the scenario seed *without* a defense-index salt, so two
    /// defense variants of the same scenario screen the same training
    /// stream and stay comparable.
    pub fn defense_seed(&self, base: u64) -> u64 {
        self.scenario_seed(base) ^ 0xDE_FE2E
    }

    /// Seed for the cell's transport-fault stream. Salted by the network
    /// index so two network variants of the same scenario draw independent
    /// fault streams (while sharing training streams — the scenario seed
    /// carries no network salt, keeping variants comparable).
    pub fn network_seed(&self, base: u64) -> u64 {
        self.scenario_seed(base) ^ 0x4E_77E7 ^ ((self.index.network as u64 + 1) << 12)
    }

    /// Compact display label.
    pub fn label(&self) -> String {
        let defense = match &self.defense {
            DefenseSpec::Builtin => String::new(),
            spec => format!(" +{}", spec.label()),
        };
        let network = if self.network.is_ideal() {
            String::new()
        } else {
            format!(" net={}", self.network.label())
        };
        let delta = if self.delta.is_dense() {
            String::new()
        } else {
            format!(" delta={}", self.delta.label())
        };
        format!(
            "{}{} B{} {} {}{}{}",
            self.framework.label(),
            defense,
            self.building,
            self.fleet.label(),
            self.attack.label(),
            network,
            delta
        )
    }
}

// ---------------------------------------------------------------- runner

/// Builds the experimental bundle for one cell's `(building, fleet)` pair.
type DatasetBuilder = Box<dyn Fn(usize, &FleetSpec, u64) -> BuildingDataset>;

/// A cell paired with its instantiated framework (or the defense
/// override's refusal), the unit the parallel executor consumes.
type PreparedCell = (ScenarioCell, Result<Box<dyn Framework>, String>);

/// Expands a [`ScenarioSpec`] over a [`HarnessConfig`] and executes the
/// grid, caching datasets per `(building, fleet)` and pretrained framework
/// templates per `(framework, building, fleet)`.
pub struct SuiteRunner {
    cfg: HarnessConfig,
    spec: ScenarioSpec,
    dataset_builder: DatasetBuilder,
    datasets: HashMap<(usize, usize), BuildingDataset>,
    templates: HashMap<(String, usize, usize), Template>,
}

impl SuiteRunner {
    /// Creates a runner over the paper's synthetic buildings.
    pub fn new(cfg: HarnessConfig, spec: ScenarioSpec) -> Self {
        Self {
            cfg,
            spec,
            dataset_builder: Box::new(|building, fleet, seed| {
                BuildingDataset::generate(
                    Building::paper(building),
                    &fleet.dataset_config(seed),
                    seed,
                )
            }),
            datasets: HashMap::new(),
            templates: HashMap::new(),
        }
    }

    /// Replaces the dataset source (tests swap in tiny buildings).
    pub fn with_dataset_builder(
        mut self,
        builder: impl Fn(usize, &FleetSpec, u64) -> BuildingDataset + 'static,
    ) -> Self {
        self.dataset_builder = Box::new(builder);
        self
    }

    /// The harness configuration driving the suite.
    pub fn cfg(&self) -> &HarnessConfig {
        &self.cfg
    }

    /// The spec being expanded.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Effective building ids: the spec's, or the scale's defaults.
    pub fn buildings(&self) -> Vec<usize> {
        if self.spec.buildings.is_empty() {
            default_buildings(self.cfg.scale)
                .iter()
                .map(|b| b.id)
                .collect()
        } else {
            self.spec.buildings.clone()
        }
    }

    /// Effective rounds per cell: the spec's, or the scale's default.
    pub fn rounds(&self) -> usize {
        if self.spec.rounds == 0 {
            self.cfg.rounds()
        } else {
            self.spec.rounds
        }
    }

    /// Expands the full cartesian grid, in deterministic axis order
    /// (framework-major, seed-minor).
    pub fn cells(&self) -> Vec<ScenarioCell> {
        let buildings = self.buildings();
        let rounds = self.rounds();
        let mut out = Vec::new();
        for (fi, framework) in self.spec.frameworks.iter().enumerate() {
            for (di, defense) in self.spec.defenses.iter().enumerate() {
                for (bi, &building) in buildings.iter().enumerate() {
                    for (li, fleet) in self.spec.fleets.iter().enumerate() {
                        for (ai, attack) in self.spec.attacks.iter().enumerate() {
                            for (pi, participation) in self.spec.participation.iter().enumerate() {
                                for (ni, network) in self.spec.networks.iter().enumerate() {
                                    for (ci, &delta) in self.spec.deltas.iter().enumerate() {
                                        for (si, &seed_salt) in
                                            self.spec.seed_salts.iter().enumerate()
                                        {
                                            out.push(ScenarioCell {
                                                framework: framework.clone(),
                                                defense: defense.clone(),
                                                building,
                                                fleet: fleet.clone(),
                                                attack: attack.clone(),
                                                participation: participation.clone(),
                                                network: network.clone(),
                                                delta,
                                                seed_salt,
                                                rounds,
                                                boost: self.spec.boost,
                                                coherent: self.spec.coherent,
                                                index: CellIndex {
                                                    framework: fi,
                                                    defense: di,
                                                    building: bi,
                                                    fleet: li,
                                                    attack: ai,
                                                    participation: pi,
                                                    network: ni,
                                                    delta: ci,
                                                    seed: si,
                                                },
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The (cached) dataset for a cell's `(building, fleet)` pair.
    pub fn dataset(&mut self, cell: &ScenarioCell) -> &BuildingDataset {
        let key = (cell.building, cell.fleet.total);
        if !self.datasets.contains_key(&key) {
            let data = (self.dataset_builder)(cell.building, &cell.fleet, self.cfg.seed);
            self.datasets.insert(key, data);
        }
        self.datasets.get(&key).expect("just inserted")
    }

    /// Ensures the cell's pretrained template exists and returns its key.
    fn ensure_template(&mut self, cell: &ScenarioCell) -> (String, usize, usize) {
        let key = (
            cell.framework.template_key(),
            cell.building,
            cell.fleet.total,
        );
        if !self.templates.contains_key(&key) {
            self.dataset(cell);
            let template = {
                let data = self
                    .datasets
                    .get(&(cell.building, cell.fleet.total))
                    .expect("dataset just ensured");
                let mut t = cell.framework.build(
                    data.building.num_aps(),
                    data.building.num_rps(),
                    &self.cfg,
                );
                t.pretrain(&data.server_train);
                t
            };
            eprintln!("  pretrained {} for B{}", key.0, cell.building);
            self.templates.insert(key.clone(), template);
        }
        key
    }

    /// A ready-to-run framework for one cell: the pretrained template,
    /// cloned and specialized (τ overrides applied, the cell's defense
    /// pipeline swapped in).
    ///
    /// # Errors
    ///
    /// Returns the framework's refusal message when the cell requests a
    /// defense override the framework does not support.
    pub fn framework(&mut self, cell: &ScenarioCell) -> Result<Box<dyn Framework>, String> {
        let key = self.ensure_template(cell);
        let mut framework = self.templates[&key].instantiate(&cell.framework);
        if let DefenseSpec::Pipeline(spec) = &cell.defense {
            let pipeline = spec.build(cell.defense_seed(self.cfg.seed));
            framework
                .set_aggregator(Box::new(pipeline))
                .map_err(|e| format!("defense {:?} not applicable: {e}", spec.label()))?;
        }
        Ok(framework)
    }

    /// Executes one cell end to end: fleet construction with the cell's
    /// attackers wired in, a seeded session under the cell's participation
    /// spec, and error evaluation over the held-out devices.
    pub fn run_cell(&mut self, cell: &ScenarioCell) -> CellRun {
        let framework = self.framework(cell);
        run_prepared_cell(&self.datasets, self.cfg.seed, cell.clone(), framework)
    }

    /// Runs the whole grid and collects the suite outcome.
    ///
    /// Preparation (dataset generation + template pretraining) runs
    /// serially so every cell sharing a template pretrains exactly once;
    /// the independent per-cell sessions then fan out over a rayon-style
    /// thread pool. Each cell derives its streams from its own decorated
    /// seed, so the parallel path is bitwise identical to the serial one
    /// for any thread count (`crates/bench/tests/suite.rs` pins this). A
    /// cell that panics is recorded as a failed [`CellRun`] (see
    /// [`CellRun::error`]) instead of taking the suite down.
    pub fn run(&mut self) -> SuiteRun {
        let cells = self.cells();
        let total = cells.len();
        let seed = self.cfg.seed;
        let progress = AtomicUsize::new(0);
        // Cells are prepared (dataset/template caches filled, one cloned
        // framework each) and executed in waves of a few per thread, so
        // peak memory holds O(threads) pretrained-model clones instead of
        // one per grid cell — a τ-sweep × attack × repetition grid can
        // easily reach hundreds of cells.
        let wave_len = (rayon::current_num_threads() * 2).max(1);
        let mut runs: Vec<CellRun> = Vec::with_capacity(total);
        for wave in cells.chunks(wave_len) {
            let prepared: Vec<PreparedCell> = wave
                .iter()
                .map(|cell| (cell.clone(), self.framework(cell)))
                .collect();
            // Parallel execute: cells only read the shared dataset cache.
            let datasets = &self.datasets;
            let executed: Vec<CellRun> = prepared
                .into_par_iter()
                .map(|(cell, framework)| {
                    let run = run_prepared_cell(datasets, seed, cell, framework);
                    // relaxed: progress ticker for log lines only; cells
                    // never synchronize through it.
                    let done = progress.fetch_add(1, Ordering::Relaxed) + 1;
                    match &run.error {
                        None => eprintln!("  [{done}/{total}] {} done", run.cell.label()),
                        Some(err) => {
                            eprintln!("  [{done}/{total}] {} FAILED: {err}", run.cell.label())
                        }
                    }
                    run
                })
                .collect();
            runs.extend(executed);
        }
        SuiteRun {
            name: self.spec.name.clone(),
            description: self.spec.description.clone(),
            scale: format!("{:?}", self.cfg.scale),
            seed: self.cfg.seed,
            cells: runs,
        }
    }
}

/// Executes one cell against the prepared dataset cache, converting a
/// panicking cell — or a framework that refused the cell's defense
/// override — into a [`CellRun`] with [`CellRun::error`] set.
fn run_prepared_cell(
    datasets: &HashMap<(usize, usize), BuildingDataset>,
    base_seed: u64,
    cell: ScenarioCell,
    framework: Result<Box<dyn Framework>, String>,
) -> CellRun {
    let data = datasets
        .get(&(cell.building, cell.fleet.total))
        .expect("prepare ensured the dataset");
    let framework = match framework {
        Ok(framework) => framework,
        Err(message) => {
            return CellRun {
                cell,
                fleet_size: data.num_clients(),
                errors: Vec::new(),
                reports: Vec::new(),
                error: Some(message),
            }
        }
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let scenario = Scenario {
            attack: cell.attack.attack.clone(),
            attacker_ids: if cell.attack.attack.is_some() {
                cell.fleet.attacker_ids(data)
            } else {
                Vec::new()
            },
            rounds: cell.rounds,
            seed: cell.scenario_seed(base_seed),
            boost: cell.boost,
            coherent: cell.coherent,
        };
        let mut clients = scenario_fleet(data, &scenario);
        if !cell.delta.is_dense() {
            for client in &mut clients {
                client.compressor = cell.delta.compressor();
            }
        }
        let sampler = cell
            .participation
            .sampler(&clients, cell.sampler_seed(base_seed));
        let fault = cell.network.fault(cell.network_seed(base_seed));
        run_fleet_with_network(
            framework,
            data,
            clients,
            cell.rounds,
            sampler,
            &fault,
            cell.network.deadline_ms,
        )
    }));
    match outcome {
        Ok(outcome) => CellRun {
            cell,
            fleet_size: data.num_clients(),
            errors: outcome.errors,
            reports: outcome.reports,
            error: None,
        },
        Err(payload) => CellRun {
            cell,
            fleet_size: data.num_clients(),
            errors: Vec::new(),
            reports: Vec::new(),
            error: Some(panic_message(payload.as_ref())),
        },
    }
}

/// Best-effort human-readable form of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked with a non-string payload".to_string()
    }
}

// --------------------------------------------------------------- results

/// One executed cell: the resolved axes plus raw per-sample errors and the
/// complete round-telemetry trail.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The cell that ran.
    pub cell: ScenarioCell,
    /// Fleet size of the cell's dataset (for participation labels).
    pub fleet_size: usize,
    /// Per-sample localization errors (meters) over the held-out devices.
    pub errors: Vec<f32>,
    /// One report per federated round.
    pub reports: Vec<RoundReport>,
    /// The cell's panic message, if it failed to execute (errors and
    /// reports are empty in that case).
    pub error: Option<String>,
}

impl CellRun {
    /// Best/mean/worst statistics over the cell's errors.
    pub fn stats(&self) -> ErrorStats {
        ErrorStats::from_errors(&self.errors)
    }

    /// Fleet label from the *actual* dataset size (the spec's `total: 0`
    /// shorthand resolves to whatever the dataset builder produced).
    pub fn fleet_label(&self) -> String {
        format!("({}, {})", self.fleet_size, self.cell.fleet.attackers)
    }

    /// Exact-hit accuracy (errors below 1 µm count as the right RP).
    pub fn accuracy(&self) -> f32 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().filter(|e| **e < 1e-6).count() as f32 / self.errors.len() as f32
    }

    /// Pooled attacker-rejection rate over the cell's rounds.
    pub fn attacker_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.reports.iter(), RoundReport::attacker_rejection_rate)
    }

    /// Pooled honest-rejection (false-positive) rate over the cell's rounds.
    pub fn honest_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.reports.iter(), RoundReport::honest_rejection_rate)
    }

    /// Pooled mean attacker aggregation weight (soft defenses).
    pub fn mean_attacker_weight(&self) -> Option<f32> {
        pooled_rate(self.reports.iter(), RoundReport::mean_attacker_weight)
    }

    /// Mean client-training wall time per round, milliseconds.
    pub fn mean_train_ms(&self) -> f64 {
        mean_ms(self.reports.iter().map(|r| r.train_ms))
    }

    /// Mean aggregation wall time per round, milliseconds.
    pub fn mean_aggregate_ms(&self) -> f64 {
        mean_ms(self.reports.iter().map(|r| r.aggregate_ms))
    }

    /// Per-rule rejection statistics over the cell's rounds: how many
    /// malicious and honest deliveries each named rule rejected, as counts
    /// and as rates over the respective delivered populations.
    pub fn rule_stats(&self) -> Vec<RuleStats> {
        let mut delivered_malicious = 0usize;
        let mut delivered_honest = 0usize;
        let mut per_rule: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for report in &self.reports {
            for c in &report.clients {
                match &c.outcome {
                    ClientOutcome::Trained { .. } => {
                        if c.malicious {
                            delivered_malicious += 1;
                        } else {
                            delivered_honest += 1;
                        }
                    }
                    ClientOutcome::Rejected { rule, .. } => {
                        let entry = per_rule.entry(rule.clone()).or_insert((0, 0));
                        if c.malicious {
                            delivered_malicious += 1;
                            entry.0 += 1;
                        } else {
                            delivered_honest += 1;
                            entry.1 += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        per_rule
            .into_iter()
            .map(|(rule, (attacker, honest))| RuleStats {
                rule,
                attacker_rejections: attacker,
                honest_rejections: honest,
                attacker_rejection_rate: rate(attacker, delivered_malicious),
                false_positive_rate: rate(honest, delivered_honest),
            })
            .collect()
    }

    /// Per-stage defense telemetry pooled over the cell's rounds: total
    /// rejections and mean wall time by stage name, in pipeline order
    /// (order of first appearance). Empty for frameworks predating the
    /// stage trail.
    pub fn stage_stats(&self) -> Vec<StageSuiteStats> {
        safeloc_fl::pooled_stage_telemetry(self.reports.iter())
            .into_iter()
            .map(|s| StageSuiteStats {
                stage: s.stage,
                rejections: s.rejections,
                mean_wall_ms: s.wall_ms,
            })
            .collect()
    }

    /// The serializable per-cell report.
    pub fn report(&self) -> SuiteCellReport {
        let stats = self.stats();
        SuiteCellReport {
            framework: self.cell.framework.label(),
            defense: self.cell.defense.label(),
            building: self.cell.building,
            fleet: self.fleet_label(),
            attack: self.cell.attack.label(),
            participation: self.cell.participation.label(self.fleet_size),
            network: self.cell.network.label(),
            delta: self.cell.delta.label(),
            rounds: self.cell.rounds,
            seed_salt: self.cell.seed_salt,
            best_m: stats.best,
            mean_m: stats.mean,
            worst_m: stats.worst,
            accuracy: self.accuracy(),
            attacker_rejection_rate: self.attacker_rejection_rate(),
            honest_rejection_rate: self.honest_rejection_rate(),
            mean_attacker_weight: self.mean_attacker_weight(),
            rules: self.rule_stats(),
            stage_stats: self.stage_stats(),
            mean_train_ms: self.mean_train_ms(),
            mean_aggregate_ms: self.mean_aggregate_ms(),
            error: self.error.clone(),
            cell: self.cell.clone(),
        }
    }
}

fn mean_ms(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

fn rate(count: usize, total: usize) -> Option<f32> {
    if total == 0 {
        None
    } else {
        Some(count as f32 / total as f32)
    }
}

/// The outcome of a whole suite: every cell with its raw errors and
/// telemetry, plus helpers formatters use to pool across cells.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Suite name.
    pub name: String,
    /// Suite description.
    pub description: String,
    /// Scale the suite ran at.
    pub scale: String,
    /// Harness master seed.
    pub seed: u64,
    /// Every executed cell, in grid order.
    pub cells: Vec<CellRun>,
}

impl SuiteRun {
    /// Cells matching a predicate.
    pub fn select(&self, pred: impl Fn(&CellRun) -> bool) -> Vec<&CellRun> {
        self.cells.iter().filter(|c| pred(c)).collect()
    }

    /// Per-sample errors pooled over every cell matching the predicate —
    /// the pooling the paper's figures apply across buildings and attacks.
    pub fn pooled_errors(&self, pred: impl Fn(&CellRun) -> bool) -> Vec<f32> {
        let mut out = Vec::new();
        for cell in self.cells.iter().filter(|c| pred(c)) {
            out.extend_from_slice(&cell.errors);
        }
        out
    }

    /// The serializable suite report.
    pub fn report(&self) -> SuiteReport {
        SuiteReport {
            schema: SUITE_SCHEMA.to_string(),
            name: self.name.clone(),
            description: self.description.clone(),
            scale: self.scale.clone(),
            seed: self.seed,
            cells: self.cells.iter().map(CellRun::report).collect(),
        }
    }

    /// One markdown row per cell — the `suite` binary's default rendering.
    pub fn markdown(&self) -> String {
        let fmt_rate = |r: Option<f32>| match r {
            Some(r) => format!("{:.0}%", r * 100.0),
            None => "—".to_string(),
        };
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let stats = c.stats();
                let stage_rejections = {
                    let parts: Vec<String> = c
                        .stage_stats()
                        .iter()
                        .filter(|s| s.rejections > 0)
                        .map(|s| format!("{}:{}", s.stage, s.rejections))
                        .collect();
                    if parts.is_empty() {
                        "—".to_string()
                    } else {
                        parts.join(" ")
                    }
                };
                vec![
                    c.cell.framework.label(),
                    c.cell.defense.label(),
                    format!("B{}", c.cell.building),
                    c.fleet_label(),
                    c.cell.attack.label(),
                    c.cell.participation.label(c.fleet_size),
                    c.cell.network.label(),
                    format!("{:.2}", stats.mean),
                    format!("{:.1}%", c.accuracy() * 100.0),
                    fmt_rate(c.attacker_rejection_rate()),
                    fmt_rate(c.honest_rejection_rate()),
                    c.mean_attacker_weight()
                        .map(|w| format!("{w:.3}"))
                        .unwrap_or_else(|| "—".to_string()),
                    stage_rejections,
                    format!("{:.1}", c.mean_train_ms()),
                    format!("{:.2}", c.mean_aggregate_ms()),
                ]
            })
            .collect();
        markdown_table(
            &[
                "framework",
                "defense",
                "building",
                "fleet",
                "attack",
                "participation",
                "network",
                "mean err (m)",
                "accuracy",
                "attacker rej.",
                "honest rej.",
                "attacker weight",
                "stage rejections",
                "train ms",
                "agg ms",
            ],
            &rows,
        )
    }
}

/// Schema tag of serialized suite reports.
pub const SUITE_SCHEMA: &str = "safeloc-bench/suite-report/v1";

/// Per-rule rejection statistics of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleStats {
    /// Rejecting rule name (`"latent"`, `"krum"`, `"non-finite"`, …).
    pub rule: String,
    /// Malicious deliveries this rule rejected.
    pub attacker_rejections: usize,
    /// Honest deliveries this rule rejected (collateral damage).
    pub honest_rejections: usize,
    /// `attacker_rejections` over all delivered malicious updates, or
    /// `None` when no malicious client delivered.
    pub attacker_rejection_rate: Option<f32>,
    /// `honest_rejections` over all delivered honest updates (the rule's
    /// false-positive rate), or `None` when no honest client delivered.
    pub false_positive_rate: Option<f32>,
}

/// Per-stage defense telemetry of one cell, pooled over its rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSuiteStats {
    /// Stage (or combiner) name, in pipeline order.
    pub stage: String,
    /// Total updates this stage rejected over the cell's rounds.
    pub rejections: usize,
    /// Mean wall time per round, milliseconds.
    pub mean_wall_ms: f64,
}

/// The serializable record of one executed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteCellReport {
    /// Framework display name.
    pub framework: String,
    /// Defense composition label (`"builtin"` for the framework's own
    /// rule).
    #[serde(default = "String::new")]
    pub defense: String,
    /// Paper building id.
    pub building: usize,
    /// Fleet label (`"(total, attackers)"`).
    pub fleet: String,
    /// Attack label.
    pub attack: String,
    /// Participation label.
    pub participation: String,
    /// Network-conditions label (`"ideal"` for pre-axis reports).
    #[serde(default = "ideal_network_label")]
    pub network: String,
    /// Delta-representation label (`"dense"` for pre-axis reports).
    #[serde(default = "dense_delta_label")]
    pub delta: String,
    /// Federated rounds run.
    pub rounds: usize,
    /// Seed salt of the repetition.
    pub seed_salt: u64,
    /// Best per-sample error, meters.
    pub best_m: f32,
    /// Mean per-sample error, meters.
    pub mean_m: f32,
    /// Worst per-sample error, meters.
    pub worst_m: f32,
    /// Exact-hit accuracy.
    pub accuracy: f32,
    /// Pooled attacker-rejection rate.
    pub attacker_rejection_rate: Option<f32>,
    /// Pooled honest-rejection rate.
    pub honest_rejection_rate: Option<f32>,
    /// Pooled mean attacker weight (soft defenses).
    pub mean_attacker_weight: Option<f32>,
    /// Per-rule rejection/false-positive statistics.
    pub rules: Vec<RuleStats>,
    /// Per-stage rejections and wall time, in pipeline order.
    #[serde(default = "Vec::new")]
    pub stage_stats: Vec<StageSuiteStats>,
    /// Mean client-training wall time per round, ms.
    pub mean_train_ms: f64,
    /// Mean aggregation wall time per round, ms.
    pub mean_aggregate_ms: f64,
    /// Panic message of a failed cell (`None` for healthy cells). The
    /// `suite` binary exits nonzero when any cell carries one, so CI fails
    /// on embedded errors instead of silently uploading them.
    pub error: Option<String>,
    /// The fully resolved cell, for exact reproduction.
    pub cell: ScenarioCell,
}

/// The serializable record of a whole suite — written next to
/// `BENCH_nn.json` by the `suite` binary and uploaded as a CI artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Report format version.
    pub schema: String,
    /// Suite name.
    pub name: String,
    /// Suite description.
    pub description: String,
    /// Scale the suite ran at (`Quick`/`Default`/`Full`).
    pub scale: String,
    /// Harness master seed.
    pub seed: u64,
    /// One record per cell, in grid order.
    pub cells: Vec<SuiteCellReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    fn spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(
            "unit",
            vec![FrameworkSpec::FedLoc, FrameworkSpec::Krum],
            vec![AttackSpec::clean(), AttackSpec::of(Attack::label_flip(0.8))],
        );
        spec.buildings = vec![5];
        spec.participation = vec![
            ParticipationSpec::full(),
            ParticipationSpec::fraction(0.5).with_churn(0.1, 0.0),
        ];
        spec.seed_salts = vec![0, 1];
        spec.rounds = 2;
        spec
    }

    #[test]
    #[allow(clippy::identity_op)] // the full axis product documents the grid
    fn grid_expansion_is_the_axis_product() {
        let cfg = HarnessConfig {
            scale: Scale::Quick,
            seed: 7,
        };
        let runner = SuiteRunner::new(cfg, spec());
        let cells = runner.cells();
        // frameworks × buildings × fleets × attacks × participation × seeds
        assert_eq!(cells.len(), 2 * 1 * 1 * 2 * 2 * 2);
        // Deterministic order, framework-major.
        assert_eq!(cells[0].index.framework, 0);
        assert_eq!(cells.last().unwrap().index.framework, 1);
        // Every cell resolves rounds and distinct seed salts.
        assert!(cells.iter().all(|c| c.rounds == 2));
        let a = &cells[0];
        let b = &cells[1];
        assert_ne!(a.scenario_seed(7), b.scenario_seed(7));
    }

    #[test]
    fn empty_buildings_fall_back_to_the_scale_defaults() {
        let mut s = spec();
        s.buildings = Vec::new();
        let quick = SuiteRunner::new(
            HarnessConfig {
                scale: Scale::Quick,
                seed: 0,
            },
            s.clone(),
        );
        assert_eq!(quick.buildings(), vec![5]);
        let full = SuiteRunner::new(
            HarnessConfig {
                scale: Scale::Default,
                seed: 0,
            },
            s,
        );
        assert_eq!(full.buildings().len(), 5);
    }

    #[test]
    fn spec_serde_round_trips() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn spec_defaults_fill_omitted_axes() {
        let json = r#"{
            "name": "minimal",
            "frameworks": ["FedLoc"],
            "attacks": [{"name": null, "attack": null}],
            "boost": null
        }"#;
        let s: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(s.fleets, vec![FleetSpec::paper()]);
        assert_eq!(s.participation, vec![ParticipationSpec::full()]);
        assert_eq!(s.networks, vec![NetworkSpec::ideal()]);
        assert_eq!(s.seed_salts, vec![0]);
        assert_eq!(s.rounds, 0);
        assert!(!s.coherent);
        assert!(s.buildings.is_empty());
    }

    #[test]
    fn participation_cohort_sizes_and_labels() {
        let full = ParticipationSpec::full();
        assert_eq!(full.cohort_size(6), 6);
        let half = ParticipationSpec::fraction(0.5);
        assert_eq!(half.cohort_size(6), 3);
        assert!(half.label(6).contains("3/6"));
        let one = ParticipationSpec::fraction(0.01);
        assert_eq!(one.cohort_size(6), 1, "fractions clamp to at least one");
        let k = ParticipationSpec {
            mode: ParticipationMode::UniformK { k: 9 },
            dropout: 0.0,
            straggle: 0.0,
        };
        assert_eq!(k.cohort_size(4), 4, "k clamps to the fleet");
    }

    #[test]
    fn fraction_one_maps_to_the_full_participation_fast_path() {
        let spec = ParticipationSpec::fraction(1.0);
        let clients: Vec<Client> = Vec::new();
        let sampler = spec.sampler(&clients, 3);
        assert_eq!(sampler, CohortSampler::full());
    }

    #[test]
    fn fleet_attacker_ids_match_fig7_assignment() {
        let data = BuildingDataset::generate(
            Building::tiny(3),
            &DatasetConfig::paper().with_fleet(9, 3),
            3,
        );
        let ids = FleetSpec::grown(9, 3).attacker_ids(&data);
        assert_eq!(ids[0], DeviceProfile::ATTACKER_DEVICE);
        assert_eq!(ids.len(), 3);
        assert!(!ids.contains(&data.train_device));
        let clean = FleetSpec {
            total: 0,
            attackers: 0,
        };
        assert!(clean.attacker_ids(&data).is_empty());

        // Saturated fleet: everything but the training device compromised —
        // including client 0 — and the unreachable fourth slot reported,
        // not silently dropped.
        let small = BuildingDataset::generate(
            Building::tiny(3),
            &DatasetConfig::paper().with_fleet(4, 3),
            3,
        );
        let ids = FleetSpec::grown(4, 4).attacker_ids(&small);
        assert_eq!(ids.len(), small.num_clients() - 1);
        assert!(ids.contains(&0));
        assert!(!ids.contains(&small.train_device));
    }

    #[test]
    #[allow(clippy::identity_op)] // the full axis product documents the grid
    fn network_axis_multiplies_the_grid_with_independent_fault_seeds() {
        let mut s = spec();
        s.networks = vec![
            NetworkSpec::ideal(),
            NetworkSpec {
                name: Some("lossy".into()),
                drop_probability: 0.2,
                ..NetworkSpec::ideal()
            },
        ];
        let runner = SuiteRunner::new(
            HarnessConfig {
                scale: Scale::Quick,
                seed: 7,
            },
            s,
        );
        let cells = runner.cells();
        // frameworks × defense × buildings × fleets × attacks ×
        // participation × networks × seeds
        assert_eq!(cells.len(), 2 * 1 * 1 * 1 * 2 * 2 * 2 * 2);
        let ideal = cells.iter().find(|c| c.index.network == 0).unwrap();
        let lossy = cells
            .iter()
            .find(|c| {
                c.index.network == 1
                    && c.index
                        == CellIndex {
                            network: 1,
                            ..ideal.index
                        }
            })
            .unwrap();
        // Network variants share the training stream but not the fault one.
        assert_eq!(ideal.scenario_seed(7), lossy.scenario_seed(7));
        assert_ne!(ideal.network_seed(7), lossy.network_seed(7));
        assert!(lossy.label().contains("net=lossy"));
        assert!(!ideal.label().contains("net="), "{}", ideal.label());
    }

    #[test]
    fn delta_axis_multiplies_the_grid_without_salting_the_scenario_seed() {
        let mut s = spec();
        s.deltas = vec![
            DeltaSpec::Dense,
            DeltaSpec::TopK { fraction: 0.05 },
            DeltaSpec::QuantizedI8,
        ];
        let runner = SuiteRunner::new(
            HarnessConfig {
                scale: Scale::Quick,
                seed: 7,
            },
            s,
        );
        let cells = runner.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2 * 3);
        let dense = cells.iter().find(|c| c.index.delta == 0).unwrap();
        let topk = cells
            .iter()
            .find(|c| {
                c.index.delta == 1
                    && c.index
                        == CellIndex {
                            delta: 1,
                            ..dense.index
                        }
            })
            .unwrap();
        // Compression variants of a cell train on identical streams.
        assert_eq!(dense.scenario_seed(7), topk.scenario_seed(7));
        assert_eq!(dense.sampler_seed(7), topk.sampler_seed(7));
        assert!(topk.label().contains("delta=topk=0.05"), "{}", topk.label());
        assert!(!dense.label().contains("delta="), "{}", dense.label());
    }

    #[test]
    fn unknown_delta_repr_names_fail_spec_parsing_naming_the_offender() {
        let json = r#"{
            "name": "bad",
            "frameworks": ["FedLoc"],
            "attacks": [{}],
            "deltas": ["Sparse9000"]
        }"#;
        let err = serde_json::from_str::<ScenarioSpec>(json).unwrap_err();
        let msg = format!("{err:?}");
        assert!(
            msg.contains("Sparse9000"),
            "error names the offender: {msg}"
        );
    }

    #[test]
    fn specs_without_a_delta_axis_default_to_dense_only() {
        let json = r#"{
            "name": "plain",
            "frameworks": ["FedLoc"],
            "attacks": [{}]
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.deltas, vec![DeltaSpec::Dense]);
    }

    #[test]
    fn network_labels_derive_from_the_profile() {
        assert_eq!(NetworkSpec::ideal().label(), "ideal");
        let wan = NetworkSpec {
            latency_ms_mean: 40.0,
            latency_ms_std: 8.0,
            drop_probability: 0.1,
            deadline_ms: 250.0,
            ..NetworkSpec::ideal()
        };
        assert_eq!(wan.label(), "lat=40±8ms drop=0.1 ddl=250ms");
        let named = NetworkSpec {
            name: Some("wan".into()),
            ..wan
        };
        assert_eq!(named.label(), "wan");
        assert!(!named.is_ideal());
        // The built profile carries every knob plus the cell seed.
        let fault = named.fault(9);
        assert_eq!(fault.latency_ms_mean, 40.0);
        assert_eq!(fault.drop_probability, 0.1);
        assert_eq!(fault.seed, 9);
    }

    #[test]
    fn framework_labels_and_template_keys() {
        assert_eq!(FrameworkSpec::Safeloc.label(), "SAFELOC");
        assert_eq!(
            FrameworkSpec::SafelocTau { tau: 0.25 }.template_key(),
            "SAFELOC",
            "tau points share the base template"
        );
        assert_eq!(
            FrameworkSpec::SafelocVariant {
                variant: SafelocVariant::NoDenoise
            }
            .label(),
            "SAFELOC[no-denoise]"
        );
        assert_eq!(FrameworkSpec::Krum.label(), "KRUM");
    }
}
