//! Synthetic city-scale fleets for the streaming-round sweep.
//!
//! The `fleet_scale` binary needs fleets far past what a
//! [`BuildingDataset`](safeloc_dataset::BuildingDataset) can materialize —
//! 10⁴–10⁵ clients — precisely to demonstrate that a
//! [`StreamingFlSession`](safeloc_fl::StreamingFlSession) never holds them
//! all. [`SyntheticFleet`] therefore *generates* each client's local
//! fingerprints on `materialize` from a per-client seed stream and drops
//! stateless clients again on `reclaim`; only clients with round-to-round
//! state ([`Client::has_round_state`], e.g. an error-feedback residual)
//! are retained between rounds. Peak memory is bounded by the cohort plus
//! the stateful stragglers, never by the fleet.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safeloc_dataset::FingerprintSet;
use safeloc_fl::{Client, DeltaSpec, FleetProvider};
use safeloc_nn::Matrix;
use std::collections::HashMap;

/// A deterministic on-demand fleet of synthetic clients.
pub struct SyntheticFleet {
    size: usize,
    input_dim: usize,
    n_classes: usize,
    samples_per_client: usize,
    seed: u64,
    delta: DeltaSpec,
    retained: HashMap<usize, Client>,
}

impl SyntheticFleet {
    /// A fleet of `size` clients, each holding `samples_per_client`
    /// synthetic RSS rows of width `input_dim` labeled into `n_classes`.
    /// A non-dense `delta` arms every client with a fresh
    /// [`DeltaCompressor`](safeloc_fl::DeltaCompressor); residuals then
    /// persist across rounds through the retained-client map.
    pub fn new(
        size: usize,
        input_dim: usize,
        n_classes: usize,
        samples_per_client: usize,
        seed: u64,
        delta: DeltaSpec,
    ) -> Self {
        assert!(n_classes > 0, "SyntheticFleet needs at least one class");
        Self {
            size,
            input_dim,
            n_classes,
            samples_per_client,
            seed,
            delta,
            retained: HashMap::new(),
        }
    }

    /// Estimated resident bytes of one materialized client: the local
    /// fingerprint matrix plus its labels. Deliberately an underestimate
    /// (struct overhead, allocator slack and the device-name string are
    /// ignored), so the streaming-headroom ratio the sweep reports is
    /// conservative.
    pub fn per_client_bytes(&self) -> u64 {
        let matrix = (self.samples_per_client * self.input_dim * std::mem::size_of::<f32>()) as u64;
        let labels = (self.samples_per_client * std::mem::size_of::<usize>()) as u64;
        matrix + labels
    }

    /// Estimated resident bytes a *materialized* (`Vec<Client>`) fleet of
    /// this size would hold — the denominator of the streaming-headroom
    /// claim.
    pub fn materialized_bytes(&self) -> u64 {
        self.size as u64 * self.per_client_bytes()
    }

    /// Clients currently retained for round-to-round state.
    pub fn retained(&self) -> usize {
        self.retained.len()
    }

    fn synthesize(&self, index: usize) -> Client {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let rows: Vec<Vec<f32>> = (0..self.samples_per_client)
            .map(|_| {
                (0..self.input_dim)
                    .map(|_| rng.gen_range(0.0f32..1.0))
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..self.samples_per_client)
            .map(|_| rng.gen_range(0..self.n_classes))
            .collect();
        Client {
            id: index,
            device_name: "synthetic".to_string(),
            local: FingerprintSet::new(Matrix::from_rows(&rows), labels),
            injector: None,
            // The same per-client stream convention as Client::from_dataset.
            seed: self.seed ^ ((index as u64 + 1) << 32),
            compressor: self.delta.compressor(),
        }
    }
}

impl FleetProvider for SyntheticFleet {
    fn len(&self) -> usize {
        self.size
    }

    fn materialize(&mut self, index: usize) -> Client {
        assert!(
            index < self.size,
            "client {index} out of a {}-client fleet",
            self.size
        );
        self.retained
            .remove(&index)
            .unwrap_or_else(|| self.synthesize(index))
    }

    fn reclaim(&mut self, client: Client) {
        if client.has_round_state() {
            self.retained.insert(client.id, client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(delta: DeltaSpec) -> SyntheticFleet {
        SyntheticFleet::new(100, 16, 4, 8, 7, delta)
    }

    #[test]
    fn materialize_is_deterministic_and_indexed() {
        let mut f = fleet(DeltaSpec::Dense);
        let a = f.materialize(42);
        let b = f.materialize(42);
        assert_eq!(a.id, 42);
        assert_eq!(a.local.x.as_slice(), b.local.x.as_slice());
        assert_eq!(a.local.labels, b.local.labels);
        assert_eq!(a.seed, b.seed);
        // Different clients draw from different streams.
        let c = f.materialize(43);
        assert_ne!(a.local.x.as_slice(), c.local.x.as_slice());
    }

    #[test]
    fn stateless_clients_are_dropped_on_reclaim() {
        let mut f = fleet(DeltaSpec::Dense);
        let c = f.materialize(3);
        f.reclaim(c);
        assert_eq!(f.retained(), 0, "dense stateless clients rebuild from seed");
    }

    #[test]
    fn compressor_residuals_survive_reclaim() {
        let mut f = fleet(DeltaSpec::TopK { fraction: 0.25 });
        let mut c = f.materialize(5);
        let (_, _) = c
            .compressor
            .as_mut()
            .unwrap()
            .compress(&[1.0, -2.0, 0.5, 0.25]);
        assert!(c.has_round_state());
        f.reclaim(c);
        assert_eq!(f.retained(), 1);
        let back = f.materialize(5);
        assert!(
            back.compressor.as_ref().unwrap().has_state(),
            "the retained residual must come back, not a fresh client"
        );
    }

    #[test]
    fn memory_estimates_scale_with_the_fleet() {
        let f = fleet(DeltaSpec::Dense);
        assert_eq!(f.per_client_bytes(), (8 * 16 * 4 + 8 * 8) as u64);
        assert_eq!(f.materialized_bytes(), 100 * f.per_client_bytes());
    }
}
