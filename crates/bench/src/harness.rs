//! Shared experiment plumbing: scales, dataset/framework construction and
//! the standard attack-scenario runner.

use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_baselines::{FedCc, FedHil, FedLoc, FedLs, Onlad};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceProfile};
use safeloc_fl::report::pooled_rate;
use safeloc_fl::{Client, CohortSampler, FlSession, Framework, RoundReport, ServerConfig};
use safeloc_metrics::localization_errors;
use safeloc_wire::FaultProfile;

/// Experiment scale, selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test: one small building, short training, coarse grids.
    Quick,
    /// Scaled-down-but-converged defaults (see `DESIGN.md` §5).
    Default,
    /// The paper's §V.A configuration (700 epochs, 10 rounds) — hours.
    Full,
}

/// Command-line configuration shared by every bench binary.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Selected scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Parses `--quick`, `--full` and `--seed N` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut scale = Scale::Default;
        let mut seed = 42;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--seed" => {
                    i += 1;
                    seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed requires an integer"));
                }
                other => panic!("unknown argument {other:?} (expected --quick/--full/--seed N)"),
            }
            i += 1;
        }
        Self { scale, seed }
    }

    /// Server configuration for the baselines at this scale.
    pub fn server_config(&self) -> ServerConfig {
        match self.scale {
            Scale::Quick => ServerConfig {
                pretrain_epochs: 60,
                ..ServerConfig::default_scale(self.seed)
            },
            Scale::Default => ServerConfig::default_scale(self.seed),
            Scale::Full => ServerConfig::paper(self.seed),
        }
    }

    /// SAFELOC configuration at this scale.
    pub fn safeloc_config(&self) -> SafeLocConfig {
        match self.scale {
            Scale::Quick => SafeLocConfig {
                pretrain_epochs: 60,
                ..SafeLocConfig::default_scale(self.seed)
            },
            Scale::Default => SafeLocConfig::default_scale(self.seed),
            Scale::Full => SafeLocConfig::paper(self.seed),
        }
    }

    /// Federated rounds per scenario.
    pub fn rounds(&self) -> usize {
        match self.scale {
            Scale::Quick => 4,
            Scale::Default => 8,
            Scale::Full => 10,
        }
    }

    /// The buildings evaluated at this scale.
    pub fn buildings(&self) -> Vec<Building> {
        default_buildings(self.scale)
    }
}

/// Buildings per scale: `Quick` uses only Building 5 (the smallest: 90 RPs,
/// 78 APs); the other scales use all five paper buildings.
pub fn default_buildings(scale: Scale) -> Vec<Building> {
    match scale {
        Scale::Quick => vec![Building::paper(5)],
        _ => Building::paper_all(),
    }
}

/// Generates the experimental bundle for one building with the paper's
/// six-phone protocol.
pub fn build_dataset(building: Building, seed: u64) -> BuildingDataset {
    BuildingDataset::generate(building, &DatasetConfig::paper(), seed)
}

/// Builds SAFELOC followed by the five compared baselines, all untrained.
pub fn build_frameworks(
    input_dim: usize,
    n_classes: usize,
    cfg: &HarnessConfig,
) -> Vec<Box<dyn Framework>> {
    let server = cfg.server_config();
    vec![
        Box::new(SafeLoc::new(input_dim, n_classes, cfg.safeloc_config())),
        Box::new(Onlad::new(input_dim, n_classes, server)),
        Box::new(FedLs::new(input_dim, n_classes, server)),
        Box::new(FedCc::new(input_dim, n_classes, server)),
        Box::new(FedHil::new(input_dim, n_classes, server)),
        Box::new(FedLoc::new(input_dim, n_classes, server)),
    ]
}

/// Builds and pretrains a SAFELOC instance for `data`.
pub fn pretrained_safeloc(data: &BuildingDataset, cfg: &HarnessConfig) -> SafeLoc {
    let mut f = SafeLoc::new(
        data.building.num_aps(),
        data.building.num_rps(),
        cfg.safeloc_config(),
    );
    f.pretrain(&data.server_train);
    f
}

/// One attack scenario: which attack, which clients are compromised, and
/// how many federated rounds run before evaluation.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The attack; `None` is the clean baseline.
    pub attack: Option<Attack>,
    /// Indices of compromised clients (the paper compromises the HTC U11).
    pub attacker_ids: Vec<usize>,
    /// Federated rounds before evaluation.
    pub rounds: usize,
    /// Scenario seed (clients/injectors derive their streams from it).
    pub seed: u64,
    /// Attacker update-boost factor; `None` = `n_clients / n_attackers`
    /// (model replacement, shared across colluders), `Some(1.0)` =
    /// honest-magnitude data poisoning only.
    pub boost: Option<f32>,
    /// Colluding attackers share one poison stream (identical flip
    /// choices), so their updates push coherently instead of cancelling.
    /// Matters only with several attackers (Fig. 7).
    pub coherent: bool,
}

impl Scenario {
    /// The paper's standard single-attacker scenario (HTC U11 compromised,
    /// model-replacement boost).
    pub fn paper(attack: Option<Attack>, rounds: usize, seed: u64) -> Self {
        Self {
            attack,
            attacker_ids: vec![DeviceProfile::ATTACKER_DEVICE],
            rounds,
            seed,
            boost: None,
            coherent: false,
        }
    }
}

/// Errors plus the per-round telemetry a scenario session produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Per-sample localization errors (meters) over the five non-training
    /// devices' held-out test sets.
    pub errors: Vec<f32>,
    /// One report per federated round, in order.
    pub reports: Vec<RoundReport>,
}

impl ScenarioOutcome {
    /// Pooled attacker-rejection rate over the session's rounds, or `None`
    /// if no malicious client ever delivered an update.
    pub fn attacker_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.reports.iter(), RoundReport::attacker_rejection_rate)
    }

    /// Pooled honest-rejection rate (collateral damage) over the session.
    pub fn honest_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.reports.iter(), RoundReport::honest_rejection_rate)
    }

    /// Pooled mean attacker aggregation weight (soft defenses).
    pub fn mean_attacker_weight(&self) -> Option<f32> {
        pooled_rate(self.reports.iter(), RoundReport::mean_attacker_weight)
    }
}

/// The fleet for a scenario: clients with the scenario's attackers wired
/// in (model-replacement boost shared across colluders).
pub fn scenario_fleet(data: &BuildingDataset, scenario: &Scenario) -> Vec<Client> {
    let mut clients = Client::from_dataset(data, scenario.seed);
    // Model-replacement boost: k colluding attackers share the n× factor so
    // their combined mass steers a plain mean exactly once.
    let boost = scenario
        .boost
        .unwrap_or(clients.len() as f32 / scenario.attacker_ids.len().max(1) as f32);
    if let Some(attack) = &scenario.attack {
        for &id in &scenario.attacker_ids {
            if id < clients.len() {
                let stream = if scenario.coherent {
                    scenario.seed ^ 0xC0117DE
                } else {
                    scenario.seed ^ ((id as u64 + 1) << 24)
                };
                clients[id].injector =
                    Some(PoisonInjector::new(attack.clone(), stream).with_boost(boost));
            }
        }
    }
    clients
}

/// Runs `scenario` on a **clone** of the pretrained `template` framework and
/// returns per-sample localization errors (meters) over the five
/// non-training devices' held-out test sets.
///
/// Full participation; use [`run_scenario_with_reports`] to subsample
/// cohorts or read the per-round telemetry.
pub fn run_scenario(
    template: &dyn Framework,
    data: &BuildingDataset,
    scenario: &Scenario,
) -> Vec<f32> {
    run_scenario_with_reports(template, data, scenario, CohortSampler::full()).errors
}

/// [`run_scenario`] through an [`FlSession`] with an explicit cohort
/// sampler, returning the round telemetry alongside the errors.
pub fn run_scenario_with_reports(
    template: &dyn Framework,
    data: &BuildingDataset,
    scenario: &Scenario,
    sampler: CohortSampler,
) -> ScenarioOutcome {
    run_fleet_with_reports(
        template.clone_box(),
        data,
        scenario_fleet(data, scenario),
        scenario.rounds,
        sampler,
    )
}

/// The innermost scenario step: drives `rounds` session rounds of
/// `framework` over an explicit, prebuilt fleet — the shape the
/// scenario-suite engine needs when the sampler itself is derived from the
/// fleet (e.g. [`CohortSampler::weighted_by_data_volume`]).
pub fn run_fleet_with_reports(
    framework: Box<dyn Framework>,
    data: &BuildingDataset,
    clients: Vec<Client>,
    rounds: usize,
    sampler: CohortSampler,
) -> ScenarioOutcome {
    let mut session = FlSession::builder(framework)
        .clients(clients)
        .sampler(sampler)
        .build();
    session.run(rounds);
    let (framework, _, reports) = session.into_parts();
    ScenarioOutcome {
        errors: evaluate_errors(framework.as_ref(), data),
        reports,
    }
}

/// [`run_fleet_with_reports`] under simulated network conditions: every
/// round's sampled cohort plan is replayed through the wire crate's
/// fault-injection shim ([`FaultProfile::degrade_plan`]) before the
/// framework runs it, so a would-be connection drop becomes
/// [`Availability::DropsOut`](safeloc_fl::Availability::DropsOut) and a
/// slow reader — or a latency draw beyond `deadline_ms` — becomes
/// [`Availability::Straggles`](safeloc_fl::Availability::Straggles).
/// Network conditions thereby sweep like any other scenario axis without
/// paying per-cell process spawns.
///
/// An ideal profile takes the exact [`FlSession`] path, so cells without
/// the network axis stay bitwise identical to the pre-axis engine.
pub fn run_fleet_with_network(
    mut framework: Box<dyn Framework>,
    data: &BuildingDataset,
    mut clients: Vec<Client>,
    rounds: usize,
    sampler: CohortSampler,
    fault: &FaultProfile,
    deadline_ms: f64,
) -> ScenarioOutcome {
    if fault.is_ideal() {
        return run_fleet_with_reports(framework, data, clients, rounds, sampler);
    }
    if let Err(problem) = sampler.validate_for_fleet(clients.len()) {
        panic!("run_fleet_with_network: {problem}");
    }
    let mut reports = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let plan = sampler.plan(round, clients.len());
        let degraded = fault.degrade_plan(&plan, round as u64, deadline_ms);
        reports.push(framework.run_round(&mut clients, &degraded));
    }
    ScenarioOutcome {
        errors: evaluate_errors(framework.as_ref(), data),
        reports,
    }
}

/// Localization errors of `framework` over the non-training devices' test
/// sets (the paper's evaluation protocol).
pub fn evaluate_errors(framework: &dyn Framework, data: &BuildingDataset) -> Vec<f32> {
    let mut errors = Vec::new();
    for (_, set) in data.eval_sets() {
        let pred = framework.predict(&set.x);
        errors.extend(localization_errors(&data.building, &pred, &set.labels));
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_metrics::ErrorStats;

    fn quick_cfg() -> HarnessConfig {
        HarnessConfig {
            scale: Scale::Quick,
            seed: 7,
        }
    }

    fn tiny_dataset() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(3), &DatasetConfig::tiny(), 3)
    }

    #[test]
    fn scales_pick_buildings() {
        assert_eq!(default_buildings(Scale::Quick).len(), 1);
        assert_eq!(default_buildings(Scale::Default).len(), 5);
        assert_eq!(default_buildings(Scale::Full).len(), 5);
    }

    #[test]
    fn full_scale_uses_paper_epochs() {
        let cfg = HarnessConfig {
            scale: Scale::Full,
            seed: 0,
        };
        assert_eq!(cfg.server_config().pretrain_epochs, 700);
        assert_eq!(cfg.safeloc_config().pretrain_epochs, 700);
        assert_eq!(cfg.rounds(), 10);
    }

    #[test]
    fn frameworks_come_in_paper_order() {
        let fw = build_frameworks(20, 8, &quick_cfg());
        let names: Vec<&str> = fw.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            ["SAFELOC", "ONLAD", "FEDLS", "FEDCC", "FEDHIL", "FEDLOC"]
        );
    }

    #[test]
    fn scenario_runner_produces_errors_for_every_eval_sample() {
        let data = tiny_dataset();
        let mut f = SafeLoc::new(
            data.building.num_aps(),
            data.building.num_rps(),
            safeloc::SafeLocConfig::tiny(),
        );
        f.pretrain(&data.server_train);
        let scenario = Scenario {
            attack: Some(Attack::label_flip(0.5)),
            attacker_ids: vec![1],
            rounds: 1,
            seed: 3,
            boost: None,
            coherent: false,
        };
        let errors = run_scenario(&f, &data, &scenario);
        let expected: usize = data.eval_sets().iter().map(|(_, s)| s.len()).sum();
        assert_eq!(errors.len(), expected);
        let stats = ErrorStats::from_errors(&errors);
        assert!(stats.mean.is_finite());
    }

    #[test]
    fn clean_scenario_beats_random_guessing() {
        let data = tiny_dataset();
        let mut f = SafeLoc::new(
            data.building.num_aps(),
            data.building.num_rps(),
            safeloc::SafeLocConfig::tiny(),
        );
        f.pretrain(&data.server_train);
        let clean = Scenario {
            attack: None,
            attacker_ids: vec![],
            rounds: 1,
            seed: 3,
            boost: None,
            coherent: false,
        };
        let errors = run_scenario(&f, &data, &clean);
        let stats = ErrorStats::from_errors(&errors);
        // Random guessing on the tiny serpentine floor is ~2.5 m mean.
        assert!(stats.mean < 2.5, "clean mean error {}", stats.mean);
    }
}
