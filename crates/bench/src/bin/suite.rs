//! Runs a named scenario-suite spec file end to end: expand the grid,
//! execute every cell through seeded `FlSession`s, print the markdown
//! summary and write the machine-readable `SuiteReport` JSON.
//!
//! Spec files live in `scenarios/` at the repo root (see the
//! `safeloc_bench::suite` module docs for the format). CI runs the
//! checked-in spec with `--quick` and uploads the report next to
//! `BENCH_ci.json`.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin suite -- \
//!     --spec scenarios/small_cohort.json [--quick|--full] [--seed N] [--out PATH]
//! ```

use safeloc_bench::{HarnessConfig, Scale, ScenarioSpec, SuiteRunner};

struct Args {
    spec: String,
    out: Option<String>,
    cfg: HarnessConfig,
}

fn parse_args() -> Args {
    let mut spec = None;
    let mut out = None;
    let mut cfg = HarnessConfig {
        scale: Scale::Default,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => cfg.scale = Scale::Quick,
            "--full" => cfg.scale = Scale::Full,
            "--seed" => {
                i += 1;
                cfg.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--spec" => {
                i += 1;
                spec = Some(
                    argv.get(i)
                        .unwrap_or_else(|| panic!("--spec requires a path"))
                        .clone(),
                );
            }
            "--out" => {
                i += 1;
                out = Some(
                    argv.get(i)
                        .unwrap_or_else(|| panic!("--out requires a path"))
                        .clone(),
                );
            }
            other => panic!(
                "unknown argument {other:?} (expected --spec PATH/--quick/--full/--seed N/--out PATH)"
            ),
        }
        i += 1;
    }
    Args {
        spec: spec.unwrap_or_else(|| panic!("--spec PATH is required")),
        out,
        cfg,
    }
}

fn main() {
    let args = parse_args();
    let json = std::fs::read_to_string(&args.spec)
        .unwrap_or_else(|e| panic!("cannot read spec {}: {e}", args.spec));
    let spec: ScenarioSpec = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("cannot parse spec {}: {e:?}", args.spec));

    let mut runner = SuiteRunner::new(args.cfg, spec);
    println!("# Suite — {}\n", runner.spec().name);
    if !runner.spec().description.is_empty() {
        println!("{}\n", runner.spec().description);
    }
    println!(
        "scale: {:?}, seed: {}, rounds/cell: {}, cells: {}\n",
        args.cfg.scale,
        args.cfg.seed,
        runner.rounds(),
        runner.cells().len()
    );

    let run = runner.run();
    println!("{}", run.markdown());

    let report = run.report();
    let out_path = args
        .out
        .unwrap_or_else(|| format!("SUITE_{}.json", report.name));
    let serialized = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, serialized)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path} ({} cells)", report.cells.len());

    // A report with embedded cell errors must fail the run (CI gates on
    // the exit code, not on grep-ing the uploaded artifact).
    let failures: Vec<&safeloc_bench::SuiteCellReport> =
        report.cells.iter().filter(|c| c.error.is_some()).collect();
    if !failures.is_empty() {
        eprintln!("\n{} cell(s) FAILED:", failures.len());
        for cell in failures {
            eprintln!(
                "  {} B{} {} {}: {}",
                cell.framework,
                cell.building,
                cell.fleet,
                cell.attack,
                cell.error.as_deref().unwrap_or("unknown error")
            );
        }
        std::process::exit(1);
    }
}
