//! Runs a named scenario-suite spec file end to end: expand the grid,
//! execute every cell through seeded `FlSession`s, print the markdown
//! summary and write the machine-readable `SuiteReport` JSON.
//!
//! Spec files live in `scenarios/` at the repo root (see the
//! `safeloc_bench::suite` module docs for the format). CI runs the
//! checked-in specs with `--quick` and uploads the reports next to
//! `BENCH_ci.json`, and gates on `--check-specs` so a malformed spec
//! fails fast without running anything.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin suite -- \
//!     --spec scenarios/small_cohort.json [--quick|--full] [--seed N] [--out PATH]
//! cargo run -p safeloc-bench --release --bin suite -- --check-specs scenarios
//! ```

use safeloc_bench::{DefenseSpec, HarnessConfig, Scale, ScenarioSpec, SuiteRunner};
use std::path::{Path, PathBuf};

struct Args {
    spec: Option<String>,
    check_specs: Option<String>,
    out: Option<String>,
    cfg: HarnessConfig,
}

fn parse_args() -> Args {
    let mut spec = None;
    let mut check_specs = None;
    let mut out = None;
    let mut cfg = HarnessConfig {
        scale: Scale::Default,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => cfg.scale = Scale::Quick,
            "--full" => cfg.scale = Scale::Full,
            "--seed" => {
                i += 1;
                cfg.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--spec" => {
                i += 1;
                spec = Some(
                    argv.get(i)
                        .unwrap_or_else(|| panic!("--spec requires a path"))
                        .clone(),
                );
            }
            "--check-specs" => {
                i += 1;
                check_specs = Some(
                    argv.get(i)
                        .unwrap_or_else(|| panic!("--check-specs requires a path"))
                        .clone(),
                );
            }
            "--out" => {
                i += 1;
                out = Some(
                    argv.get(i)
                        .unwrap_or_else(|| panic!("--out requires a path"))
                        .clone(),
                );
            }
            other => panic!(
                "unknown argument {other:?} (expected --spec PATH/--check-specs PATH/--quick/\
                 --full/--seed N/--out PATH)"
            ),
        }
        i += 1;
    }
    Args {
        spec,
        check_specs,
        out,
        cfg,
    }
}

/// Validates one spec file without running any cell: parse, expand the
/// grid, and build every spec-defined defense pipeline. Returns the cell
/// count or a readable error.
fn check_spec(path: &Path, cfg: HarnessConfig) -> Result<usize, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let spec: ScenarioSpec =
        serde_json::from_str(&json).map_err(|e| format!("cannot parse: {e:?}"))?;
    let runner = SuiteRunner::new(cfg, spec);
    let cells = runner.cells();
    if cells.is_empty() {
        return Err(
            "spec expands to zero cells (an axis list is empty) — nothing would run".to_string(),
        );
    }
    for cell in &cells {
        // Defense pipelines are built exactly as a run would build them,
        // so a spec naming an unbuildable composition fails here.
        if let DefenseSpec::Pipeline(p) = &cell.defense {
            let pipeline = p.build(cell.defense_seed(cfg.seed));
            let _ = pipeline.label();
        }
    }
    Ok(cells.len())
}

/// The `--check-specs` mode: parse and expand every checked-in spec (a
/// single file, or every `*.json` in a directory) without running cells.
/// Exits nonzero on the first-listed failures — the fast CI gate in front
/// of the suite-smoke run.
fn run_check_specs(path: &str, cfg: HarnessConfig) -> ! {
    let root = PathBuf::from(path);
    let mut files: Vec<PathBuf> = if root.is_dir() {
        std::fs::read_dir(&root)
            .unwrap_or_else(|e| panic!("cannot read directory {path}: {e}"))
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|e| e == "json").unwrap_or(false))
            .collect()
    } else {
        vec![root]
    };
    files.sort();
    if files.is_empty() {
        eprintln!("no spec files under {path}");
        std::process::exit(1);
    }
    let mut failures = 0usize;
    for file in &files {
        match check_spec(file, cfg) {
            Ok(cells) => println!("ok   {} ({cells} cells)", file.display()),
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {}: {e}", file.display());
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "\n{failures} of {} spec file(s) failed validation",
            files.len()
        );
        std::process::exit(1);
    }
    println!("\nall {} spec file(s) parse and expand", files.len());
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check_specs {
        run_check_specs(path, args.cfg);
    }
    let spec_path = args
        .spec
        .unwrap_or_else(|| panic!("--spec PATH (or --check-specs PATH) is required"));
    let json = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| panic!("cannot read spec {spec_path}: {e}"));
    let spec: ScenarioSpec = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("cannot parse spec {spec_path}: {e:?}"));

    let mut runner = SuiteRunner::new(args.cfg, spec);
    println!("# Suite — {}\n", runner.spec().name);
    if !runner.spec().description.is_empty() {
        println!("{}\n", runner.spec().description);
    }
    println!(
        "scale: {:?}, seed: {}, rounds/cell: {}, cells: {}\n",
        args.cfg.scale,
        args.cfg.seed,
        runner.rounds(),
        runner.cells().len()
    );

    let run = runner.run();
    println!("{}", run.markdown());

    let report = run.report();
    let out_path = args
        .out
        .unwrap_or_else(|| format!("SUITE_{}.json", report.name));
    let serialized = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, serialized)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path} ({} cells)", report.cells.len());

    // A report with embedded cell errors must fail the run (CI gates on
    // the exit code, not on grep-ing the uploaded artifact).
    let failures: Vec<&safeloc_bench::SuiteCellReport> =
        report.cells.iter().filter(|c| c.error.is_some()).collect();
    if !failures.is_empty() {
        eprintln!("\n{} cell(s) FAILED:", failures.len());
        for cell in failures {
            eprintln!(
                "  {} [{}] B{} {} {}: {}",
                cell.framework,
                cell.defense,
                cell.building,
                cell.fleet,
                cell.attack,
                cell.error.as_deref().unwrap_or("unknown error")
            );
        }
        std::process::exit(1);
    }
}
