//! Ablation — attribution of SAFELOC's robustness to its parts (ours, not a
//! paper figure; DESIGN.md §3 calls out the design choices under test).
//!
//! Variants:
//! * **full** — detection + de-noising + saliency (Normalized Eq. 9)
//! * **no-denoise** — τ = ∞ disables the client-side detector
//! * **no-saliency** — saliency sharpness 0 (S ≡ 1 ⇒ plain delta averaging)
//! * **literal-eq9** — the printed Eq. 9, damped (AggregationMode::Literal)
//! * **with-augment** — fused network trained with heterogeneity
//!   augmentation (this repository's extension; off in the paper-faithful
//!   default)
//! * **joint-decoder** — reconstruction gradients flow into the encoder
//!   (detach_decoder = false)
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin ablation [--quick|--full] [--seed N]
//! ```

use safeloc::{AggregationMode, SafeLoc, SafeLocConfig};
use safeloc_attacks::Attack;
use safeloc_bench::{build_dataset, run_scenario, HarnessConfig, Scenario};
use safeloc_dataset::Building;
use safeloc_fl::Framework;
use safeloc_metrics::{markdown_table, ErrorStats};

fn variant(name: &str, base: &SafeLocConfig) -> SafeLocConfig {
    let mut cfg = base.clone();
    match name {
        "full" => {}
        "no-denoise" => cfg.tau = f32::INFINITY,
        "no-saliency" => { /* handled below via sharpness */ }
        "literal-eq9" => cfg.aggregation = AggregationMode::Literal,
        "with-augment" => cfg.augment = Some(safeloc::DaeAugment::paper()),
        "joint-decoder" => cfg.detach_decoder = false,
        _ => unreachable!("unknown variant"),
    }
    cfg
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let rounds = cfg.rounds();
    let data = build_dataset(Building::paper(5), cfg.seed);
    let scenarios: Vec<(&str, Option<Attack>)> = vec![
        ("clean", None),
        ("label flip 0.6", Some(Attack::label_flip(0.6))),
        ("FGSM 0.4", Some(Attack::fgsm(0.4))),
        ("MIM 0.3", Some(Attack::mim(0.3))),
    ];
    let variants = [
        "full",
        "no-denoise",
        "no-saliency",
        "literal-eq9",
        "with-augment",
        "joint-decoder",
    ];

    println!("# Ablation — SAFELOC variants (building 5)\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {rounds}\n",
        cfg.scale, cfg.seed
    );

    let base = cfg.safeloc_config();
    let mut rows = Vec::new();
    for vname in variants {
        let vcfg = variant(vname, &base);
        let mut f = SafeLoc::new(data.building.num_aps(), data.building.num_rps(), vcfg);
        if vname == "no-saliency" {
            // Sharpness 0 makes S ≡ 1: plain (unweighted) delta averaging.
            f = {
                let mut cfg2 = base.clone();
                cfg2.seed = base.seed;
                let mut g = SafeLoc::new(data.building.num_aps(), data.building.num_rps(), cfg2);
                g.set_saliency_sharpness(0.0);
                g
            };
        }
        f.pretrain(&data.server_train);
        let mut row = vec![vname.to_string()];
        for (k, (_, attack)) in scenarios.iter().enumerate() {
            let scenario = Scenario::paper(attack.clone(), rounds, cfg.seed ^ (k as u64 + 1));
            let errors = run_scenario(&f, &data, &scenario);
            row.push(format!("{:.2}", ErrorStats::from_errors(&errors).mean));
        }
        eprintln!("  {vname} done");
        rows.push(row);
    }

    let mut header = vec!["variant"];
    for (name, _) in &scenarios {
        header.push(name);
    }
    println!("{}", markdown_table(&header, &rows));
    println!("\nexpected: full lowest under attack; no-denoise leaks backdoors; no-saliency leaks label flips;");
    println!("with-augment (extension) cuts clean error but masks the detector's contribution");
}
