//! Ablation — attribution of SAFELOC's robustness to its parts (ours, not a
//! paper figure; DESIGN.md §3 calls out the design choices under test).
//!
//! Variants (the suite engine's `SafelocVariant` axis):
//! * **full** — detection + de-noising + saliency (Normalized Eq. 9)
//! * **no-denoise** — τ = ∞ disables the client-side detector
//! * **no-saliency** — saliency sharpness 0 (S ≡ 1 ⇒ plain delta averaging)
//! * **literal-eq9** — the printed Eq. 9, damped (AggregationMode::Literal)
//! * **with-augment** — fused network trained with heterogeneity
//!   augmentation (this repository's extension; off in the paper-faithful
//!   default)
//! * **joint-decoder** — reconstruction gradients flow into the encoder
//!   (detach_decoder = false)
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin ablation [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_bench::{
    AttackSpec, FrameworkSpec, HarnessConfig, SafelocVariant, ScenarioSpec, SuiteRunner,
};
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let mut spec = ScenarioSpec::new(
        "ablation",
        SafelocVariant::ALL
            .iter()
            .map(|&variant| FrameworkSpec::SafelocVariant { variant })
            .collect(),
        vec![
            AttackSpec::clean(),
            AttackSpec::named("label flip 0.6", Attack::label_flip(0.6)),
            AttackSpec::named("FGSM 0.4", Attack::fgsm(0.4)),
            AttackSpec::named("MIM 0.3", Attack::mim(0.3)),
        ],
    );
    spec.description = "design-choice attribution for SAFELOC".into();
    spec.buildings = vec![5];

    let mut runner = SuiteRunner::new(cfg, spec.clone());
    println!("# Ablation — SAFELOC variants (building 5)\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {}\n",
        cfg.scale,
        cfg.seed,
        runner.rounds()
    );

    let run = runner.run();
    let mut rows = Vec::new();
    for (vi, variant) in SafelocVariant::ALL.iter().enumerate() {
        let mut row = vec![variant.label().to_string()];
        for (ai, _) in spec.attacks.iter().enumerate() {
            let errors =
                run.pooled_errors(|c| c.cell.index.framework == vi && c.cell.index.attack == ai);
            row.push(format!("{:.2}", ErrorStats::from_errors(&errors).mean));
        }
        rows.push(row);
    }

    let mut header = vec!["variant".to_string()];
    for attack in &spec.attacks {
        header.push(attack.label());
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("{}", markdown_table(&header_refs, &rows));
    println!("\nexpected: full lowest under attack; no-denoise leaks backdoors; no-saliency leaks label flips;");
    println!("with-augment (extension) cuts clean error but masks the detector's contribution");
}
