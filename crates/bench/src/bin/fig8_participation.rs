//! Fig. 8 (ours) — accuracy and attacker-rejection rate vs participation
//! fraction.
//!
//! The paper only evaluates full participation: every client, every round.
//! Production FL runs partial cohorts with churn — the regime where
//! poisoning defenses degrade (Fang et al., arXiv:1911.11815): with fewer
//! honest updates per round, a boosted attacker makes up a larger share of
//! the cohort whenever it is sampled. This sweep runs the paper's standard
//! single-attacker scenario (HTC U11 compromised, label flip 0.8,
//! model-replacement boost) at participation fractions
//! {1.0, 0.75, 0.5, 0.25} and reads two things the seed engine could not
//! report: localization accuracy *and* the defense's attacker-rejection
//! rate (from the per-round `RoundReport`s; for SAFELOC's soft saliency
//! defense, the attacker's mean acceptance weight).
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig8_participation [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_baselines::{FedCc, FedLs, KrumFramework};
use safeloc_bench::{
    build_dataset, pretrained_safeloc, run_scenario_with_reports, HarnessConfig, Scenario,
};
use safeloc_dataset::Building;
use safeloc_fl::{CohortSampler, Framework};
use safeloc_metrics::markdown_table;

const FRACTIONS: [f32; 4] = [1.0, 0.75, 0.5, 0.25];

fn fmt_rate(rate: Option<f32>) -> String {
    match rate {
        Some(r) => format!("{:.0}%", r * 100.0),
        None => "—".to_string(),
    }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let rounds = cfg.rounds();
    let data = build_dataset(Building::paper(5), cfg.seed);
    let (aps, rps) = (data.building.num_aps(), data.building.num_rps());
    let n_clients = data.num_clients();

    println!("# Fig. 8 — participation-fraction sweep (building 5)\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {rounds}, fleet: {n_clients} clients, \
         attack: label flip 0.8 on the HTC U11 (boosted)\n",
        cfg.scale, cfg.seed
    );

    let frameworks: Vec<Box<dyn Framework>> = {
        let server = cfg.server_config();
        let mut list: Vec<Box<dyn Framework>> = vec![
            Box::new(pretrained_safeloc(&data, &cfg)),
            Box::new(KrumFramework::new(aps, rps, server)),
            Box::new(FedCc::new(aps, rps, server)),
            Box::new(FedLs::new(aps, rps, server)),
        ];
        for f in list.iter_mut().skip(1) {
            f.pretrain(&data.server_train);
            eprintln!("  pretrained {}", f.name());
        }
        list
    };

    let scenario = Scenario::paper(Some(Attack::label_flip(0.8)), rounds, cfg.seed);
    let mut rows = Vec::new();
    for template in &frameworks {
        for fraction in FRACTIONS {
            let k = ((fraction * n_clients as f32).round() as usize).clamp(1, n_clients);
            let sampler = if k == n_clients {
                CohortSampler::full()
            } else {
                CohortSampler::uniform(k, cfg.seed ^ 0xC0_4082)
            };
            let outcome = run_scenario_with_reports(template.as_ref(), &data, &scenario, sampler);
            // Pooled accuracy over the non-training devices' test sets:
            // errors are per-sample distances; exact hits are 0 m.
            let accuracy = if outcome.errors.is_empty() {
                0.0
            } else {
                outcome.errors.iter().filter(|e| **e < 1e-6).count() as f32
                    / outcome.errors.len() as f32
            };
            let mean_error =
                outcome.errors.iter().sum::<f32>() / outcome.errors.len().max(1) as f32;
            rows.push(vec![
                template.name().to_string(),
                format!("{fraction:.2} ({k}/{n_clients})"),
                format!("{:.1}%", accuracy * 100.0),
                format!("{mean_error:.2}"),
                fmt_rate(outcome.attacker_rejection_rate()),
                fmt_rate(outcome.honest_rejection_rate()),
                outcome
                    .mean_attacker_weight()
                    .map(|w| format!("{w:.3}"))
                    .unwrap_or_else(|| "—".to_string()),
            ]);
            eprintln!("  [{}] fraction {fraction} done", template.name());
        }
    }

    println!(
        "{}",
        markdown_table(
            &[
                "framework",
                "participation",
                "accuracy",
                "mean err (m)",
                "attacker rej.",
                "honest rej.",
                "attacker weight",
            ],
            &rows
        )
    );
    println!(
        "\nreading: rejection rates come from RoundReport decision trails; '—' means the \
         attacker was never sampled (or the defense never rejects, e.g. SAFELOC's saliency \
         weighting — read its 'attacker weight' column instead)."
    );
}
