//! Fig. 8 (ours) — accuracy and attacker-rejection rate vs participation
//! fraction.
//!
//! The paper only evaluates full participation: every client, every round.
//! Production FL runs partial cohorts with churn — the regime where
//! poisoning defenses degrade (Fang et al., arXiv:1911.11815): with fewer
//! honest updates per round, a boosted attacker makes up a larger share of
//! the cohort whenever it is sampled. This sweep runs the paper's standard
//! single-attacker scenario (HTC U11 compromised, label flip 0.8,
//! model-replacement boost) at participation fractions
//! {1.0, 0.75, 0.5, 0.25} and reads two things the seed engine could not
//! report: localization accuracy *and* the defense's attacker-rejection
//! rate (from the per-round `RoundReport`s; for SAFELOC's soft saliency
//! defense, the attacker's mean acceptance weight).
//!
//! This sweep found the FEDLS small-cohort bypass (a boosted attacker in a
//! cohort below the latent filter's 3-update guard was accepted
//! wholesale); the fix screens small rounds against the accumulated benign
//! history (`safeloc-fl/src/aggregate/latent.rs`).
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig8_participation [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_bench::{
    AttackSpec, FrameworkSpec, HarnessConfig, ParticipationSpec, ScenarioSpec, SuiteRunner,
};
use safeloc_metrics::markdown_table;

const FRACTIONS: [f32; 4] = [1.0, 0.75, 0.5, 0.25];

fn fmt_rate(rate: Option<f32>) -> String {
    match rate {
        Some(r) => format!("{:.0}%", r * 100.0),
        None => "—".to_string(),
    }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let mut spec = ScenarioSpec::new(
        "fig8_participation",
        vec![
            FrameworkSpec::Safeloc,
            FrameworkSpec::Krum,
            FrameworkSpec::FedCc,
            FrameworkSpec::FedLs,
        ],
        vec![AttackSpec::of(Attack::label_flip(0.8))],
    );
    spec.description = "accuracy + attacker-rejection rate vs participation fraction".into();
    spec.buildings = vec![5];
    spec.participation = FRACTIONS
        .iter()
        .map(|&f| ParticipationSpec::fraction(f))
        .collect();

    let mut runner = SuiteRunner::new(cfg, spec);
    let rounds = runner.rounds();
    println!("# Fig. 8 — participation-fraction sweep (building 5)\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {rounds}, \
         attack: label flip 0.8 on the HTC U11 (boosted)\n",
        cfg.scale, cfg.seed
    );

    let run = runner.run();
    let rows: Vec<Vec<String>> = run
        .cells
        .iter()
        .map(|c| {
            let stats = c.stats();
            vec![
                c.cell.framework.label(),
                c.cell.participation.label(c.fleet_size),
                format!("{:.1}%", c.accuracy() * 100.0),
                format!("{:.2}", stats.mean),
                fmt_rate(c.attacker_rejection_rate()),
                fmt_rate(c.honest_rejection_rate()),
                c.mean_attacker_weight()
                    .map(|w| format!("{w:.3}"))
                    .unwrap_or_else(|| "—".to_string()),
            ]
        })
        .collect();

    println!(
        "{}",
        markdown_table(
            &[
                "framework",
                "participation",
                "accuracy",
                "mean err (m)",
                "attacker rej.",
                "honest rej.",
                "attacker weight",
            ],
            &rows
        )
    );
    println!(
        "\nreading: rejection rates come from RoundReport decision trails; '—' means the \
         attacker was never sampled (or the defense never rejects, e.g. SAFELOC's saliency \
         weighting — read its 'attacker weight' column instead)."
    );
}
