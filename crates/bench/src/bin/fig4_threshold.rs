//! Fig. 4 — impact of the reconstruction threshold τ on mean localization
//! error across the five buildings.
//!
//! The paper sweeps τ from 0.05 to 0.5 and finds τ = 0.1 optimal: smaller τ
//! needlessly de-noises clean heterogeneous-device data, larger τ lets
//! backdoor poison through.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig4_threshold [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_bench::{
    build_dataset, pretrained_safeloc, run_scenario, HarnessConfig, Scale, Scenario,
};
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let rounds = (cfg.rounds() / 2).max(2);
    let taus: Vec<f32> = match cfg.scale {
        Scale::Quick => vec![0.05, 0.1, 0.25, 0.5],
        _ => vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5],
    };
    // The HTC U11 introduces a mix of backdoor and label-flip poison, as in
    // the paper's τ study.
    let attacks = [Attack::fgsm(0.3), Attack::mim(0.2), Attack::label_flip(0.5)];

    println!("# Fig. 4 — mean localization error vs. reconstruction threshold τ\n");
    println!(
        "scale: {:?}, seed: {}, rounds/scenario: {rounds}\n",
        cfg.scale, cfg.seed
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let buildings = cfg.buildings();
    let mut per_building_series: Vec<(usize, Vec<(f32, f32)>)> = Vec::new();

    for building in buildings {
        let id = building.id;
        let data = build_dataset(building, cfg.seed);
        let template = pretrained_safeloc(&data, &cfg);
        let mut series = Vec::new();
        for &tau in &taus {
            let mut variant = template.clone();
            variant.set_tau(tau);
            let mut errors = Vec::new();
            for (k, attack) in attacks.iter().enumerate() {
                let scenario =
                    Scenario::paper(Some(attack.clone()), rounds, cfg.seed ^ (k as u64 + 1));
                errors.extend(run_scenario(&variant, &data, &scenario));
            }
            let stats = ErrorStats::from_errors(&errors);
            series.push((tau, stats.mean));
        }
        eprintln!("  building {id} done");
        per_building_series.push((id, series));
    }

    let mut header: Vec<String> = vec!["tau".into()];
    for (id, _) in &per_building_series {
        header.push(format!("B{id} mean (m)"));
    }
    for (i, &tau) in taus.iter().enumerate() {
        let mut row = vec![format!("{tau:.2}")];
        for (_, series) in &per_building_series {
            row.push(format!("{:.2}", series[i].1));
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("{}", markdown_table(&header_refs, &rows));
    println!(
        "\npaper: minimum at tau = 0.1; stable to ~0.25; errors grow past 0.3, peaking at 0.45-0.5"
    );
}
