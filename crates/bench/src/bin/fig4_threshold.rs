//! Fig. 4 — impact of the reconstruction threshold τ on mean localization
//! error across the five buildings.
//!
//! The paper sweeps τ from 0.05 to 0.5 and finds τ = 0.1 optimal: smaller τ
//! needlessly de-noises clean heterogeneous-device data, larger τ lets
//! backdoor poison through.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig4_threshold [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_bench::{AttackSpec, FrameworkSpec, HarnessConfig, Scale, ScenarioSpec, SuiteRunner};
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let taus: Vec<f32> = match cfg.scale {
        Scale::Quick => vec![0.05, 0.1, 0.25, 0.5],
        _ => vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5],
    };
    // The HTC U11 introduces a mix of backdoor and label-flip poison, as in
    // the paper's τ study; errors pool over the three attacks per τ cell.
    // All τ points share one pretrained SAFELOC template per building.
    let mut spec = ScenarioSpec::new(
        "fig4_threshold",
        taus.iter()
            .map(|&tau| FrameworkSpec::SafelocTau { tau })
            .collect(),
        vec![
            AttackSpec::of(Attack::fgsm(0.3)),
            AttackSpec::of(Attack::mim(0.2)),
            AttackSpec::of(Attack::label_flip(0.5)),
        ],
    );
    spec.description = "mean localization error vs reconstruction threshold".into();
    spec.rounds = (cfg.rounds() / 2).max(2);

    let mut runner = SuiteRunner::new(cfg, spec);
    let buildings = runner.buildings();
    println!("# Fig. 4 — mean localization error vs. reconstruction threshold τ\n");
    println!(
        "scale: {:?}, seed: {}, rounds/scenario: {}\n",
        cfg.scale,
        cfg.seed,
        runner.rounds()
    );

    let run = runner.run();
    let mut header: Vec<String> = vec!["tau".into()];
    for id in &buildings {
        header.push(format!("B{id} mean (m)"));
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (ti, tau) in taus.iter().enumerate() {
        let mut row = vec![format!("{tau:.2}")];
        for (bi, _) in buildings.iter().enumerate() {
            let errors =
                run.pooled_errors(|c| c.cell.index.framework == ti && c.cell.index.building == bi);
            row.push(format!("{:.2}", ErrorStats::from_errors(&errors).mean));
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("{}", markdown_table(&header_refs, &rows));
    println!(
        "\npaper: minimum at tau = 0.1; stable to ~0.25; errors grow past 0.3, peaking at 0.45-0.5"
    );
}
