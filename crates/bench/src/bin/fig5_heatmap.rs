//! Fig. 5 — SAFELOC's mean localization error under each attack at each
//! perturbation magnitude ε (the heatmap).
//!
//! The paper reports stability across all backdoor attacks and ε values,
//! with a gradual rise for label flipping from ε = 0.2 up to 4.38 m at
//! ε = 1.0.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig5_heatmap [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::{Attack, AttackKind, ALL_ATTACK_KINDS};
use safeloc_bench::{AttackSpec, FrameworkSpec, HarnessConfig, Scale, ScenarioSpec, SuiteRunner};
use safeloc_metrics::{heatmap, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let epsilons: Vec<f32> = match cfg.scale {
        Scale::Quick => vec![0.05, 0.1, 0.3, 0.6, 1.0],
        _ => vec![0.01, 0.03, 0.05, 0.08, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
    };
    // The attack axis is the flattened (kind, ε) grid, kind-major.
    let mut attacks = Vec::new();
    for kind in ALL_ATTACK_KINDS {
        for &eps in &epsilons {
            attacks.push(AttackSpec::of(Attack::of_kind(kind, eps)));
        }
    }
    let mut spec = ScenarioSpec::new("fig5_heatmap", vec![FrameworkSpec::Safeloc], attacks);
    spec.description = "SAFELOC mean error per attack × epsilon".into();
    spec.rounds = (cfg.rounds() / 2).max(2);
    spec.buildings = match cfg.scale {
        Scale::Quick => vec![5],
        // The paper pools all buildings; the largest and smallest span the
        // range at tractable cost.
        _ => vec![1, 5],
    };

    let mut runner = SuiteRunner::new(cfg, spec);
    println!("# Fig. 5 — SAFELOC mean error (m) per attack × ε\n");
    println!(
        "scale: {:?}, seed: {}, rounds/scenario: {}, buildings: {:?}\n",
        cfg.scale,
        cfg.seed,
        runner.rounds(),
        runner.buildings()
    );

    // values[kind][eps] pools errors over buildings.
    let run = runner.run();
    let values: Vec<Vec<f32>> = (0..ALL_ATTACK_KINDS.len())
        .map(|a| {
            (0..epsilons.len())
                .map(|e| {
                    let ai = a * epsilons.len() + e;
                    let errors = run.pooled_errors(|c| c.cell.index.attack == ai);
                    ErrorStats::from_errors(&errors).mean
                })
                .collect()
        })
        .collect();

    let col_labels: Vec<String> = epsilons.iter().map(|e| format!("{e:.2}")).collect();
    let row_labels: Vec<String> = ALL_ATTACK_KINDS
        .iter()
        .map(|k| k.label().to_string())
        .collect();
    println!(
        "{}",
        heatmap("attack \\ eps", &col_labels, &row_labels, &values)
    );

    // Summary checks against the paper's claims.
    let flip_idx = ALL_ATTACK_KINDS
        .iter()
        .position(|k| *k == AttackKind::LabelFlip)
        .expect("label flip present");
    let flip_low = values[flip_idx][0];
    let flip_high = *values[flip_idx].last().expect("non-empty");
    println!(
        "\nlabel-flip rises from {flip_low:.2} m (low eps) to {flip_high:.2} m (eps = 1.0); \
         paper: up to 4.38 m at eps = 1.0"
    );
}
