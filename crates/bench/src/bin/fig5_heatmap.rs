//! Fig. 5 — SAFELOC's mean localization error under each attack at each
//! perturbation magnitude ε (the heatmap).
//!
//! The paper reports stability across all backdoor attacks and ε values,
//! with a gradual rise for label flipping from ε = 0.2 up to 4.38 m at
//! ε = 1.0.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig5_heatmap [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::{Attack, AttackKind, ALL_ATTACK_KINDS};
use safeloc_bench::{
    build_dataset, pretrained_safeloc, run_scenario, HarnessConfig, Scale, Scenario,
};
use safeloc_dataset::Building;
use safeloc_metrics::{heatmap, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let rounds = (cfg.rounds() / 2).max(2);
    let epsilons: Vec<f32> = match cfg.scale {
        Scale::Quick => vec![0.05, 0.1, 0.3, 0.6, 1.0],
        _ => vec![0.01, 0.03, 0.05, 0.08, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
    };
    let buildings = match cfg.scale {
        Scale::Quick => vec![Building::paper(5)],
        // The paper pools all buildings; the largest and smallest span the
        // range at tractable cost.
        _ => vec![Building::paper(1), Building::paper(5)],
    };

    println!("# Fig. 5 — SAFELOC mean error (m) per attack × ε\n");
    println!(
        "scale: {:?}, seed: {}, rounds/scenario: {rounds}, buildings: {:?}\n",
        cfg.scale,
        cfg.seed,
        buildings.iter().map(|b| b.id).collect::<Vec<_>>()
    );

    // cells[attack][eps] pools errors over buildings.
    let mut cells: Vec<Vec<Vec<f32>>> =
        vec![vec![Vec::new(); epsilons.len()]; ALL_ATTACK_KINDS.len()];

    for building in buildings {
        let data = build_dataset(building, cfg.seed);
        let template = pretrained_safeloc(&data, &cfg);
        for (a, kind) in ALL_ATTACK_KINDS.iter().enumerate() {
            for (e, &eps) in epsilons.iter().enumerate() {
                let scenario = Scenario::paper(
                    Some(Attack::of_kind(*kind, eps)),
                    rounds,
                    cfg.seed ^ ((a as u64) << 8 | e as u64),
                );
                cells[a][e].extend(run_scenario(&template, &data, &scenario));
            }
            eprintln!("  building {} {} done", data.building.id, kind.label());
        }
    }

    let col_labels: Vec<String> = epsilons.iter().map(|e| format!("{e:.2}")).collect();
    let row_labels: Vec<String> = ALL_ATTACK_KINDS
        .iter()
        .map(|k| k.label().to_string())
        .collect();
    let values: Vec<Vec<f32>> = cells
        .iter()
        .map(|row| {
            row.iter()
                .map(|errors| ErrorStats::from_errors(errors).mean)
                .collect()
        })
        .collect();

    println!(
        "{}",
        heatmap("attack \\ eps", &col_labels, &row_labels, &values)
    );

    // Summary checks against the paper's claims.
    let flip_idx = ALL_ATTACK_KINDS
        .iter()
        .position(|k| *k == AttackKind::LabelFlip)
        .expect("label flip present");
    let flip_low = values[flip_idx][0];
    let flip_high = *values[flip_idx].last().expect("non-empty");
    println!(
        "\nlabel-flip rises from {flip_low:.2} m (low eps) to {flip_high:.2} m (eps = 1.0); \
         paper: up to 4.38 m at eps = 1.0"
    );
}
