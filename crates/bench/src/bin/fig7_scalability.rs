//! Fig. 7 — scalability with increasing (total, poisoned) clients.
//!
//! The paper grows the fleet from 6 to 24 clients with poisoned clients
//! rising from 1 to 12: FEDHIL's mean error climbs steadily, while ONLAD
//! and SAFELOC stay stable, SAFELOC lowest.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig7_scalability [--quick|--full] [--seed N]
//! ```

use safeloc::SafeLoc;
use safeloc_attacks::Attack;
use safeloc_baselines::{FedHil, Onlad};
use safeloc_bench::{run_scenario, HarnessConfig, Scale, Scenario};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::Framework;
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let rounds = (cfg.rounds() / 2).max(2);
    let grid: Vec<(usize, usize)> = match cfg.scale {
        Scale::Quick => vec![(6, 1), (12, 4), (24, 12)],
        _ => vec![
            (6, 1),
            (9, 2),
            (12, 4),
            (15, 6),
            (18, 8),
            (21, 10),
            (24, 12),
        ],
    };
    let building_id = 5; // smallest building keeps the 24-client runs tractable
    println!("# Fig. 7 — mean error vs. (total, poisoned) clients\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {rounds}, building: {building_id}\n",
        cfg.scale, cfg.seed
    );

    let mut rows = Vec::new();
    for &(total, poisoned) in &grid {
        let dataset_cfg = DatasetConfig::paper().with_fleet(total, cfg.seed);
        let data = BuildingDataset::generate(Building::paper(building_id), &dataset_cfg, cfg.seed);
        // Poisoned clients: the HTC U11 plus the last synthetic phones.
        let mut attacker_ids = vec![safeloc_dataset::DeviceProfile::ATTACKER_DEVICE];
        let mut next = total - 1;
        while attacker_ids.len() < poisoned {
            if !attacker_ids.contains(&next) && next != data.train_device {
                attacker_ids.push(next);
            }
            next -= 1;
        }

        let mut row = vec![format!("({total}, {poisoned})")];
        for which in ["SAFELOC", "ONLAD", "FEDHIL"] {
            let mut f: Box<dyn Framework> = match which {
                "SAFELOC" => Box::new(SafeLoc::new(
                    data.building.num_aps(),
                    data.building.num_rps(),
                    cfg.safeloc_config(),
                )),
                "ONLAD" => Box::new(Onlad::new(
                    data.building.num_aps(),
                    data.building.num_rps(),
                    cfg.server_config(),
                )),
                _ => Box::new(FedHil::new(
                    data.building.num_aps(),
                    data.building.num_rps(),
                    cfg.server_config(),
                )),
            };
            f.pretrain(&data.server_train);
            // Half the attackers flip labels, half run FGSM backdoors.
            let mut errors = Vec::new();
            for (k, attack) in [Attack::label_flip(0.6), Attack::fgsm(0.4)]
                .into_iter()
                .enumerate()
            {
                let scenario = Scenario {
                    attack: Some(attack),
                    attacker_ids: attacker_ids.clone(),
                    rounds,
                    seed: cfg.seed ^ (k as u64 + 1),
                    boost: None,
                    coherent: true,
                };
                errors.extend(run_scenario(f.as_ref(), &data, &scenario));
            }
            row.push(format!("{:.2}", ErrorStats::from_errors(&errors).mean));
        }
        eprintln!("  fleet ({total}, {poisoned}) done");
        rows.push(row);
    }

    println!(
        "{}",
        markdown_table(
            &[
                "(clients, poisoned)",
                "SAFELOC (m)",
                "ONLAD (m)",
                "FEDHIL (m)"
            ],
            &rows
        )
    );
    println!("\npaper: FEDHIL rises steadily with fleet size; ONLAD and SAFELOC stay stable, SAFELOC lowest");
}
