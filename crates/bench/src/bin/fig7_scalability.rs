//! Fig. 7 — scalability with increasing (total, poisoned) clients.
//!
//! The paper grows the fleet from 6 to 24 clients with poisoned clients
//! rising from 1 to 12: FEDHIL's mean error climbs steadily, while ONLAD
//! and SAFELOC stay stable, SAFELOC lowest.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig7_scalability [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_bench::{
    AttackSpec, FleetSpec, FrameworkSpec, HarnessConfig, Scale, ScenarioSpec, SuiteRunner,
};
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let grid: Vec<(usize, usize)> = match cfg.scale {
        Scale::Quick => vec![(6, 1), (12, 4), (24, 12)],
        _ => vec![
            (6, 1),
            (9, 2),
            (12, 4),
            (15, 6),
            (18, 8),
            (21, 10),
            (24, 12),
        ],
    };
    // Half the attackers flip labels, half run FGSM backdoors; errors pool
    // over the two attacks per (fleet, framework) cell. Colluders share one
    // poison stream so their updates push coherently.
    let mut spec = ScenarioSpec::new(
        "fig7_scalability",
        vec![
            FrameworkSpec::Safeloc,
            FrameworkSpec::Onlad,
            FrameworkSpec::FedHil,
        ],
        vec![
            AttackSpec::of(Attack::label_flip(0.6)),
            AttackSpec::of(Attack::fgsm(0.4)),
        ],
    );
    spec.description = "mean error vs (total, poisoned) clients".into();
    spec.buildings = vec![5]; // smallest building keeps the 24-client runs tractable
    spec.fleets = grid
        .iter()
        .map(|&(total, poisoned)| FleetSpec::grown(total, poisoned))
        .collect();
    spec.rounds = (cfg.rounds() / 2).max(2);
    spec.coherent = true;

    let mut runner = SuiteRunner::new(cfg, spec.clone());
    println!("# Fig. 7 — mean error vs. (total, poisoned) clients\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {}, building: 5\n",
        cfg.scale,
        cfg.seed,
        runner.rounds()
    );

    let run = runner.run();
    let mut rows = Vec::new();
    for (gi, fleet) in spec.fleets.iter().enumerate() {
        let mut row = vec![fleet.label()];
        for (fi, _) in spec.frameworks.iter().enumerate() {
            let errors =
                run.pooled_errors(|c| c.cell.index.fleet == gi && c.cell.index.framework == fi);
            row.push(format!("{:.2}", ErrorStats::from_errors(&errors).mean));
        }
        rows.push(row);
    }

    println!(
        "{}",
        markdown_table(
            &[
                "(clients, poisoned)",
                "SAFELOC (m)",
                "ONLAD (m)",
                "FEDHIL (m)"
            ],
            &rows
        )
    );
    println!("\npaper: FEDHIL rises steadily with fleet size; ONLAD and SAFELOC stay stable, SAFELOC lowest");
}
