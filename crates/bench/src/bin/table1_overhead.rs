//! Table I — model parameters and inference latency per framework.
//!
//! The paper reports SAFELOC with the fewest parameters (41,094) and the
//! lowest inference latency (64 ms on a phone), 1.04–2.1× faster than the
//! rest. Our latency is host-CPU microseconds; the comparison is relative
//! (see `DESIGN.md` §5). A Criterion version lives in
//! `benches/inference_latency.rs`.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin table1_overhead [--seed N]
//! ```

use safeloc_bench::{build_dataset, build_frameworks, HarnessConfig};
use safeloc_dataset::Building;
use safeloc_metrics::markdown_table;
use safeloc_nn::Matrix;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    // Building 1: the paper's largest input (203 APs, 60 RPs).
    let data = build_dataset(Building::paper(1), cfg.seed);
    let mut frameworks = build_frameworks(data.building.num_aps(), data.building.num_rps(), &cfg);

    println!("# Table I — model inference latency and parameters\n");

    // Short pretraining so the models are in a realistic weight regime
    // (latency is architecture-bound, not value-bound, but keep it honest).
    for f in &mut frameworks {
        let mut quick = data.server_train.clone();
        let keep: Vec<usize> = (0..quick.len()).step_by(5).collect();
        quick = quick.subset(&keep);
        f.pretrain(&quick);
    }

    let sample = Matrix::from_rows(&[data.client_test[0].x.row(0).to_vec()]);
    let mut rows = Vec::new();
    let mut measured: Vec<(String, f64, usize)> = Vec::new();
    for f in &frameworks {
        // Warm up, then time single-fingerprint inference.
        for _ in 0..50 {
            let _ = f.predict(&sample);
        }
        let iters = 2000;
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            sink = sink.wrapping_add(f.predict(&sample)[0]);
        }
        let micros = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        std::hint::black_box(sink);
        measured.push((f.name().to_string(), micros, f.num_params()));
    }
    let safeloc_latency = measured[0].1;
    for (name, micros, params) in &measured {
        rows.push(vec![
            name.clone(),
            format!("{micros:.1} µs"),
            format!("{params}"),
            format!("{:.2}x", micros / safeloc_latency),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "framework",
                "inference latency",
                "total parameters",
                "latency vs SAFELOC"
            ],
            &rows
        )
    );
    println!(
        "\npaper (ms on device / params): SAFELOC 64/41094, ONLAD 87/130185, FEDHIL 84/97341,"
    );
    println!("FEDCC 67/42993, FEDLS 103/282676, FEDLOC 135/137801");
    println!("\nparameter ordering preserved: SAFELOC < FEDCC < FEDHIL < ONLAD < FEDLOC < FEDLS");
}
