//! Table I — model parameters and inference latency per framework.
//!
//! The paper reports SAFELOC with the fewest parameters (41,094) and the
//! lowest inference latency (64 ms on a phone), 1.04–2.1× faster than the
//! rest. Our latency is host-CPU microseconds; the comparison is relative
//! (see `DESIGN.md` §5). A Criterion version lives in
//! `benches/inference_latency.rs`.
//!
//! The framework axis comes from the scenario-suite engine (one cell per
//! framework); the latency measurement is this binary's formatter.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin table1_overhead [--seed N]
//! ```

use safeloc_bench::{AttackSpec, FrameworkSpec, HarnessConfig, ScenarioSpec, SuiteRunner};
use safeloc_metrics::markdown_table;
use safeloc_nn::Matrix;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    // Building 1: the paper's largest input (203 APs, 60 RPs).
    let mut spec = ScenarioSpec::new(
        "table1_overhead",
        vec![
            FrameworkSpec::Safeloc,
            FrameworkSpec::Onlad,
            FrameworkSpec::FedLs,
            FrameworkSpec::FedCc,
            FrameworkSpec::FedHil,
            FrameworkSpec::FedLoc,
        ],
        vec![AttackSpec::clean()],
    );
    spec.description = "model parameters and inference latency".into();
    spec.buildings = vec![1];

    let mut runner = SuiteRunner::new(cfg, spec);
    let cells = runner.cells();

    println!("# Table I — model inference latency and parameters\n");

    // Short pretraining so the models are in a realistic weight regime
    // (latency is architecture-bound, not value-bound, but keep it honest):
    // the engine builds each framework, this bin pretrains on a 1-in-5
    // subset of the survey split.
    // Everything the loop needs is small — extract it in one scoped borrow
    // instead of cloning the paper's largest dataset.
    let (quick, sample, aps, rps) = {
        let data = runner.dataset(&cells[0]);
        let keep: Vec<usize> = (0..data.server_train.len()).step_by(5).collect();
        (
            data.server_train.subset(&keep),
            Matrix::from_rows(&[data.client_test[0].x.row(0).to_vec()]),
            data.building.num_aps(),
            data.building.num_rps(),
        )
    };

    let mut measured: Vec<(String, f64, usize)> = Vec::new();
    for cell in &cells {
        let mut template = cell.framework.build(aps, rps, runner.cfg());
        template.pretrain(&quick);
        let f = template.instantiate(&cell.framework);
        // Warm up, then time single-fingerprint inference.
        for _ in 0..50 {
            let _ = f.predict(&sample);
        }
        let iters = 2000;
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            sink = sink.wrapping_add(f.predict(&sample)[0]);
        }
        let micros = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        std::hint::black_box(sink);
        measured.push((cell.framework.label(), micros, f.num_params()));
    }

    let safeloc_latency = measured[0].1;
    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|(name, micros, params)| {
            vec![
                name.clone(),
                format!("{micros:.1} µs"),
                format!("{params}"),
                format!("{:.2}x", micros / safeloc_latency),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "framework",
                "inference latency",
                "total parameters",
                "latency vs SAFELOC"
            ],
            &rows
        )
    );
    println!(
        "\npaper (ms on device / params): SAFELOC 64/41094, ONLAD 87/130185, FEDHIL 84/97341,"
    );
    println!("FEDCC 67/42993, FEDLS 103/282676, FEDLOC 135/137801");
    println!("\nparameter ordering preserved: SAFELOC < FEDCC < FEDHIL < ONLAD < FEDLOC < FEDLS");
}
