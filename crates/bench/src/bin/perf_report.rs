//! Emits the machine-readable performance baseline `BENCH_nn.json`.
//!
//! Measures the numeric hot paths against the preserved seed
//! implementations (`safeloc_bench::naive`):
//!
//! * blocked matmul kernels vs the seed scalar loops, on the paper-sized
//!   layer shapes (203→128→89→62→60 at batch 32),
//! * the allocation-free workspace training step vs the seed
//!   allocation-per-op step,
//! * one federated round, serial vs all available threads,
//! * every aggregation strategy on paper-sized updates (including the seed
//!   per-candidate Krum next to the shared-distance-matrix Krum).
//!
//! Usage: `perf_report [--quick] [--seed N] [--out PATH]`. `--quick` cuts
//! sample counts for CI smoke runs; the default writes `BENCH_nn.json` in
//! the working directory.

use safeloc::SaliencyAggregator;
use safeloc_bench::naive;
use safeloc_bench::perf::{
    time_median_ns, AggregationTiming, KernelTiming, PerfReport, RoundTiming, SessionTiming,
    StepTiming,
};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{
    Aggregator, Client, ClientUpdate, DefensePipeline, Framework, SequentialFlServer, ServerConfig,
};
use safeloc_nn::{Activation, Adam, HasParams, Matrix, Sequential, Workspace};

/// The paper's Building-1 global-model geometry.
const PAPER_DIMS: [usize; 5] = [203, 128, 89, 62, 60];
const BATCH: usize = 32;

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        seed: 42,
        out: "BENCH_nn.json".to_string(),
        check: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--seed" => {
                i += 1;
                args.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--out" => {
                i += 1;
                args.out = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| panic!("--out requires a path"));
            }
            other => {
                panic!("unknown argument {other:?} (expected --quick/--check/--seed N/--out PATH)")
            }
        }
        i += 1;
    }
    args
}

fn fill_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 131 + c * 31) as u64 ^ salt) % 1000) as f32 / 500.0 - 1.0
    })
}

fn bench_kernels(samples: usize, reps: usize) -> Vec<KernelTiming> {
    let mut out = Vec::new();
    // Forward shapes of every paper layer at batch 32.
    for w in PAPER_DIMS.windows(2) {
        let (k, n) = (w[0], w[1]);
        let a = fill_matrix(BATCH, k, 1);
        let b = fill_matrix(k, n, 2);
        let mut buf = Matrix::zeros(BATCH, n);
        let naive_ns = time_median_ns(samples, || {
            for _ in 0..reps {
                std::hint::black_box(naive::matmul(&a, &b));
            }
        }) / reps as f64;
        let blocked_ns = time_median_ns(samples, || {
            for _ in 0..reps {
                a.matmul_into(&b, &mut buf);
                std::hint::black_box(&buf);
            }
        }) / reps as f64;
        out.push(KernelTiming {
            kernel: "matmul".into(),
            shape: format!("{BATCH}x{k} * {k}x{n}"),
            naive_ns,
            blocked_ns,
            speedup: naive_ns / blocked_ns.max(1.0),
        });
    }
    // Backward shapes: dX = grad · Wᵀ and dW = Xᵀ · grad for the widest layer.
    let (k, n) = (PAPER_DIMS[0], PAPER_DIMS[1]);
    let grad = fill_matrix(BATCH, n, 3);
    let w = fill_matrix(k, n, 4);
    let x = fill_matrix(BATCH, k, 5);
    let mut buf = Matrix::zeros(0, 0);
    let naive_ns = time_median_ns(samples, || {
        for _ in 0..reps {
            std::hint::black_box(naive::matmul_transposed(&grad, &w));
        }
    }) / reps as f64;
    let blocked_ns = time_median_ns(samples, || {
        for _ in 0..reps {
            grad.matmul_transposed_into(&w, &mut buf);
            std::hint::black_box(&buf);
        }
    }) / reps as f64;
    out.push(KernelTiming {
        kernel: "matmul_transposed".into(),
        shape: format!("{BATCH}x{n} * ({k}x{n})^T"),
        naive_ns,
        blocked_ns,
        speedup: naive_ns / blocked_ns.max(1.0),
    });
    let naive_ns = time_median_ns(samples, || {
        for _ in 0..reps {
            std::hint::black_box(naive::transposed_matmul(&x, &grad));
        }
    }) / reps as f64;
    let blocked_ns = time_median_ns(samples, || {
        for _ in 0..reps {
            x.transposed_matmul_into(&grad, &mut buf);
            std::hint::black_box(&buf);
        }
    }) / reps as f64;
    out.push(KernelTiming {
        kernel: "transposed_matmul".into(),
        shape: format!("({BATCH}x{k})^T * {BATCH}x{n}"),
        naive_ns,
        blocked_ns,
        speedup: naive_ns / blocked_ns.max(1.0),
    });
    out
}

fn bench_training_step(samples: usize, seed: u64) -> StepTiming {
    let x = fill_matrix(BATCH, PAPER_DIMS[0], seed);
    let labels: Vec<usize> = (0..BATCH).map(|i| i % PAPER_DIMS[4]).collect();

    let mut naive_model = Sequential::mlp(&PAPER_DIMS, Activation::Relu, seed);
    let mut naive_opt = Adam::new(1e-3);
    let naive_ns = time_median_ns(samples, || {
        std::hint::black_box(naive::train_step(
            &mut naive_model,
            &x,
            &labels,
            &mut naive_opt,
        ));
    });

    let mut model = Sequential::mlp(&PAPER_DIMS, Activation::Relu, seed);
    let mut opt = Adam::new(1e-3);
    let mut ws = Workspace::new();
    let workspace_ns = time_median_ns(samples, || {
        std::hint::black_box(model.train_batch_with(&x, &labels, &mut opt, &mut ws));
    });

    StepTiming {
        dims: PAPER_DIMS.to_vec(),
        batch: BATCH,
        naive_ns,
        workspace_ns,
        speedup: naive_ns / workspace_ns.max(1.0),
    }
}

fn bench_round(quick: bool, seed: u64) -> (RoundTiming, Vec<SessionTiming>) {
    // Six-phone fleet on paper Building 1 with the full paper-sized global
    // model (203→128→89→62→60); `--quick` only reduces sample counts so
    // round timings stay representative.
    let data = BuildingDataset::generate(Building::paper(1), &DatasetConfig::paper(), seed);
    // Short pretraining (setup cost only), the paper's client protocol for
    // the timed rounds (5 epochs at batch 16).
    let cfg = ServerConfig {
        local: safeloc_fl::LocalTrainConfig::paper(),
        ..ServerConfig::tiny()
    };
    let mut server = SequentialFlServer::new(
        &[
            data.building.num_aps(),
            128,
            89,
            62,
            data.building.num_rps(),
        ],
        Box::new(DefensePipeline::fedavg()),
        cfg,
    );
    server.pretrain(&data.server_train);

    let samples = if quick { 3 } else { 5 };
    let local = safeloc_fl::LocalTrainConfig::paper();
    let seed_ns = time_median_ns(samples, || {
        let mut gm = server.global_model().clone();
        let mut clients = Client::from_dataset(&data, seed);
        naive::seed_round(&mut gm, &mut clients, &local);
    });
    let run_round = || {
        let mut s = server.clone();
        let mut clients = Client::from_dataset(&data, seed);
        let plan = safeloc_fl::RoundPlan::full(clients.len());
        s.run_round(&mut clients, &plan);
    };
    let serial_ns = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(|| time_median_ns(samples, run_round));
    let threads = rayon::current_num_threads();
    let parallel_ns = time_median_ns(samples, run_round);

    let round = RoundTiming {
        clients: data.num_clients(),
        seed_ms: seed_ns / 1e6,
        serial_ms: serial_ns / 1e6,
        parallel_ms: parallel_ns / 1e6,
        threads,
        speedup_vs_seed: seed_ns / parallel_ns.max(1.0),
        thread_speedup: serial_ns / parallel_ns.max(1.0),
    };

    // Session-level trajectory entry: the train/aggregate wall-time split
    // every `RoundReport` records, pooled over a short session on the same
    // pretrained server — this is the telemetry any deployment gets for
    // free, folded into BENCH_nn.json so both phases are tracked.
    let rounds = if quick { 2 } else { 4 };
    let run_session = |framework: Box<dyn Framework>, label: &str| {
        let mut session = safeloc_fl::FlSession::builder(framework)
            .clients(Client::from_dataset(&data, seed))
            .build();
        session.run(rounds);
        let reports = session.reports();
        let mean = |f: fn(&safeloc_fl::RoundReport) -> f64| {
            reports.iter().map(f).sum::<f64>() / reports.len().max(1) as f64
        };
        SessionTiming {
            framework: label.to_string(),
            rounds,
            clients: data.num_clients(),
            mean_train_ms: mean(|r| r.train_ms),
            mean_aggregate_ms: mean(|r| r.aggregate_ms),
            stage_ms: safeloc_bench::pool_stage_means(reports),
        }
    };
    let fedavg_session = run_session(Box::new(server.clone()), "SequentialFL(FedAvg)");
    // A composed pipeline on the same pretrained server: the per-stage
    // split (norm-clip screen vs Krum selection) lands in BENCH_nn.json so
    // layered-defense overhead is tracked alongside the plain rule.
    let mut composed_server = server.clone();
    composed_server.set_aggregator(Box::new(safeloc_fl::DefensePipeline::new(
        "norm-clip+krum",
        vec![Box::new(safeloc_fl::defense::NormClip::new(3.0))],
        Box::new(safeloc_fl::Krum::new(1)),
    )));
    let composed_session = run_session(Box::new(composed_server), "SequentialFL(norm-clip+krum)");
    let session_timings = vec![fedavg_session, composed_session];

    (round, session_timings)
}

fn paper_sized_updates(
    n_clients: usize,
    seed: u64,
) -> (safeloc_nn::NamedParams, Vec<ClientUpdate>) {
    let gm = Sequential::mlp(&PAPER_DIMS, Activation::Relu, seed);
    let gm_params = gm.snapshot();
    let updates: Vec<ClientUpdate> = (0..n_clients)
        .map(|i| {
            let mut p = gm_params.clone();
            // Small deterministic per-client perturbation.
            let delta = gm_params.scale(1e-3 * (i as f32 + 1.0));
            p.axpy(1.0, &delta);
            ClientUpdate::new(i, p, 60)
        })
        .collect();
    (gm_params, updates)
}

fn bench_aggregation(samples: usize, seed: u64) -> Vec<AggregationTiming> {
    let (gm, updates) = paper_sized_updates(6, seed);
    let mut out = Vec::new();
    let mut timed = |name: &str, mut agg: Box<dyn Aggregator>| {
        let ns = time_median_ns(samples, || {
            std::hint::black_box(agg.aggregate(&gm, &updates));
        });
        out.push(AggregationTiming {
            strategy: name.to_string(),
            micros: ns / 1e3,
        });
    };
    timed("FedAvg", Box::new(DefensePipeline::fedavg()));
    timed("Krum(shared-matrix)", Box::new(DefensePipeline::krum(1)));
    timed("Cluster", Box::new(DefensePipeline::cluster(0.15)));
    timed("LatentFilter", Box::new(DefensePipeline::latent(seed)));
    timed(
        "Saliency",
        Box::new(SaliencyAggregator::default().into_pipeline()),
    );
    // Seed Krum baseline: per-candidate distance recomputation.
    let ns = time_median_ns(samples, || {
        std::hint::black_box(naive::krum_select(&updates, 1));
    });
    out.push(AggregationTiming {
        strategy: "Krum(seed-per-candidate)".to_string(),
        micros: ns / 1e3,
    });
    out
}

fn main() {
    let args = parse_args();
    let (samples, reps) = if args.quick { (5, 3) } else { (15, 10) };

    eprintln!("measuring kernels...");
    let matmul = bench_kernels(samples, reps);
    eprintln!("measuring training step...");
    let training_step = bench_training_step(if args.quick { 5 } else { 11 }, args.seed);
    eprintln!("measuring federated round...");
    let (round, session) = bench_round(args.quick, args.seed);
    eprintln!("measuring aggregation strategies...");
    let aggregation = bench_aggregation(if args.quick { 3 } else { 7 }, args.seed);

    // The serving, transport, fleet and telemetry sections are owned by
    // `serve_bench` / `fleet_scale`; preserve whatever an earlier run
    // wrote into the out file so regenerating the training-side numbers
    // does not silently drop those trajectories.
    let (serving, transport, fleet, telemetry) = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|json| serde_json::from_str::<PerfReport>(&json).ok())
        .map(|old| (old.serving, old.transport, old.fleet, old.telemetry))
        .unwrap_or_default();

    let report = PerfReport {
        schema: "safeloc-bench/perf-report/v3".to_string(),
        quick: args.quick,
        threads: rayon::current_num_threads(),
        matmul,
        training_step,
        round,
        aggregation,
        session,
        serving,
        transport,
        fleet,
        telemetry,
    };

    println!("{}", report.summary());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json).expect("write BENCH json");
    eprintln!("wrote {}", args.out);

    // CI smoke gate: a zero/NaN/Inf throughput number means the
    // measurement broke, not that the code got infinitely fast.
    if args.check {
        match report.validate() {
            Ok(()) => eprintln!("perf report check: all throughput numbers finite and positive"),
            Err(problems) => {
                eprintln!("perf report check FAILED: {problems}");
                std::process::exit(1);
            }
        }
    }
}
