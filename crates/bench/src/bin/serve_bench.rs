//! Closed-loop load harness for the online serving subsystem.
//!
//! Drives a synthetic client population against a live `safeloc-serve`
//! service in two phases:
//!
//! 1. **Steady state** — the registry holds a pretrained global model per
//!    building plus per-device HetNN variants (each fine-tuned briefly on
//!    that device's local split); a closed-loop population hammers the
//!    micro-batch scheduler and throughput + p50/p95/p99 latency are
//!    recorded.
//! 2. **Hot swap** — an `FlSession` runs concurrently on a background
//!    thread with a `RegistryPublisher` hook, hot-swapping the default
//!    model every round while the same population keeps querying; the
//!    spread of model versions observed across responses demonstrates the
//!    mid-traffic swap.
//!
//! With `--transport tcp` a third phase serves the same pool through the
//! `safeloc-wire` TCP front and records **honest end-to-end latency** —
//! injected link latency plus framing, the socket round trip and
//! micro-batched inference — under several fault-injection profiles
//! (raw loopback, LAN-like, WAN-like).
//!
//! Results are written to a standalone `SERVE_*.json` report and, when a
//! `BENCH_nn.json`-style perf report exists, merged into its `serving`
//! (and, with `--transport tcp`, `transport`) sections — validated with
//! the same rules as `perf_report --check`.
//!
//! Usage: `serve_bench [--quick|--full] [--seed N] [--transport tcp]
//! [--out PATH] [--bench PATH]`.

use safeloc_bench::perf::{PerfReport, ServingTiming, TelemetryOverhead, TransportTiming};
use safeloc_bench::{HarnessConfig, Scale};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceCatalog};
use safeloc_fl::{Client, DefensePipeline, FlSession, Framework, SequentialFlServer, ServerConfig};
use safeloc_nn::{Adam, TrainConfig};
use safeloc_serve::{
    request_pool, run_load, LoadPlan, ModelKey, ModelRegistry, RegistryPublisher, ServeConfig,
    Service, ServingStats,
};
use safeloc_wire::{run_tcp_load, FaultProfile, WireServer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    cfg: HarnessConfig,
    out: String,
    bench: String,
    bench_explicit: bool,
    transport_tcp: bool,
}

fn parse_args() -> Args {
    let mut cfg = HarnessConfig {
        scale: Scale::Default,
        seed: 42,
    };
    let mut out = "SERVE_nn.json".to_string();
    let mut bench = "BENCH_nn.json".to_string();
    let mut bench_explicit = false;
    let mut transport_tcp = false;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => cfg.scale = Scale::Quick,
            "--full" => cfg.scale = Scale::Full,
            "--seed" => {
                i += 1;
                cfg.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--out" => {
                i += 1;
                out = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| panic!("--out requires a path"));
            }
            "--bench" => {
                i += 1;
                bench = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| panic!("--bench requires a path"));
                bench_explicit = true;
            }
            "--transport" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("tcp") => transport_tcp = true,
                    Some("inproc") => transport_tcp = false,
                    other => panic!("--transport expects tcp or inproc, got {other:?}"),
                }
            }
            other => panic!(
                "unknown argument {other:?} (expected --quick/--full/--seed N/--transport \
                 tcp|inproc/--out PATH/--bench PATH)"
            ),
        }
        i += 1;
    }
    Args {
        cfg,
        out,
        bench,
        bench_explicit,
        transport_tcp,
    }
}

/// The standalone serving report (`SERVE_nn.json` / `SERVE_ci.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServingReport {
    schema: String,
    quick: bool,
    seed: u64,
    scenarios: Vec<ServingTiming>,
    /// TCP-transport phase results; empty unless `--transport tcp` ran.
    #[serde(default = "Vec::new")]
    transport: Vec<TransportTiming>,
    /// Telemetry-recording overhead on the steady phase (phase 1b).
    #[serde(default = "no_overhead")]
    telemetry_overhead: Option<TelemetryOverhead>,
}

fn no_overhead() -> Option<TelemetryOverhead> {
    None
}

fn timing(scenario: &str, stats: &ServingStats) -> ServingTiming {
    ServingTiming {
        scenario: scenario.to_string(),
        population: stats.population,
        requests: stats.requests,
        failures: stats.failures,
        throughput_rps: stats.throughput_rps,
        p50_ms: stats.p50_ms,
        p95_ms: stats.p95_ms,
        p99_ms: stats.p99_ms,
        min_version: stats.min_version,
        max_version: stats.max_version,
    }
}

fn main() {
    let args = parse_args();
    let quick = args.cfg.scale == Scale::Quick;
    // Building 5 is the smallest paper building (90 RPs, 78 APs): load
    // numbers stay representative while pretraining stays cheap.
    let (population, requests_per_client, fl_rounds) = match args.cfg.scale {
        Scale::Quick => (4, 30, 3),
        Scale::Default => (8, 100, 4),
        Scale::Full => (16, 200, 6),
    };

    eprintln!("generating dataset (building 5, paper fleet)...");
    let data =
        BuildingDataset::generate(Building::paper(5), &DatasetConfig::paper(), args.cfg.seed);

    eprintln!("pretraining the global model...");
    let server_cfg = ServerConfig {
        local: safeloc_fl::LocalTrainConfig::paper(),
        ..args.cfg.server_config()
    };
    let mut server = SequentialFlServer::new(
        &[
            data.building.num_aps(),
            128,
            89,
            62,
            data.building.num_rps(),
        ],
        Box::new(DefensePipeline::fedavg()),
        server_cfg,
    );
    server.pretrain(&data.server_train);

    // Registry: building default + one HetNN variant per paper device,
    // each fine-tuned briefly on that device's local split.
    let registry = Arc::new(ModelRegistry::new());
    let default_key = ModelKey::default_for(data.building.id);
    registry.publish(
        default_key.clone(),
        server.global_model().clone(),
        Some(data.building.clone()),
    );
    eprintln!("fine-tuning {} device variants...", data.devices.len());
    for (device, local) in data.devices.iter().zip(&data.client_local) {
        let mut variant = server.global_model().clone();
        let mut opt = Adam::new(1e-4);
        variant.fit_classifier(
            &local.x,
            &local.labels,
            &mut opt,
            &TrainConfig::new(1, 16, args.cfg.seed),
        );
        registry.publish(
            ModelKey::new(data.building.id, &device.name),
            variant,
            Some(data.building.clone()),
        );
    }

    let serve_cfg = ServeConfig {
        max_batch: 32,
        batch_deadline: Duration::from_millis(1),
        workers: 2,
    };
    let service = Arc::new(Service::start(
        Arc::clone(&registry),
        DeviceCatalog::new(data.devices.clone()),
        serve_cfg,
    ));
    let mut pool = request_pool(&data);
    // A quarter of the arrival mix comes from phones the catalog has never
    // seen: they route to the building-default model — the entry the FL
    // session hot-swaps — so phase 2's traffic demonstrably rides through
    // the swaps (known devices keep their pinned v1 variants).
    let unknown: Vec<_> = pool
        .iter()
        .step_by(3)
        .map(|r| {
            let mut r = r.clone();
            r.device = "Unregistered Phone".to_string();
            r
        })
        .collect();
    pool.extend(unknown);
    eprintln!(
        "request pool: {} fingerprints across {} devices (+ unregistered-device traffic)",
        pool.len(),
        data.devices.len()
    );

    // Phase 1: steady state.
    eprintln!("phase 1: steady-state load (population {population})...");
    let steady = run_load(
        &service,
        &pool,
        &LoadPlan::new(population, requests_per_client, args.cfg.seed),
    )
    .stats();
    eprintln!(
        "  {:.0} req/s, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        steady.throughput_rps, steady.p50_ms, steady.p95_ms, steady.p99_ms
    );

    // Phase 1b: telemetry-recording overhead on the very same steady
    // workload. The process-global kill switch flips between reps and the
    // modes are interleaved (on, off, on, off, ...) so machine drift hits
    // both equally; best-of-N per mode discards scheduler noise. The
    // perf-report validation gate holds the result at ≤ 2%.
    eprintln!("phase 1b: telemetry overhead A/B (recording on vs off, best of 3)...");
    let ab_plan = LoadPlan::new(population, requests_per_client, args.cfg.seed ^ 0xAB);
    let (mut best_on, mut best_off) = (f64::MIN, f64::MIN);
    for _ in 0..3 {
        for on in [true, false] {
            safeloc_telemetry::set_enabled(on);
            let rps = run_load(&service, &pool, &ab_plan).stats().throughput_rps;
            let best = if on { &mut best_on } else { &mut best_off };
            *best = best.max(rps);
        }
    }
    safeloc_telemetry::set_enabled(true);
    let telemetry_overhead = TelemetryOverhead {
        metric: "throughput_rps".to_string(),
        on_value: best_on,
        off_value: best_off,
        unit: "req/s".to_string(),
        // Noise can make the instrumented run faster; that is zero
        // overhead, not negative.
        overhead_pct: ((best_off - best_on) / best_off.max(1.0) * 100.0).max(0.0),
    };
    eprintln!(
        "  on {:.0} req/s / off {:.0} req/s -> {:.2}% overhead",
        telemetry_overhead.on_value, telemetry_overhead.off_value, telemetry_overhead.overhead_pct
    );

    // Phase 2: the same load while an FL session hot-swaps the default
    // model every round through the publisher hook. The load loops until
    // the session has published its last round, so the traffic always
    // rides through every swap regardless of relative speeds.
    eprintln!("phase 2: load under mid-traffic hot swaps ({fl_rounds} FL rounds)...");
    let publisher = RegistryPublisher::new(Arc::clone(&registry), default_key.clone());
    let mut session = FlSession::builder(Box::new(server))
        .clients(Client::from_dataset(&data, args.cfg.seed))
        .publisher(Box::new(publisher))
        .build();
    let training_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let swap = std::thread::scope(|scope| {
        let done = Arc::clone(&training_done);
        let trainer = scope.spawn(move || {
            session.run(fl_rounds);
            // relaxed: a completion flag checked by a polling loop; the
            // scope join below is the real synchronization point.
            done.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let started = std::time::Instant::now();
        let mut outcomes = Vec::new();
        let mut wave = 0u64;
        loop {
            // relaxed: see the completion-flag store above.
            let finishing = training_done.load(std::sync::atomic::Ordering::Relaxed);
            outcomes.push(run_load(
                &service,
                &pool,
                &LoadPlan::new(
                    population,
                    requests_per_client,
                    args.cfg.seed ^ 0x5E ^ (wave << 8),
                ),
            ));
            wave += 1;
            if finishing {
                break; // one full wave ran after the last publish
            }
        }
        trainer.join().expect("FL session thread panicked");
        // Pool the waves into one outcome over the phase's wall clock.
        let mut combined = outcomes.remove(0);
        combined.wall_ns = started.elapsed().as_nanos() as u64;
        for outcome in outcomes {
            combined.latencies_ns.extend(outcome.latencies_ns);
            combined.responses.extend(outcome.responses);
            combined.failures += outcome.failures;
        }
        combined.stats()
    });
    let final_version = registry
        .get(&default_key)
        .expect("default model published")
        .version;
    eprintln!(
        "  {:.0} req/s, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms; default-model versions \
         observed {}..{} (registry now at v{final_version})",
        swap.throughput_rps,
        swap.p50_ms,
        swap.p95_ms,
        swap.p99_ms,
        swap.min_version,
        swap.max_version
    );
    // Phase 3 (opt-in): the same pool through the wire — honest
    // end-to-end latency under injected link-latency profiles.
    let mut transport = Vec::new();
    if args.transport_tcp {
        let profiles = [
            ("loopback", FaultProfile::ideal()),
            ("lan", FaultProfile::latency(5.0, 1.0, args.cfg.seed)),
            ("wan", FaultProfile::latency(40.0, 8.0, args.cfg.seed)),
        ];
        let wire = WireServer::serve(Arc::clone(&service)).expect("bind wire front");
        eprintln!("phase 3: TCP transport at {} ...", wire.addr());
        for (profile, fault) in &profiles {
            let stats = run_tcp_load(
                wire.addr(),
                &pool,
                &LoadPlan::new(population, requests_per_client, args.cfg.seed ^ 0x7C),
                fault,
            )
            .unwrap_or_else(|e| panic!("TCP load under profile {profile} failed: {e}"))
            .stats();
            eprintln!(
                "  {profile:<10} link {:>5.1}±{:<4.1} ms: {:.0} req/s, p50 {:.2} ms, \
                 p95 {:.2} ms, p99 {:.2} ms",
                fault.latency_ms_mean,
                fault.latency_ms_std,
                stats.throughput_rps,
                stats.p50_ms,
                stats.p95_ms,
                stats.p99_ms
            );
            transport.push(TransportTiming {
                profile: profile.to_string(),
                injected_latency_ms: fault.latency_ms_mean,
                injected_latency_std_ms: fault.latency_ms_std,
                population: stats.population,
                requests: stats.requests,
                failures: stats.failures,
                throughput_rps: stats.throughput_rps,
                p50_ms: stats.p50_ms,
                p95_ms: stats.p95_ms,
                p99_ms: stats.p99_ms,
            });
        }
    }
    service.shutdown();

    let label = |phase: &str| format!("{phase} p={population} b={}", serve_cfg.max_batch);
    let scenarios = vec![
        timing(&label("steady"), &steady),
        timing(&label("hot-swap"), &swap),
    ];

    let report = ServingReport {
        schema: "safeloc-bench/serving-report/v1".to_string(),
        quick,
        seed: args.cfg.seed,
        scenarios: scenarios.clone(),
        transport: transport.clone(),
        telemetry_overhead: Some(telemetry_overhead.clone()),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    // Gate the numbers on the same validation `perf_report --check`
    // applies, then fold them into the perf trajectory. Quick smoke runs
    // only validate: they must not overwrite the checked-in default-scale
    // serving trajectory unless `--bench` was passed explicitly.
    let bench_json = match std::fs::read_to_string(&args.bench) {
        Ok(json) => json,
        Err(_) => {
            eprintln!(
                "no {} to merge into (run perf_report first to track serving in the \
                 perf trajectory)",
                args.bench
            );
            return;
        }
    };
    let mut merge_target: PerfReport = serde_json::from_str(&bench_json)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e:?}", args.bench));
    merge_target.serving = scenarios;
    if args.transport_tcp {
        merge_target.transport = transport;
    }
    // The telemetry section is shared with `fleet_scale`: fill only the
    // serving slot, keeping whatever streaming-round entry already exists.
    let mut telemetry_section = merge_target.telemetry.take().unwrap_or_default();
    telemetry_section.serving = Some(telemetry_overhead);
    merge_target.telemetry = Some(telemetry_section);
    if let Err(problems) = merge_target.validate() {
        eprintln!("serving section FAILED validation: {problems}");
        std::process::exit(1);
    }
    if quick && !args.bench_explicit {
        eprintln!(
            "quick run: serving numbers validated but not merged into {} \
             (pass --bench to force)",
            args.bench
        );
        return;
    }
    let merged = serde_json::to_string_pretty(&merge_target).expect("report serializes");
    std::fs::write(&args.bench, merged)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.bench));
    eprintln!("merged serving section into {}", args.bench);
}
