//! Fig. 6 — SAFELOC against the state of the art under every attack.
//!
//! The paper reports best/mean/worst localization error per framework per
//! poisoning scenario, pooled over all buildings: SAFELOC achieves 1.2–2.11×
//! lower mean errors for label flipping and 1.33–5.9× for backdoor attacks.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig6_comparison [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::{Attack, AttackKind, ALL_ATTACK_KINDS};
use safeloc_bench::{build_dataset, build_frameworks, run_scenario, HarnessConfig, Scenario};
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let rounds = cfg.rounds();
    // Mid-range intensities for the comparison (the paper does not state
    // Fig. 6's ε; Fig. 5's stable region ends around 0.2 for flips).
    let eps_backdoor = 0.4;
    let eps_flip = 0.6;

    println!("# Fig. 6 — comparison with the state of the art\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {rounds}, eps: backdoor {eps_backdoor}, flip {eps_flip}\n",
        cfg.scale, cfg.seed
    );

    // errors[framework][scenario] pooled over buildings.
    let framework_names = ["SAFELOC", "ONLAD", "FEDLS", "FEDCC", "FEDHIL", "FEDLOC"];
    let scenario_names: Vec<String> = std::iter::once("Clean".to_string())
        .chain(ALL_ATTACK_KINDS.iter().map(|k| k.label().to_string()))
        .collect();
    let mut errors: Vec<Vec<Vec<f32>>> =
        vec![vec![Vec::new(); scenario_names.len()]; framework_names.len()];

    for building in cfg.buildings() {
        let data = build_dataset(building, cfg.seed);
        let mut frameworks =
            build_frameworks(data.building.num_aps(), data.building.num_rps(), &cfg);
        for (fi, f) in frameworks.iter_mut().enumerate() {
            f.pretrain(&data.server_train);
            // Clean scenario first.
            let clean = Scenario::paper(None, rounds, cfg.seed);
            errors[fi][0].extend(run_scenario(f.as_ref(), &data, &clean));
            for (ai, kind) in ALL_ATTACK_KINDS.iter().enumerate() {
                let eps = if *kind == AttackKind::LabelFlip {
                    eps_flip
                } else {
                    eps_backdoor
                };
                let scenario = Scenario::paper(
                    Some(Attack::of_kind(*kind, eps)),
                    rounds,
                    cfg.seed ^ (ai as u64 + 1),
                );
                errors[fi][ai + 1].extend(run_scenario(f.as_ref(), &data, &scenario));
            }
            eprintln!("  building {} {} done", data.building.id, f.name());
        }
    }

    // One block per scenario: best / mean / worst per framework.
    for (si, sname) in scenario_names.iter().enumerate() {
        println!("## {sname}\n");
        let mut rows = Vec::new();
        let safeloc_mean = ErrorStats::from_errors(&errors[0][si]).mean.max(1e-6);
        for (fi, fname) in framework_names.iter().enumerate() {
            let s = ErrorStats::from_errors(&errors[fi][si]);
            rows.push(vec![
                fname.to_string(),
                format!("{:.2}", s.best),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.worst),
                format!("{:.2}x", s.mean / safeloc_mean),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "framework",
                    "best (m)",
                    "mean (m)",
                    "worst (m)",
                    "mean vs SAFELOC"
                ],
                &rows
            )
        );
    }
    println!("paper: SAFELOC 1.2-2.11x lower mean (label flip) and 1.33-5.9x lower mean (backdoor) than the others");
}
