//! Fig. 6 — SAFELOC against the state of the art under every attack.
//!
//! The paper reports best/mean/worst localization error per framework per
//! poisoning scenario, pooled over all buildings: SAFELOC achieves 1.2–2.11×
//! lower mean errors for label flipping and 1.33–5.9× for backdoor attacks.
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig6_comparison [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::{Attack, AttackKind, ALL_ATTACK_KINDS};
use safeloc_bench::{AttackSpec, FrameworkSpec, HarnessConfig, ScenarioSpec, SuiteRunner};
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    // Mid-range intensities for the comparison (the paper does not state
    // Fig. 6's ε; Fig. 5's stable region ends around 0.2 for flips).
    let eps_backdoor = 0.4;
    let eps_flip = 0.6;

    let mut attacks = vec![AttackSpec::clean()];
    for kind in ALL_ATTACK_KINDS {
        let eps = if kind == AttackKind::LabelFlip {
            eps_flip
        } else {
            eps_backdoor
        };
        attacks.push(AttackSpec::named(kind.label(), Attack::of_kind(kind, eps)));
    }
    let mut spec = ScenarioSpec::new(
        "fig6_comparison",
        vec![
            FrameworkSpec::Safeloc,
            FrameworkSpec::Onlad,
            FrameworkSpec::FedLs,
            FrameworkSpec::FedCc,
            FrameworkSpec::FedHil,
            FrameworkSpec::FedLoc,
        ],
        attacks,
    );
    spec.description = "SAFELOC vs the state of the art under every attack".into();

    let mut runner = SuiteRunner::new(cfg, spec.clone());
    println!("# Fig. 6 — comparison with the state of the art\n");
    println!(
        "scale: {:?}, seed: {}, rounds: {}, eps: backdoor {eps_backdoor}, flip {eps_flip}\n",
        cfg.scale,
        cfg.seed,
        runner.rounds()
    );

    // One block per scenario: best / mean / worst per framework, errors
    // pooled over the scale's buildings.
    let run = runner.run();
    for (ai, attack) in spec.attacks.iter().enumerate() {
        println!("## {}\n", attack.label());
        let safeloc_mean = ErrorStats::from_errors(
            &run.pooled_errors(|c| c.cell.index.framework == 0 && c.cell.index.attack == ai),
        )
        .mean
        .max(1e-6);
        let mut rows = Vec::new();
        for (fi, framework) in spec.frameworks.iter().enumerate() {
            let errors =
                run.pooled_errors(|c| c.cell.index.framework == fi && c.cell.index.attack == ai);
            let s = ErrorStats::from_errors(&errors);
            rows.push(vec![
                framework.label(),
                format!("{:.2}", s.best),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.worst),
                format!("{:.2}x", s.mean / safeloc_mean),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "framework",
                    "best (m)",
                    "mean (m)",
                    "worst (m)",
                    "mean vs SAFELOC"
                ],
                &rows
            )
        );
    }
    println!("paper: SAFELOC 1.2-2.11x lower mean (label flip) and 1.33-5.9x lower mean (backdoor) than the others");
}
