//! Fig. 7 successor: city-scale streaming rounds over synthetic fleets.
//!
//! Reads the `fleets`, `participation` and `deltas` axes of a suite
//! scenario spec (default `scenarios/fleet_scale.json`) and, for each
//! `(fleet size, delta repr)` cell, runs one [`StreamingFlSession`] round
//! over a [`SyntheticFleet`]: the provider *generates* each sampled
//! client on `materialize` and drops stateless ones on `reclaim`, so peak
//! memory is bounded by the cohort — never the fleet. Per cell the sweep
//! records wall time, peak RSS (Linux `VmHWM`, reset per cell via
//! `clear_refs` where the kernel allows it), bytes-on-wire for the cohort
//! under the cell's delta representation, and the dense baseline both for
//! wire bytes and for the resident size a materialized `Vec<Client>`
//! fleet would have held.
//!
//! The acceptance gate of the streaming claim runs here: for fleets of
//! ≥ 10 000 clients with a measured per-cell peak RSS, materializing the
//! fleet must cost at least 10× the streaming round's peak — otherwise
//! the binary exits nonzero.
//!
//! Results are written to a standalone `FLEET_*.json` report and, when a
//! `BENCH_nn.json`-style perf report exists, merged into its `fleet`
//! section — validated with the same rules as `perf_report --check`.
//!
//! Usage: `fleet_scale [--quick|--full] [--seed N] [--spec PATH]
//! [--out PATH] [--bench PATH]`.

use safeloc_bench::perf::{FleetTiming, PerfReport, TelemetryOverhead};
use safeloc_bench::{
    peak_rss_bytes, record_peak_rss_gauge, reset_peak_rss, Scale, ScenarioSpec, SyntheticFleet,
};
use safeloc_fl::{
    CohortSampler, DefensePipeline, DeltaRepr, DeltaSpec, SequentialFlServer, ServerConfig,
    StreamingFlSession,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Synthetic client geometry: ~128-AP fingerprints into ~32 RP classes,
/// 128 scans per phone — the shape of one paper building, scaled to keep
/// a 100k-fleet cell tractable while each client still holds enough data
/// that materializing a 10k fleet would dominate a process RSS.
const INPUT_DIM: usize = 128;
const HIDDEN: usize = 64;
const N_CLASSES: usize = 32;
const SAMPLES_PER_CLIENT: usize = 128;

/// Fleets at or past this size must demonstrate the streaming-headroom
/// ratio (materialized ≥ 10× streaming peak RSS).
const RSS_GATE_MIN_FLEET: usize = 10_000;
const RSS_GATE_RATIO: f64 = 10.0;

struct Args {
    scale: Scale,
    seed: u64,
    spec: String,
    out: String,
    bench: String,
    bench_explicit: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Default,
        seed: 42,
        spec: "scenarios/fleet_scale.json".to_string(),
        out: "FLEET_nn.json".to_string(),
        bench: "BENCH_nn.json".to_string(),
        bench_explicit: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--seed" => {
                i += 1;
                args.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--spec" => {
                i += 1;
                args.spec = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| panic!("--spec requires a path"));
            }
            "--out" => {
                i += 1;
                args.out = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| panic!("--out requires a path"));
            }
            "--bench" => {
                i += 1;
                args.bench = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| panic!("--bench requires a path"));
                args.bench_explicit = true;
            }
            other => panic!(
                "unknown argument {other:?} (expected --quick/--full/--seed N/--spec PATH/\
                 --out PATH/--bench PATH)"
            ),
        }
        i += 1;
    }
    args
}

/// The standalone fleet report (`FLEET_nn.json` / `FLEET_ci.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FleetReport {
    schema: String,
    quick: bool,
    seed: u64,
    cells: Vec<FleetTiming>,
    /// Telemetry-recording overhead on one streaming round.
    #[serde(default = "no_overhead")]
    telemetry_overhead: Option<TelemetryOverhead>,
}

fn no_overhead() -> Option<TelemetryOverhead> {
    None
}

/// Number of scalar parameters of the swept model (`in*h + h + h*out + out`).
fn model_params() -> usize {
    let dims = [INPUT_DIM, HIDDEN, N_CLASSES];
    dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
}

/// Bytes one client's update puts on the wire under `delta`, probed by
/// compressing a synthetic nonzero delta of the model's length with a
/// throwaway compressor — the encoded size depends only on the spec and
/// the parameter count, not on the values.
fn per_update_wire_bytes(delta: DeltaSpec, num_params: usize) -> u64 {
    match delta.compressor() {
        None => DeltaRepr::Dense.wire_bytes(num_params) as u64,
        Some(mut probe) => {
            let synthetic: Vec<f32> = (0..num_params)
                .map(|i| ((i % 7) as f32 - 3.0) * 1e-3)
                .collect();
            let (repr, _) = probe.compress(&synthetic);
            repr.wire_bytes(num_params) as u64
        }
    }
}

fn main() {
    let args = parse_args();
    let quick = args.scale == Scale::Quick;

    let json = std::fs::read_to_string(&args.spec)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", args.spec));
    let spec: ScenarioSpec =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("cannot parse {}: {e:?}", args.spec));

    let participation = spec
        .participation
        .first()
        .cloned()
        .unwrap_or_else(|| panic!("{} declares no participation axis", args.spec));
    let mut sizes: Vec<usize> = spec
        .fleets
        .iter()
        .map(|f| if f.total == 0 { 6 } else { f.total })
        .collect();
    if sizes.is_empty() {
        panic!("{} declares no fleet axis", args.spec);
    }
    // Quick smoke runs (CI's fleet-smoke job) keep the 1k point — large
    // enough to prove streaming, small enough for a gate job.
    if quick {
        sizes.retain(|&n| n <= 1000);
        if sizes.is_empty() {
            sizes.push(1000);
        }
    }
    let deltas: &[DeltaSpec] = &spec.deltas;
    let rounds = spec.rounds.max(1);
    let num_params = model_params();
    let dense_update_bytes = DeltaRepr::Dense.wire_bytes(num_params) as u64;

    eprintln!(
        "fleet sweep `{}`: sizes {sizes:?}, deltas {:?}, {rounds} round(s), model {num_params} \
         params ({dense_update_bytes} B dense/update)",
        spec.name,
        deltas.iter().map(DeltaSpec::label).collect::<Vec<_>>()
    );

    let mut cells: Vec<FleetTiming> = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for &size in &sizes {
        let cohort = participation.cohort_size(size);
        for (di, &delta) in deltas.iter().enumerate() {
            let fleet_seed = args.seed ^ ((size as u64) << 8) ^ ((di as u64 + 1) << 4);
            let fleet = SyntheticFleet::new(
                size,
                INPUT_DIM,
                N_CLASSES,
                SAMPLES_PER_CLIENT,
                fleet_seed,
                delta,
            );
            let materialized_bytes = fleet.materialized_bytes();
            let server = SequentialFlServer::new(
                &[INPUT_DIM, HIDDEN, N_CLASSES],
                Box::new(DefensePipeline::fedavg()),
                ServerConfig::tiny(),
            );
            let mut session = StreamingFlSession::builder(Box::new(server), Box::new(fleet))
                .sampler(CohortSampler::uniform(cohort, fleet_seed ^ 0xC0_4082))
                .build();

            // Reset the RSS high-water mark so the cell's peak is its own,
            // not a previous (possibly larger) cell's. Where the kernel
            // refuses `clear_refs` the peak is still recorded, but the
            // headroom gate is skipped rather than judged against a
            // stale mark.
            let rss_reset = reset_peak_rss();
            let started = Instant::now();
            let mut trained = 0usize;
            for _ in 0..rounds {
                let report = session.next_round();
                trained += report
                    .clients
                    .iter()
                    .filter(|c| matches!(c.outcome, safeloc_fl::ClientOutcome::Trained { .. }))
                    .count();
            }
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let peak = peak_rss_bytes();

            let per_update = per_update_wire_bytes(delta, num_params);
            let cell = FleetTiming {
                clients: size,
                cohort,
                delta: delta.label(),
                wall_ms,
                peak_rss_bytes: peak,
                materialized_bytes,
                wire_bytes: per_update * trained as u64,
                dense_wire_bytes: dense_update_bytes * trained as u64,
            };
            let rss_text = match peak {
                Some(bytes) => format!("{:.1} MiB peak RSS", bytes as f64 / (1024.0 * 1024.0)),
                None => "peak RSS n/a".to_string(),
            };
            eprintln!(
                "  {size:>6} clients × {:<10} cohort {cohort:>3}: {wall_ms:>8.1} ms, {rss_text}, \
                 {:.2} MiB on wire ({:.1}% of dense), fleet would be {:.1} MiB materialized",
                cell.delta,
                cell.wire_bytes as f64 / (1024.0 * 1024.0),
                100.0 * cell.wire_bytes as f64 / cell.dense_wire_bytes.max(1) as f64,
                materialized_bytes as f64 / (1024.0 * 1024.0),
            );

            if size >= RSS_GATE_MIN_FLEET {
                match (rss_reset, peak) {
                    (true, Some(bytes)) => {
                        let ratio = materialized_bytes as f64 / bytes.max(1) as f64;
                        if ratio < RSS_GATE_RATIO {
                            gate_failures.push(format!(
                                "{size} clients / {}: streaming peak {bytes} B is only {ratio:.1}× \
                                 below the {materialized_bytes} B materialized fleet \
                                 (need ≥ {RSS_GATE_RATIO}×)",
                                cell.delta
                            ));
                        } else {
                            eprintln!(
                                "    streaming headroom {ratio:.0}× (gate ≥ {RSS_GATE_RATIO}×)"
                            );
                        }
                    }
                    _ => eprintln!(
                        "    streaming-headroom gate skipped (peak RSS {})",
                        if rss_reset {
                            "unavailable"
                        } else {
                            "not resettable here"
                        }
                    ),
                }
            }
            cells.push(cell);
        }
    }

    // Publish the sweep's memory high-water mark into the telemetry
    // registry so a `telemetry_dump` snapshot of this process carries the
    // same number the report records per cell.
    record_peak_rss_gauge();

    // Telemetry overhead A/B: one streaming round on the smallest cell
    // with recording on vs off, modes interleaved, best (minimum wall
    // time) of 3 per mode. A fresh fleet + session per timed round keeps
    // every measurement a first round — no warm-cohort advantage for
    // either mode. The perf-report validation gate holds this at ≤ 2%.
    let ab_size = *sizes.iter().min().expect("fleet axis is non-empty");
    let ab_delta = deltas[0];
    let ab_cohort = participation.cohort_size(ab_size);
    eprintln!(
        "telemetry overhead A/B: 1 round, {ab_size} clients, cohort {ab_cohort}, {} \
         (recording on vs off, best of 3)...",
        ab_delta.label()
    );
    let time_round = || -> f64 {
        let fleet = SyntheticFleet::new(
            ab_size,
            INPUT_DIM,
            N_CLASSES,
            SAMPLES_PER_CLIENT,
            args.seed ^ 0xAB,
            ab_delta,
        );
        let server = SequentialFlServer::new(
            &[INPUT_DIM, HIDDEN, N_CLASSES],
            Box::new(DefensePipeline::fedavg()),
            ServerConfig::tiny(),
        );
        let mut session = StreamingFlSession::builder(Box::new(server), Box::new(fleet))
            .sampler(CohortSampler::uniform(ab_cohort, args.seed ^ 0xC0_4082))
            .build();
        let started = Instant::now();
        session.next_round();
        started.elapsed().as_secs_f64() * 1e3
    };
    let (mut best_on, mut best_off) = (f64::MAX, f64::MAX);
    for _ in 0..3 {
        for on in [true, false] {
            safeloc_telemetry::set_enabled(on);
            let ms = time_round();
            let best = if on { &mut best_on } else { &mut best_off };
            *best = best.min(ms);
        }
    }
    safeloc_telemetry::set_enabled(true);
    let telemetry_overhead = TelemetryOverhead {
        metric: "round_wall_ms".to_string(),
        on_value: best_on,
        off_value: best_off,
        unit: "ms".to_string(),
        // Noise can make the instrumented round faster; that is zero
        // overhead, not negative.
        overhead_pct: ((best_on - best_off) / best_off.max(1e-9) * 100.0).max(0.0),
    };
    eprintln!(
        "  on {:.1} ms / off {:.1} ms -> {:.2}% overhead",
        telemetry_overhead.on_value, telemetry_overhead.off_value, telemetry_overhead.overhead_pct
    );

    let report = FleetReport {
        schema: "safeloc-bench/fleet-report/v1".to_string(),
        quick,
        seed: args.seed,
        cells: cells.clone(),
        telemetry_overhead: Some(telemetry_overhead.clone()),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    if !gate_failures.is_empty() {
        eprintln!("streaming-headroom gate FAILED:");
        for failure in &gate_failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }

    // Gate the numbers on the same validation `perf_report --check`
    // applies, then fold them into the perf trajectory. Quick smoke runs
    // only validate: they must not overwrite the checked-in default-scale
    // fleet trajectory unless `--bench` was passed explicitly.
    let bench_json = match std::fs::read_to_string(&args.bench) {
        Ok(json) => json,
        Err(_) => {
            eprintln!(
                "no {} to merge into (run perf_report first to track the fleet sweep in the \
                 perf trajectory)",
                args.bench
            );
            return;
        }
    };
    let mut merge_target: PerfReport = serde_json::from_str(&bench_json)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e:?}", args.bench));
    merge_target.fleet = cells;
    // The telemetry section is shared with `serve_bench`: fill only the
    // streaming-round slot, keeping whatever serving entry already exists.
    let mut telemetry_section = merge_target.telemetry.take().unwrap_or_default();
    telemetry_section.streaming_round = Some(telemetry_overhead);
    merge_target.telemetry = Some(telemetry_section);
    if let Err(problems) = merge_target.validate() {
        eprintln!("fleet section FAILED validation: {problems}");
        std::process::exit(1);
    }
    if quick && !args.bench_explicit {
        eprintln!(
            "quick run: fleet numbers validated but not merged into {} \
             (pass --bench to force)",
            args.bench
        );
        return;
    }
    let merged = serde_json::to_string_pretty(&merge_target).expect("report serializes");
    std::fs::write(&args.bench, merged)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.bench));
    eprintln!("merged fleet section into {}", args.bench);
}
