//! Fig. 1 — motivation: localization error of FEDLOC and FEDHIL under
//! label-flipping and backdoor (FGSM) poisoning.
//!
//! The paper reports, relative to each framework's clean errors:
//! FEDLOC 3.5× (label flip) and 6.5× (backdoor) mean-error increase;
//! FEDHIL 3.9× (label flip) and 3.25× (backdoor).
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig1_motivation [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_bench::{AttackSpec, FrameworkSpec, HarnessConfig, ScenarioSpec, SuiteRunner};
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let mut spec = ScenarioSpec::new(
        "fig1_motivation",
        vec![FrameworkSpec::FedLoc, FrameworkSpec::FedHil],
        vec![
            AttackSpec::clean(),
            AttackSpec::named("Label Flip", Attack::label_flip(0.8)),
            AttackSpec::named("Backdoor (FGSM)", Attack::fgsm(0.5)),
        ],
    );
    spec.description = "FEDLOC/FEDHIL degradation under poisoning".into();

    let mut runner = SuiteRunner::new(cfg, spec.clone());
    println!("# Fig. 1 — FEDLOC / FEDHIL degradation under poisoning\n");
    println!(
        "scale: {:?}, seed: {}, rounds/scenario: {}\n",
        cfg.scale,
        cfg.seed,
        runner.rounds()
    );

    // Errors pool over the scale's buildings per (framework, attack) cell.
    let run = runner.run();
    let mut rows = Vec::new();
    for (fi, framework) in spec.frameworks.iter().enumerate() {
        let clean_mean = ErrorStats::from_errors(
            &run.pooled_errors(|c| c.cell.index.framework == fi && c.cell.index.attack == 0),
        )
        .mean;
        for (ai, attack) in spec.attacks.iter().enumerate() {
            let errors =
                run.pooled_errors(|c| c.cell.index.framework == fi && c.cell.index.attack == ai);
            let s = ErrorStats::from_errors(&errors);
            // Our synthetic clean errors can be ~0 m (the paper's are ~1 m);
            // a ratio against ~0 is meaningless, so fall back to "—".
            let ratio = if clean_mean >= 0.05 {
                format!("{:.2}x", s.mean / clean_mean)
            } else {
                "—".to_string()
            };
            rows.push(vec![
                framework.label(),
                attack.label(),
                format!("{:.2}", s.best),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.worst),
                ratio,
            ]);
        }
    }

    println!(
        "{}",
        markdown_table(
            &[
                "framework",
                "scenario",
                "best (m)",
                "mean (m)",
                "worst (m)",
                "mean vs clean"
            ],
            &rows
        )
    );
    println!("\npaper: FEDLOC 3.5x/6.5x, FEDHIL 3.9x/3.25x mean-error increase (flip/backdoor)");
}
