//! Fig. 1 — motivation: localization error of FEDLOC and FEDHIL under
//! label-flipping and backdoor (FGSM) poisoning.
//!
//! The paper reports, relative to each framework's clean errors:
//! FEDLOC 3.5× (label flip) and 6.5× (backdoor) mean-error increase;
//! FEDHIL 3.9× (label flip) and 3.25× (backdoor).
//!
//! ```text
//! cargo run -p safeloc-bench --release --bin fig1_motivation [--quick|--full] [--seed N]
//! ```

use safeloc_attacks::Attack;
use safeloc_baselines::{FedHil, FedLoc};
use safeloc_bench::{build_dataset, run_scenario, HarnessConfig, Scenario};
use safeloc_fl::Framework;
use safeloc_metrics::{markdown_table, ErrorStats};

fn main() {
    let cfg = HarnessConfig::from_args();
    let rounds = cfg.rounds();
    println!("# Fig. 1 — FEDLOC / FEDHIL degradation under poisoning\n");
    println!(
        "scale: {:?}, seed: {}, rounds/scenario: {rounds}\n",
        cfg.scale, cfg.seed
    );

    let attacks: [(&str, Option<Attack>); 3] = [
        ("Clean", None),
        ("Label Flip", Some(Attack::label_flip(0.8))),
        ("Backdoor (FGSM)", Some(Attack::fgsm(0.5))),
    ];

    let mut rows = Vec::new();
    for which in ["FEDLOC", "FEDHIL"] {
        // Pool errors over buildings per scenario.
        let mut per_attack: Vec<Vec<f32>> = vec![Vec::new(); attacks.len()];
        for building in cfg.buildings() {
            let data = build_dataset(building, cfg.seed);
            let template: Box<dyn Framework> = {
                let mut f: Box<dyn Framework> = match which {
                    "FEDLOC" => Box::new(FedLoc::new(
                        data.building.num_aps(),
                        data.building.num_rps(),
                        cfg.server_config(),
                    )),
                    _ => Box::new(FedHil::new(
                        data.building.num_aps(),
                        data.building.num_rps(),
                        cfg.server_config(),
                    )),
                };
                f.pretrain(&data.server_train);
                f
            };
            for (slot, (_, attack)) in attacks.iter().enumerate() {
                let scenario = Scenario::paper(attack.clone(), rounds, cfg.seed);
                per_attack[slot].extend(run_scenario(template.as_ref(), &data, &scenario));
            }
            eprintln!("  [{which}] building {} done", data.building.id);
        }
        let clean_mean = ErrorStats::from_errors(&per_attack[0]).mean;
        for (slot, (label, _)) in attacks.iter().enumerate() {
            let s = ErrorStats::from_errors(&per_attack[slot]);
            // Our synthetic clean errors can be ~0 m (the paper's are ~1 m);
            // a ratio against ~0 is meaningless, so fall back to "—".
            let ratio = if clean_mean >= 0.05 {
                format!("{:.2}x", s.mean / clean_mean)
            } else {
                "—".to_string()
            };
            rows.push(vec![
                which.to_string(),
                label.to_string(),
                format!("{:.2}", s.best),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.worst),
                ratio,
            ]);
        }
    }

    println!(
        "{}",
        markdown_table(
            &[
                "framework",
                "scenario",
                "best (m)",
                "mean (m)",
                "worst (m)",
                "mean vs clean"
            ],
            &rows
        )
    );
    println!("\npaper: FEDLOC 3.5x/6.5x, FEDHIL 3.9x/3.25x mean-error increase (flip/backdoor)");
}
