//! Exports (or checks) a full telemetry dump: metric snapshot,
//! Prometheus text and chrome-trace JSON in one `TELEM_*.json` file.
//!
//! Two modes:
//!
//! * **Dump** (default): drives a small deterministic serving workload so
//!   the global registry holds real serve-side series, records the
//!   process peak-RSS gauge, then writes the [`TelemetryDump`] of the
//!   global registry plus the flight recorder.
//! * **Check** (`--check [PATH]`): reads an existing dump — typically the
//!   `TELEM_ci.json` that `examples/observability.rs` writes — and
//!   cross-validates its three views ([`TelemetryDump::validate`]):
//!   snapshot structure, Prometheus text parse-back, chrome-trace event
//!   JSON. Exits nonzero on any problem; CI's `telemetry-smoke` job runs
//!   this as its gate.
//!
//! Usage: `telemetry_dump [--out PATH]` or `telemetry_dump --check [PATH]`.

use safeloc_bench::{record_peak_rss_gauge, TelemetryDump};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceCatalog};
use safeloc_fl::{DefensePipeline, Framework, SequentialFlServer, ServerConfig};
use safeloc_serve::{
    request_pool, run_load, LoadPlan, ModelKey, ModelRegistry, ServeConfig, Service,
};
use std::sync::Arc;
use std::time::Duration;

fn check(path: &str) -> ! {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e} (run the dump mode or the \
             observability example first)"
        )
    });
    let dump: TelemetryDump =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"));
    let problems = dump.validate();
    if problems.is_empty() {
        eprintln!(
            "telemetry dump check: {path} ok ({} series, {} B of prometheus text, {} B of \
             chrome trace)",
            dump.snapshot.len(),
            dump.prometheus.len(),
            dump.chrome_trace.len()
        );
        std::process::exit(0);
    }
    eprintln!("telemetry dump check FAILED for {path}:");
    for problem in &problems {
        eprintln!("  {problem}");
    }
    std::process::exit(1);
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut out = "TELEM_nn.json".to_string();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--check" => {
                let path = argv.get(i + 1).cloned().unwrap_or_else(|| out.clone());
                check(&path);
            }
            "--out" => {
                i += 1;
                out = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| panic!("--out requires a path"));
            }
            other => panic!("unknown argument {other:?} (expected --check [PATH]/--out PATH)"),
        }
        i += 1;
    }

    // A short real workload so the dump carries live serve-side series,
    // not a synthetic registry: pretrain on the tiny building, serve a
    // closed-loop burst, then freeze.
    let recorder = safeloc_telemetry::flight_recorder();
    let workload = recorder.span("telemetry_dump_workload", "bench");
    let data = BuildingDataset::generate(Building::tiny(7), &DatasetConfig::tiny(), 7);
    let mut server = SequentialFlServer::new(
        &[data.building.num_aps(), 24, data.building.num_rps()],
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    {
        let _pretrain = recorder.span("pretrain", "bench");
        server.pretrain(&data.server_train);
    }
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(
        ModelKey::default_for(data.building.id),
        server.global_model().clone(),
        Some(data.building.clone()),
    );
    let service = Service::start(
        Arc::clone(&registry),
        DeviceCatalog::new(data.devices.clone()),
        ServeConfig {
            max_batch: 16,
            batch_deadline: Duration::from_micros(500),
            workers: 2,
        },
    );
    let pool = request_pool(&data);
    let stats = {
        let _load = recorder.span("closed_loop_load", "bench");
        run_load(&service, &pool, &LoadPlan::new(4, 50, 7)).stats()
    };
    service.shutdown();
    record_peak_rss_gauge();
    drop(workload);

    let dump = TelemetryDump::capture(&safeloc_telemetry::global());
    eprintln!(
        "workload: {} requests at {:.0} req/s; dump holds {} series and {} trace events",
        stats.requests,
        stats.throughput_rps,
        dump.snapshot.len(),
        recorder.recorded().min(recorder.capacity() as u64)
    );
    if let problems @ [_, ..] = dump.validate().as_slice() {
        eprintln!("freshly captured dump FAILED validation:");
        for problem in problems {
            eprintln!("  {problem}");
        }
        std::process::exit(1);
    }
    let json = serde_json::to_string_pretty(&dump).expect("dump serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
}
