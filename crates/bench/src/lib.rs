//! Benchmark harness regenerating every table and figure of the SAFELOC
//! paper.
//!
//! Each binary in `src/bin/` reproduces one experiment (see `DESIGN.md` §3
//! for the full index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_motivation` | Fig. 1 — FEDLOC/FEDHIL degradation under attack |
//! | `fig4_threshold` | Fig. 4 — τ sweep |
//! | `fig5_heatmap` | Fig. 5 — attack × ε heatmap |
//! | `fig6_comparison` | Fig. 6 — SAFELOC vs. state-of-the-art |
//! | `fig7_scalability` | Fig. 7 — client-count scaling |
//! | `fig8_participation` | (ours) accuracy + attacker-rejection rate vs participation fraction |
//! | `table1_overhead` | Table I — parameters + inference latency |
//! | `ablation` | (ours) design-choice attribution |
//! | `serve_bench` | (ours) closed-loop serving load + mid-traffic hot swap → `SERVE_*.json` + the `serving` section of `BENCH_nn.json` |
//!
//! Scenario execution runs through [`safeloc_fl::FlSession`]:
//! [`run_scenario`] drives a full-participation session, and
//! [`run_scenario_with_reports`] accepts any
//! [`CohortSampler`](safeloc_fl::CohortSampler) and returns the per-round
//! [`RoundReport`](safeloc_fl::RoundReport)s next to the errors.
//!
//! Every binary accepts `--quick` (smoke-test scale), `--full` (the paper's
//! 700-epoch configuration) and `--seed N`; the default is a
//! scaled-down-but-converged configuration (`DESIGN.md` §5).

pub mod fleet;
pub mod harness;
pub mod naive;
pub mod perf;
pub mod rss;
pub mod suite;
pub mod telem;

pub use fleet::SyntheticFleet;
pub use harness::{
    build_dataset, build_frameworks, default_buildings, evaluate_errors, pretrained_safeloc,
    run_fleet_with_network, run_fleet_with_reports, run_scenario, run_scenario_with_reports,
    scenario_fleet, HarnessConfig, Scale, Scenario, ScenarioOutcome,
};
pub use perf::{pool_stage_means, time_median_ns, FleetTiming, PerfReport, StageMean};
pub use rss::{peak_rss_bytes, record_peak_rss_gauge, reset_peak_rss};
pub use suite::{
    AttackSpec, CellRun, CombinerSpec, DefenseSpec, FleetSpec, FrameworkSpec, NetworkSpec,
    ParticipationMode, ParticipationSpec, PipelineSpec, SafelocVariant, ScenarioCell, ScenarioSpec,
    StageSpec, StageSuiteStats, SuiteCellReport, SuiteReport, SuiteRun, SuiteRunner,
};
pub use telem::{ChromeEvent, TelemetryDump};
