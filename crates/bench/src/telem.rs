//! The `TELEM_*.json` dump format shared by the `telemetry_dump` binary
//! and `examples/observability.rs`.
//!
//! One file carries everything the telemetry side channel can export:
//! the frozen [`TelemetrySnapshot`] of a registry, the Prometheus text
//! rendering of the same registry, and the flight recorder's
//! chrome://tracing JSON. [`TelemetryDump::validate`] cross-checks the
//! three views against each other — CI's `telemetry-smoke` job runs
//! `telemetry_dump --check` over the file the observability example
//! writes, so a drifting exposition format fails the build rather than
//! silently producing unscrapable output.

use safeloc_telemetry::{flight_recorder, parse_prometheus, Registry, TelemetrySnapshot};
use serde::{Deserialize, Serialize};

/// A full telemetry export: snapshot + Prometheus text + chrome trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryDump {
    /// Dump format version.
    pub schema: String,
    /// All metric series, frozen.
    pub snapshot: TelemetrySnapshot,
    /// The same registry rendered as Prometheus exposition text.
    pub prometheus: String,
    /// The process flight recorder as chrome://tracing JSON (embedded as
    /// a string: save it to a file and load it in `chrome://tracing` or
    /// Perfetto).
    pub chrome_trace: String,
}

/// One chrome://tracing complete event. Typed rather than dynamic
/// because the vendored `serde_json::Value` does not implement
/// `Deserialize`.
#[derive(Debug, Clone, Deserialize)]
pub struct ChromeEvent {
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Event phase; the flight recorder only emits `"X"` (complete).
    pub ph: String,
    /// Start, microseconds since recorder start.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
}

pub(crate) fn dump_schema() -> String {
    "safeloc-bench/telemetry-dump/v1".to_string()
}

impl TelemetryDump {
    /// Freezes `registry` and the global flight recorder into one dump.
    pub fn capture(registry: &Registry) -> Self {
        TelemetryDump {
            schema: dump_schema(),
            snapshot: registry.snapshot(),
            prometheus: safeloc_telemetry::render_prometheus(registry),
            chrome_trace: flight_recorder().chrome_trace_json(),
        }
    }

    /// Cross-checks the three views. Returns the list of problems
    /// (empty = valid):
    ///
    /// * the snapshot passes its own structural validation and is
    ///   non-empty,
    /// * the Prometheus text parses back and names every snapshot series,
    /// * the chrome trace is valid JSON made of complete (`"X"`) events
    ///   with non-negative timestamps.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = self.snapshot.validate();
        if self.snapshot.is_empty() {
            problems.push("snapshot holds no series (nothing was instrumented?)".to_string());
        }
        match parse_prometheus(&self.prometheus) {
            Err(e) => problems.push(format!("prometheus text does not parse back: {e}")),
            Ok(samples) => {
                let names: Vec<String> = self
                    .snapshot
                    .counters
                    .iter()
                    .map(|c| c.name.clone())
                    .chain(self.snapshot.gauges.iter().map(|g| g.name.clone()))
                    .collect();
                for name in names {
                    if !samples.iter().any(|s| s.name == name) {
                        problems.push(format!(
                            "series {name} is in the snapshot but missing from the \
                             prometheus text"
                        ));
                    }
                }
            }
        }
        match serde_json::from_str::<Vec<ChromeEvent>>(&self.chrome_trace) {
            Err(e) => problems.push(format!("chrome trace is not valid event JSON: {e:?}")),
            Ok(events) => {
                for event in &events {
                    if event.ph != "X" {
                        problems.push(format!(
                            "trace event {} has phase {:?}, expected complete (\"X\")",
                            event.name, event.ph
                        ));
                    }
                    if event.ts < 0.0 || event.dur < 0.0 {
                        problems.push(format!(
                            "trace event {} has negative ts/dur ({}, {})",
                            event.name, event.ts, event.dur
                        ));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_dump() -> TelemetryDump {
        let registry = Registry::new();
        registry.counter("demo_total", &[("building", "1")]).add(3);
        registry.gauge("demo_depth", &[]).set(2);
        registry.histogram("demo_us", &[]).record_f64(42.0);
        {
            let recorder = flight_recorder();
            recorder.clear();
            let _span = recorder.span("demo", "test");
        }
        TelemetryDump::capture(&registry)
    }

    #[test]
    fn captured_dump_validates_and_round_trips() {
        let dump = populated_dump();
        assert_eq!(dump.validate(), Vec::<String>::new());
        let json = serde_json::to_string(&dump).unwrap();
        let back: TelemetryDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump);
    }

    #[test]
    fn broken_views_are_reported() {
        let mut empty = populated_dump();
        empty.snapshot = TelemetrySnapshot::default();
        assert!(empty.validate().iter().any(|p| p.contains("no series")));

        let mut unscrapable = populated_dump();
        unscrapable.prometheus = "demo_total{building=\"1\" 3".to_string();
        assert!(!unscrapable.validate().is_empty());

        let mut missing = populated_dump();
        missing.prometheus = "other_total 1\n".to_string();
        assert!(missing
            .validate()
            .iter()
            .any(|p| p.contains("missing from the prometheus text")));

        let mut garbled = populated_dump();
        garbled.chrome_trace = "[{\"name\":".to_string();
        assert!(garbled
            .validate()
            .iter()
            .any(|p| p.contains("not valid event JSON")));
    }
}
