//! The seed generation's scalar, allocation-per-op numeric paths, preserved
//! verbatim-in-spirit as a permanent performance baseline.
//!
//! Everything here is intentionally *not* used by the production code: the
//! tensor layer now routes through the blocked kernels in
//! `safeloc_nn::kernels` and the training loop through the reusable
//! [`Workspace`](safeloc_nn::Workspace). The benches and `perf_report`
//! binary call these functions to measure how far the hot path has moved —
//! giving every future PR a stable "seed" reference instead of comparing
//! against a moving target.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safeloc_fl::{Aggregator, Client, ClientUpdate, DefensePipeline, LocalTrainConfig};
use safeloc_nn::{
    gather_labels, gather_rows, shuffled_batches, Activation, Adam, HasParams, Matrix, NamedParams,
    Optimizer, Sequential, SparseCrossEntropyLoss,
};

/// The seed's `Matrix::matmul`: scalar i-k-j loops, fresh output
/// allocation, and the `a == 0.0` skip in the reduction.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "naive matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let o_row = &mut ov[i * n..(i + 1) * n];
        for (p, &aval) in a_row.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let b_row = &bv[p * n..(p + 1) * n];
            for (o, &bval) in o_row.iter_mut().zip(b_row) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// The seed's `Matrix::matmul_transposed`: single-accumulator dot products.
pub fn matmul_transposed(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "naive matmul_transposed shape mismatch");
    let (m, k, r) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, r);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        for j in 0..r {
            let b_row = &bv[j * k..(j + 1) * k];
            let dot: f32 = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            ov[i * r + j] = dot;
        }
    }
    out
}

/// The seed's `Matrix::transposed_matmul`, with the `a == 0.0` skip.
pub fn transposed_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "naive transposed_matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(k, n);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for row in 0..m {
        let a_row = &av[row * k..(row + 1) * k];
        let b_row = &bv[row * n..(row + 1) * n];
        for (i, &aval) in a_row.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let o_row = &mut ov[i * n..(i + 1) * n];
            for (o, &bval) in o_row.iter_mut().zip(b_row) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// The seed's forward/backward/step training path: every intermediate —
/// pre-activations, activation outputs, derivative masks, gradients, the
/// softmax — is a freshly allocated matrix, and all products go through the
/// scalar kernels above. Returns the batch loss.
pub fn train_step(
    model: &mut Sequential,
    x: &Matrix,
    labels: &[usize],
    opt: &mut dyn Optimizer,
) -> f32 {
    let depth = model.depth();
    // Forward trace.
    let mut inputs: Vec<Matrix> = Vec::with_capacity(depth + 1);
    let mut pre: Vec<Matrix> = Vec::with_capacity(depth);
    let mut acts: Vec<Activation> = Vec::with_capacity(depth);
    inputs.push(x.clone());
    for i in 0..depth {
        let layer = model.layer(i);
        let act = if i + 1 == depth {
            Activation::Identity
        } else {
            Activation::Relu
        };
        let z = {
            let mut z = matmul(inputs.last().expect("non-empty"), layer.weights());
            z = z.add_row_broadcast(layer.bias());
            z
        };
        let h = act.forward(&z);
        pre.push(z);
        inputs.push(h);
        acts.push(act);
    }
    let logits = inputs.last().expect("non-empty");
    let loss = SparseCrossEntropyLoss.loss(logits, labels);
    let mut grad = SparseCrossEntropyLoss.grad(logits, labels);
    // Backward.
    let mut grads: Vec<Matrix> = vec![Matrix::zeros(0, 0); depth * 2];
    for i in (0..depth).rev() {
        let grad_pre = acts[i].backward(&pre[i], &grad);
        let layer = model.layer(i);
        grads[2 * i] = transposed_matmul(&inputs[i], &grad_pre);
        grads[2 * i + 1] = grad_pre.sum_rows();
        grad = matmul_transposed(&grad_pre, layer.weights());
    }
    use safeloc_nn::HasParams;
    opt.step(model.param_tensors_mut(), &grads);
    loss
}

/// The seed's federated round: every client sequentially (no parallelism)
/// trains a clone of the GM through the allocation-per-op scalar path
/// above, the full GM is re-snapshotted once per client, and the updates
/// are FedAvg-aggregated. This is the wall-clock baseline the rebuilt
/// round is measured against in `BENCH_nn.json`.
pub fn seed_round(gm: &mut Sequential, clients: &mut [Client], local: &LocalTrainConfig) {
    let n_classes = gm.out_dim();
    let round_salt = 1u64 << 16;
    let updates: Vec<ClientUpdate> = clients
        .iter_mut()
        .map(|c| {
            let set = c.prepare_round_data(&*gm, n_classes, local);
            // Seed-style local training: allocation per batch, scalar
            // kernels per step.
            let mut lm = gm.clone();
            let mut opt = Adam::new(local.learning_rate);
            let mut rng = StdRng::seed_from_u64(c.seed ^ round_salt);
            for _ in 0..local.epochs {
                for batch in shuffled_batches(set.x.rows(), local.batch_size, &mut rng) {
                    let bx = gather_rows(&set.x, &batch);
                    let by = gather_labels(&set.labels, &batch);
                    train_step(&mut lm, &bx, &by, &mut opt);
                }
            }
            let params = c.finalize_params(&gm.snapshot(), lm.snapshot());
            ClientUpdate::new(c.id, params, set.len())
        })
        .collect();
    let mut agg = DefensePipeline::fedavg();
    let next = agg.aggregate(&gm.snapshot(), &updates);
    gm.load(&next.params)
        .expect("FedAvg preserves architecture");
}

/// The seed's Krum: recomputes the full pairwise squared-distance set for
/// every candidate — `O(n²·d)` per candidate, `O(n³·d)` per round.
pub fn krum_select(updates: &[ClientUpdate], assumed_byzantine: usize) -> Option<NamedParams> {
    if updates.is_empty() {
        return None;
    }
    if updates.len() == 1 {
        return Some(updates[0].params.clone());
    }
    let n = updates.len();
    let k = n.saturating_sub(assumed_byzantine + 2).max(1);
    let mut best = (f32::INFINITY, 0usize);
    for i in 0..n {
        let mut dists: Vec<f32> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let d = updates[i].params.l2_distance(&updates[j].params);
                d * d
            })
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let score: f32 = dists.iter().take(k).sum();
        if score < best.0 {
            best = (score, i);
        }
    }
    Some(updates[best.1].params.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_fl::DefensePipeline;
    use safeloc_nn::Adam;

    fn mat(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 7) as u64 + salt) % 100) as f32 / 50.0 - 1.0
        })
    }

    #[test]
    fn naive_kernels_agree_with_blocked_kernels() {
        let a = mat(5, 37, 1);
        let b = mat(37, 11, 2);
        let fast = a.matmul(&b);
        let slow = matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        let bt = mat(11, 37, 3);
        let fast = a.matmul_transposed(&bt);
        let slow = matmul_transposed(&a, &bt);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
        let c = mat(5, 11, 4);
        let fast = a.transposed_matmul(&c);
        let slow = transposed_matmul(&a, &c);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn naive_training_step_tracks_the_workspace_path() {
        use safeloc_nn::Activation;
        let mut a = Sequential::mlp(&[12, 8, 4], Activation::Relu, 3);
        let mut b = a.clone();
        let x = mat(6, 12, 9);
        let labels = vec![0usize, 1, 2, 3, 0, 1];
        let mut oa = Adam::new(1e-3);
        let mut ob = Adam::new(1e-3);
        for _ in 0..3 {
            let la = train_step(&mut a, &x, &labels, &mut oa);
            let lb = b.train_batch(&x, &labels, &mut ob);
            assert!((la - lb).abs() < 1e-5, "losses diverged: {la} vs {lb}");
        }
        use safeloc_nn::HasParams;
        let dist = a.snapshot().l2_distance(&b.snapshot());
        assert!(dist < 1e-3, "weights diverged: {dist}");
    }

    #[test]
    fn naive_krum_agrees_with_shared_matrix_krum() {
        let updates: Vec<ClientUpdate> = (0..6)
            .map(|i| {
                let w = if i == 5 { 40.0 } else { 1.0 + i as f32 * 0.01 };
                ClientUpdate::new(
                    i,
                    NamedParams::new(vec![("w".into(), Matrix::filled(1, 8, w))]),
                    3,
                )
            })
            .collect();
        let gm = NamedParams::new(vec![("w".into(), Matrix::zeros(1, 8))]);
        let fast = DefensePipeline::krum(1).aggregate(&gm, &updates).params;
        let slow = krum_select(&updates, 1).unwrap();
        assert_eq!(fast, slow);
    }
}
