//! Peak-RSS measurement for the fleet-scale sweep.
//!
//! The streaming-cohort claim is a *memory* claim — a 100k-client round
//! must not materialize 100k models — so the bench harness needs the
//! kernel's own high-water mark, not an in-process estimate. On Linux
//! that is `VmHWM` in `/proc/self/status`, resettable between sweep
//! cells by writing `5` to `/proc/self/clear_refs`; elsewhere both
//! calls gracefully report `None` and the sweep records wall time and
//! bytes-on-wire only.

/// Peak resident-set size of this process in bytes (`VmHWM`), or `None`
/// when the platform does not expose it.
pub fn peak_rss_bytes() -> Option<u64> {
    peak_rss_impl()
}

/// Resets the kernel's peak-RSS watermark so the next
/// [`peak_rss_bytes`] reflects only allocations made after this call.
/// Returns `false` when the platform does not support resetting (the
/// watermark then monotonically covers the whole process lifetime).
pub fn reset_peak_rss() -> bool {
    reset_peak_rss_impl()
}

/// Publishes the current peak RSS as the `process_peak_rss_bytes` gauge
/// in the global telemetry registry, so a live scrape (or a
/// `telemetry_dump` snapshot) carries the memory high-water mark next to
/// the throughput series. Returns the recorded value, `None` where the
/// platform has no watermark (the gauge is then left untouched — absent,
/// not zero, mirroring `FleetTiming::peak_rss_bytes`).
pub fn record_peak_rss_gauge() -> Option<u64> {
    let bytes = peak_rss_bytes()?;
    safeloc_telemetry::global()
        .gauge("process_peak_rss_bytes", &[])
        .set(bytes as i64);
    Some(bytes)
}

#[cfg(target_os = "linux")]
fn peak_rss_impl() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

#[cfg(target_os = "linux")]
fn reset_peak_rss_impl() -> bool {
    // `5` resets the peak-RSS watermark (Documentation/filesystems/proc.rst).
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_impl() -> Option<u64> {
    None
}

#[cfg(not(target_os = "linux"))]
fn reset_peak_rss_impl() -> bool {
    false
}

/// Parses the `VmHWM:  123456 kB` line out of a `/proc/self/status`
/// dump. Split out from the syscall so the parser is testable on any
/// platform.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_hwm_parses_out_of_a_status_dump() {
        let status =
            "Name:\tfleet_scale\nVmPeak:\t  200000 kB\nVmHWM:\t   81920 kB\nVmRSS:\t   40960 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(81920 * 1024));
    }

    #[test]
    fn missing_or_garbled_hwm_lines_yield_none() {
        assert_eq!(parse_vm_hwm("Name:\tx\nVmRSS:\t 1 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_peak_rss_is_positive_and_survives_a_reset() {
        let before = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(before > 0);
        // Resetting may be refused in restricted sandboxes; when it
        // succeeds the watermark must still be readable afterwards.
        if reset_peak_rss() {
            let after = peak_rss_bytes().expect("VmHWM readable after reset");
            assert!(after > 0);
            assert!(after <= before);
        }
    }
}
