//! Integration tests for the scenario-suite engine: end-to-end cell
//! execution on tiny datasets, thread-count invariance of a suite cell,
//! report assembly, and the checked-in `scenarios/` spec files.

use rayon::ThreadPoolBuilder;
use safeloc_attacks::Attack;
use safeloc_bench::{
    AttackSpec, FrameworkSpec, HarnessConfig, NetworkSpec, ParticipationMode, ParticipationSpec,
    Scale, ScenarioSpec, SuiteReport, SuiteRunner,
};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, FingerprintSet};
use safeloc_nn::Matrix;

/// A runner over tiny synthetic buildings so tests stay fast; the builder
/// keys datasets off the requested building id.
fn tiny_runner(spec: ScenarioSpec) -> SuiteRunner {
    let cfg = HarnessConfig {
        scale: Scale::Quick,
        seed: 11,
    };
    SuiteRunner::new(cfg, spec).with_dataset_builder(|building, _fleet, seed| {
        BuildingDataset::generate(
            Building::tiny(building as u64),
            &DatasetConfig::tiny(),
            seed,
        )
    })
}

fn tiny_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "suite_integration",
        vec![FrameworkSpec::FedLoc, FrameworkSpec::Krum],
        vec![AttackSpec::clean(), AttackSpec::of(Attack::label_flip(1.0))],
    );
    spec.buildings = vec![4];
    spec.rounds = 2;
    // Attack the last tiny-fleet client (the tiny dataset has 3 devices and
    // the paper's HTC U11 index does not exist there).
    spec.participation = vec![
        ParticipationSpec::full(),
        ParticipationSpec {
            mode: ParticipationMode::UniformK { k: 2 },
            dropout: 0.2,
            straggle: 0.0,
        },
    ];
    spec
}

#[test]
#[allow(clippy::identity_op)] // the full axis product documents the grid
fn suite_runs_every_cell_and_reports_metrics() {
    let mut runner = tiny_runner(tiny_spec());
    let expected = runner.cells().len();
    assert_eq!(expected, 2 * 1 * 1 * 2 * 2 * 1);
    let run = runner.run();
    assert_eq!(run.cells.len(), expected);
    for cell in &run.cells {
        assert_eq!(cell.reports.len(), 2, "two rounds per cell");
        assert!(!cell.errors.is_empty(), "errors evaluated per cell");
        assert!(cell.stats().mean.is_finite());
        assert!((0.0..=1.0).contains(&cell.accuracy()));
        assert!(cell.mean_train_ms() >= 0.0);
        assert!(cell.mean_aggregate_ms() >= 0.0);
    }
    // The clean cells have no attacker statistics; the report serializes.
    let report = run.report();
    assert_eq!(report.cells.len(), expected);
    let json = serde_json::to_string(&report).unwrap();
    let back: SuiteReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    // Markdown renders one row per cell.
    let md = run.markdown();
    assert_eq!(md.lines().count(), expected + 2);
}

#[test]
fn krum_cells_expose_per_rule_rejections() {
    let mut spec = tiny_spec();
    spec.frameworks = vec![FrameworkSpec::Krum];
    spec.participation = vec![ParticipationSpec::full()];
    spec.boost = Some(4.0);
    let mut runner = tiny_runner(spec);
    let run = runner.run();
    // The attacked cell (attack index 1) must surface Krum rejections.
    let attacked = run
        .cells
        .iter()
        .find(|c| c.cell.index.attack == 1)
        .expect("attacked cell present");
    let rules = attacked.rule_stats();
    assert!(
        rules.iter().any(|r| r.rule == "krum"),
        "no krum rule stats: {rules:?}"
    );
    for rule in &rules {
        let rejections = rule.attacker_rejections + rule.honest_rejections;
        assert!(rejections > 0, "rule entry without rejections");
        if let Some(rate) = rule.false_positive_rate {
            assert!((0.0..=1.0).contains(&rate));
        }
    }
}

#[test]
fn suite_cells_are_bitwise_deterministic_across_thread_counts() {
    // `run()` fans cells out over the thread pool; the grid must be
    // bitwise identical no matter how many workers execute it.
    let run_with = |threads: usize| {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| {
                let mut runner = tiny_runner(tiny_spec());
                let run = runner.run();
                run.cells
                    .into_iter()
                    .map(|c| (c.errors, c.reports.into_iter().map(|r| r.clients).collect()))
                    .collect::<Vec<(Vec<f32>, Vec<_>)>>()
            })
    };
    let serial = run_with(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            run_with(threads),
            "suite cell outcomes diverged at {threads} threads"
        );
    }
}

#[test]
fn parallel_run_matches_serial_run_cell_bitwise() {
    // The parallel fan-out is an execution-order change only: every cell
    // must reproduce what a serial `run_cell` loop computes, bit for bit.
    let mut serial_runner = tiny_runner(tiny_spec());
    let cells = serial_runner.cells();
    let serial: Vec<_> = cells
        .iter()
        .map(|cell| serial_runner.run_cell(cell))
        .collect();

    let mut parallel_runner = tiny_runner(tiny_spec());
    let parallel = parallel_runner.run();

    assert_eq!(serial.len(), parallel.cells.len());
    for (s, p) in serial.iter().zip(&parallel.cells) {
        assert_eq!(s.cell, p.cell);
        assert_eq!(s.errors, p.errors, "{}", s.cell.label());
        assert_eq!(
            s.reports.iter().map(|r| &r.clients).collect::<Vec<_>>(),
            p.reports.iter().map(|r| &r.clients).collect::<Vec<_>>(),
            "{}",
            s.cell.label()
        );
        assert!(s.error.is_none() && p.error.is_none());
    }
}

#[test]
fn failing_cells_are_embedded_as_errors_not_fatal() {
    // Building 7's clients carry fingerprints of the wrong width, so its
    // cells panic mid-session; the suite must finish, embed the panic per
    // cell and keep the healthy building's results intact.
    let mut spec = tiny_spec();
    spec.buildings = vec![4, 7];
    spec.participation = vec![ParticipationSpec::full()];
    let cfg = HarnessConfig {
        scale: Scale::Quick,
        seed: 11,
    };
    let mut runner = SuiteRunner::new(cfg, spec).with_dataset_builder(|building, _fleet, seed| {
        let mut data = BuildingDataset::generate(
            Building::tiny(building as u64),
            &DatasetConfig::tiny(),
            seed,
        );
        if building == 7 {
            for set in &mut data.client_local {
                *set = FingerprintSet::new(Matrix::zeros(4, 3), vec![0; 4]);
            }
        }
        data
    });
    let run = runner.run();
    let (healthy, failed): (Vec<_>, Vec<_>) = run.cells.iter().partition(|c| c.cell.building == 4);
    assert!(!healthy.is_empty() && !failed.is_empty());
    for cell in healthy {
        assert!(cell.error.is_none(), "{}", cell.cell.label());
        assert!(!cell.errors.is_empty());
    }
    for cell in failed {
        assert!(cell.error.is_some(), "{}", cell.cell.label());
        assert!(cell.errors.is_empty() && cell.reports.is_empty());
    }
    // Failed cells survive report serialization with their message.
    let report = run.report();
    let json = serde_json::to_string(&report).unwrap();
    let back: SuiteReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    assert!(back.cells.iter().any(|c| c.error.is_some()));
}

#[test]
fn network_axis_degrades_rounds_through_the_fault_shim() {
    use safeloc_fl::ClientOutcome;

    let mut spec = tiny_spec();
    spec.frameworks = vec![FrameworkSpec::FedLoc];
    spec.participation = vec![ParticipationSpec::full()];
    spec.attacks = vec![AttackSpec::clean()];
    spec.networks = vec![
        NetworkSpec::ideal(),
        NetworkSpec {
            name: Some("lossy".into()),
            drop_probability: 1.0,
            ..NetworkSpec::ideal()
        },
        NetworkSpec {
            name: Some("congested".into()),
            latency_ms_mean: 50.0,
            deadline_ms: 10.0,
            ..NetworkSpec::ideal()
        },
    ];
    let mut runner = tiny_runner(spec);
    assert_eq!(runner.cells().len(), 3, "network axis multiplies the grid");
    let run = runner.run();
    assert!(run.cells.iter().all(|c| c.error.is_none()));

    // Everyone delivers on the ideal network — and that cell is bitwise
    // identical to a spec without the network axis at all.
    let ideal = &run.cells[0];
    assert!(ideal.reports.iter().all(|r| r
        .clients
        .iter()
        .all(|c| matches!(c.outcome, ClientOutcome::Trained { .. }))));
    let mut pre_axis = tiny_spec();
    pre_axis.frameworks = vec![FrameworkSpec::FedLoc];
    pre_axis.participation = vec![ParticipationSpec::full()];
    pre_axis.attacks = vec![AttackSpec::clean()];
    let mut pre_axis_runner = tiny_runner(pre_axis);
    let pre_axis_run = pre_axis_runner.run();
    assert_eq!(
        ideal.errors, pre_axis_run.cells[0].errors,
        "ideal-network cells must reproduce the pre-axis engine bitwise"
    );

    // drop_probability 1.0: every connection drops, every round.
    let lossy = &run.cells[1];
    assert!(lossy.reports.iter().all(|r| r
        .clients
        .iter()
        .all(|c| matches!(c.outcome, ClientOutcome::DroppedOut))));

    // Constant 50 ms latency against a 10 ms deadline: everyone straggles.
    let congested = &run.cells[2];
    assert!(congested.reports.iter().all(|r| r
        .clients
        .iter()
        .all(|c| matches!(c.outcome, ClientOutcome::Straggled))));

    // The report and markdown carry the network axis.
    let report = run.report();
    assert_eq!(report.cells[0].network, "ideal");
    assert_eq!(report.cells[1].network, "lossy");
    let json = serde_json::to_string(&report).unwrap();
    let back: SuiteReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    assert!(run.markdown().contains("congested"));
}

#[test]
#[allow(clippy::identity_op)] // the full axis product documents the grid
fn checked_in_network_churn_spec_parses_and_expands() {
    let json = include_str!("../../../scenarios/network_churn.json");
    let spec: ScenarioSpec =
        serde_json::from_str(json).expect("scenarios/network_churn.json parses");
    assert_eq!(spec.name, "network_churn");
    assert_eq!(spec.networks.len(), 4);
    assert!(spec.networks[0].is_ideal());
    assert!(spec.networks.iter().skip(1).all(|n| !n.is_ideal()));
    // At least two profiles inject latency; at least one drops connections.
    assert!(
        spec.networks
            .iter()
            .filter(|n| n.latency_ms_mean > 0.0)
            .count()
            >= 2
    );
    assert!(spec.networks.iter().any(|n| n.drop_probability > 0.0));
    let runner = SuiteRunner::new(
        HarnessConfig {
            scale: Scale::Quick,
            seed: 42,
        },
        spec,
    );
    // frameworks × attacks × networks
    assert_eq!(runner.cells().len(), 2 * 1 * 4);
}

#[test]
#[allow(clippy::identity_op)] // the full axis product documents the grid
fn checked_in_small_cohort_spec_parses_and_expands() {
    let json = include_str!("../../../scenarios/small_cohort.json");
    let spec: ScenarioSpec =
        serde_json::from_str(json).expect("scenarios/small_cohort.json parses");
    assert_eq!(spec.name, "small_cohort");
    assert_eq!(spec.frameworks.len(), 3);
    assert_eq!(spec.participation.len(), 4);
    let runner = SuiteRunner::new(
        HarnessConfig {
            scale: Scale::Quick,
            seed: 42,
        },
        spec,
    );
    // frameworks × buildings × fleets × attacks × participation × seeds
    assert_eq!(runner.cells().len(), 3 * 1 * 1 * 1 * 4 * 1);
}

#[test]
fn defense_axis_multiplies_the_grid_and_swaps_pipelines_in() {
    use safeloc_bench::{CombinerSpec, DefenseSpec, PipelineSpec, StageSpec};

    let mut spec = tiny_spec();
    spec.frameworks = vec![FrameworkSpec::FedLoc];
    spec.participation = vec![ParticipationSpec::full()];
    spec.attacks = vec![AttackSpec::of(Attack::label_flip(1.0))];
    spec.boost = Some(6.0);
    spec.defenses = vec![
        DefenseSpec::Builtin,
        DefenseSpec::Pipeline(PipelineSpec {
            name: Some("norm-clip+krum".into()),
            stages: vec![StageSpec::NormClip { multiple: 3.0 }],
            combiner: CombinerSpec::Krum {
                assumed_byzantine: 1,
            },
        }),
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: Vec::new(),
            combiner: CombinerSpec::CoordinateMedian,
        }),
    ];
    let mut runner = tiny_runner(spec);
    let cells = runner.cells();
    assert_eq!(cells.len(), 3, "defense axis must multiply the grid");
    let run = runner.run();
    assert!(run.cells.iter().all(|c| c.error.is_none()));

    // The builtin cell keeps FEDLOC's own (defenseless) rule: every
    // update accepted, no rejections anywhere in the stage trail.
    let builtin = &run.cells[0];
    assert_eq!(builtin.cell.defense, DefenseSpec::Builtin);
    assert_eq!(builtin.attacker_rejection_rate(), Some(0.0));

    // The composed cell rejects through the spec-built pipeline, and the
    // per-stage trail in the report shows which stage did it.
    let composed = &run.cells[1];
    assert_eq!(composed.cell.defense.label(), "norm-clip+krum");
    let stages = composed.stage_stats();
    let names: Vec<&str> = stages.iter().map(|s| s.stage.as_str()).collect();
    assert_eq!(
        names,
        vec!["norm-clip", "krum"],
        "stage trail must list the composition in order"
    );
    let krum = stages.iter().find(|s| s.stage == "krum").unwrap();
    assert!(
        krum.rejections > 0,
        "Krum selection rejects the non-selected updates"
    );
    assert!(stages.iter().all(|s| s.mean_wall_ms >= 0.0));

    // Serialized cell reports carry the defense label and stage stats.
    let report = run.report();
    assert_eq!(report.cells[0].defense, "builtin");
    assert_eq!(report.cells[1].defense, "norm-clip+krum");
    assert!(!report.cells[1].stage_stats.is_empty());
    let json = serde_json::to_string(&report).unwrap();
    let back: SuiteReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    // The markdown table names the defense axis.
    let md = run.markdown();
    assert!(md.contains("norm-clip+krum"));
    assert!(md.contains("coordinate-median"));
}

#[test]
fn defense_variants_share_one_pretrained_template() {
    use safeloc_bench::{CombinerSpec, DefenseSpec, PipelineSpec};

    // Same framework × building × fleet with two defenses: the runner must
    // pretrain exactly one template (the defense is applied post-clone).
    let mut spec = tiny_spec();
    spec.frameworks = vec![FrameworkSpec::FedLoc];
    spec.participation = vec![ParticipationSpec::full()];
    spec.attacks = vec![AttackSpec::clean()];
    spec.defenses = vec![
        DefenseSpec::Builtin,
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: Vec::new(),
            combiner: CombinerSpec::Mean,
        }),
    ];
    let mut runner = tiny_runner(spec);
    let cells = runner.cells();
    // Building both cells' frameworks forces template resolution; if the
    // defense leaked into the template key this would pretrain twice and
    // the clean trajectories would diverge between axis positions.
    let a = runner.framework(&cells[0]).expect("builtin instantiates");
    let b = runner.framework(&cells[1]).expect("pipeline instantiates");
    assert_eq!(
        a.global_params(),
        b.global_params(),
        "defense variants must fork the same pretrained weights"
    );
}
