//! Serde round-trips of the public scenario-spec surface: `Attack`,
//! `AttackSpec`, `ParticipationMode`/`ParticipationSpec` and the
//! defense-pipeline axis (`DefenseSpec`/`StageSpec`/`CombinerSpec`).
//! These types *are* the `scenarios/*.json` interface — a shape change
//! that breaks checked-in specs, or an unknown stage name that silently
//! parses, must fail here rather than in a CI suite run.

use safeloc_attacks::Attack;
use safeloc_bench::{
    AttackSpec, CombinerSpec, DefenseSpec, ParticipationMode, ParticipationSpec, PipelineSpec,
    ScenarioSpec, StageSpec,
};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes its own serialization")
}

#[test]
fn attacks_round_trip() {
    for attack in [
        Attack::clb(0.2),
        Attack::fgsm(0.1),
        Attack::pgd(0.3),
        Attack::mim(0.4),
        Attack::label_flip(0.5),
    ] {
        assert_eq!(round_trip(&attack), attack);
    }
}

#[test]
fn attack_specs_round_trip() {
    for spec in [
        AttackSpec::clean(),
        AttackSpec::of(Attack::label_flip(0.8)),
        AttackSpec::named("display name", Attack::fgsm(0.25)),
    ] {
        let back = round_trip(&spec);
        assert_eq!(back, spec);
        assert_eq!(back.label(), spec.label());
    }
}

#[test]
fn participation_modes_round_trip() {
    let modes = [
        ParticipationMode::Full,
        ParticipationMode::Fraction { fraction: 0.33 },
        ParticipationMode::UniformK { k: 3 },
        ParticipationMode::WeightedByData { k: 2 },
    ];
    for mode in modes {
        let spec = ParticipationSpec {
            mode: mode.clone(),
            dropout: 0.15,
            straggle: 0.05,
        };
        assert_eq!(round_trip(&spec), spec);
    }
}

#[test]
fn defense_specs_round_trip() {
    let defenses = [
        DefenseSpec::Builtin,
        DefenseSpec::Pipeline(PipelineSpec {
            name: Some("norm-clip+krum".into()),
            stages: vec![StageSpec::NonFinite, StageSpec::NormClip { multiple: 3.0 }],
            combiner: CombinerSpec::Krum {
                assumed_byzantine: 1,
            },
        }),
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: vec![
                StageSpec::ClusterSplit {
                    separation_threshold: 0.15,
                },
                StageSpec::LatentScreen { z_threshold: 1.8 },
                StageSpec::HistoryScreen {
                    z_threshold: 1.8,
                    min_history: 3,
                },
            ],
            combiner: CombinerSpec::Mean,
        }),
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: Vec::new(),
            combiner: CombinerSpec::TrimmedMean {
                trim_fraction: 0.25,
            },
        }),
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: Vec::new(),
            combiner: CombinerSpec::CoordinateMedian,
        }),
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: Vec::new(),
            combiner: CombinerSpec::Saliency { sharpness: 10.0 },
        }),
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: Vec::new(),
            combiner: CombinerSpec::Selective {
                aggregate_fraction: 0.5,
            },
        }),
        DefenseSpec::Pipeline(PipelineSpec {
            name: None,
            stages: Vec::new(),
            combiner: CombinerSpec::SampleWeightedMean,
        }),
    ];
    for defense in &defenses {
        let back = round_trip(defense);
        assert_eq!(&back, defense);
        assert_eq!(back.label(), defense.label());
    }
    // Every spec-built pipeline is actually buildable.
    for defense in &defenses {
        if let DefenseSpec::Pipeline(p) = defense {
            let pipeline = p.build(7);
            assert_eq!(pipeline.label(), p.label());
        }
    }
}

#[test]
fn derived_pipeline_labels_name_the_composition() {
    let p = PipelineSpec {
        name: None,
        stages: vec![StageSpec::NormClip { multiple: 3.0 }],
        combiner: CombinerSpec::Krum {
            assumed_byzantine: 1,
        },
    };
    assert_eq!(p.label(), "norm-clip(3)→krum(f=1)");
    let named = PipelineSpec {
        name: Some("custom".into()),
        ..p
    };
    assert_eq!(named.label(), "custom");
}

#[test]
fn unknown_stage_names_are_rejected_with_a_readable_error() {
    let json = r#"{
        "name": "bogus",
        "stages": [{ "QuantumShield": { "entanglement": 9.0 } }],
        "combiner": "Mean"
    }"#;
    let err = serde_json::from_str::<PipelineSpec>(json)
        .expect_err("an unknown stage name must not parse");
    let message = format!("{err:?}");
    assert!(
        message.contains("QuantumShield"),
        "error does not name the offending stage: {message}"
    );
    // Unknown combiners are rejected the same way.
    let json = r#"{ "name": null, "stages": [], "combiner": "Blockchain" }"#;
    let err = serde_json::from_str::<PipelineSpec>(json)
        .expect_err("an unknown combiner name must not parse");
    let message = format!("{err:?}");
    assert!(
        message.contains("Blockchain"),
        "error does not name the offending combiner: {message}"
    );
}

#[test]
fn specs_without_a_defense_axis_default_to_builtin() {
    // The pre-axis spec shape (scenarios/small_cohort.json) must keep
    // parsing and expand against the builtin defense only.
    let json = r#"{
        "name": "minimal",
        "frameworks": ["FedLoc"],
        "attacks": [{"name": null, "attack": null}],
        "boost": null
    }"#;
    let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
    assert_eq!(spec.defenses, vec![DefenseSpec::Builtin]);
}

#[test]
fn checked_in_defense_ablation_spec_parses_with_novel_compositions() {
    let json = include_str!("../../../scenarios/defense_ablation.json");
    let spec: ScenarioSpec = serde_json::from_str(json).expect("defense_ablation.json parses");
    assert_eq!(spec.name, "defense_ablation");
    let pipelines: Vec<&PipelineSpec> = spec
        .defenses
        .iter()
        .filter_map(|d| match d {
            DefenseSpec::Pipeline(p) => Some(p),
            DefenseSpec::Builtin => None,
        })
        .collect();
    assert!(
        pipelines.len() >= 3,
        "the ablation must sweep at least three composed defenses"
    );
    for p in pipelines {
        let built = p.build(3);
        assert_eq!(built.label(), p.label());
    }
    // The builtin reference point is part of the sweep too.
    assert!(spec.defenses.contains(&DefenseSpec::Builtin));
}
