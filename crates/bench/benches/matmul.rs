//! Blocked kernels vs the preserved seed scalar kernels, on the paper's
//! layer shapes (203→128→89→62→60 at batch 32).
//!
//! Run with `cargo bench -p safeloc-bench --bench matmul`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safeloc_bench::naive;
use safeloc_nn::Matrix;

const BATCH: usize = 32;
const DIMS: [usize; 5] = [203, 128, 89, 62, 60];

fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 131 + c * 31) as u64 ^ salt) % 1000) as f32 / 500.0 - 1.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for w in DIMS.windows(2) {
        let (k, n) = (w[0], w[1]);
        let a = fill(BATCH, k, 1);
        let b = fill(k, n, 2);
        let shape = format!("{BATCH}x{k}x{n}");
        group.bench_with_input(BenchmarkId::new("seed_scalar", &shape), &(), |bench, _| {
            bench.iter(|| naive::matmul(&a, &b))
        });
        let mut out = Matrix::zeros(BATCH, n);
        group.bench_with_input(BenchmarkId::new("blocked_into", &shape), &(), |bench, _| {
            bench.iter(|| a.matmul_into(&b, &mut out))
        });
    }
    group.finish();
}

fn bench_transposed_kernels(c: &mut Criterion) {
    let (k, n) = (DIMS[0], DIMS[1]);
    let grad = fill(BATCH, n, 3);
    let w = fill(k, n, 4);
    let x = fill(BATCH, k, 5);

    let mut group = c.benchmark_group("matmul_transposed");
    group.bench_function("seed_scalar", |b| {
        b.iter(|| naive::matmul_transposed(&grad, &w))
    });
    let mut out = Matrix::zeros(0, 0);
    group.bench_function("blocked_into", |b| {
        b.iter(|| grad.matmul_transposed_into(&w, &mut out))
    });
    group.finish();

    let mut group = c.benchmark_group("transposed_matmul");
    group.bench_function("seed_scalar", |b| {
        b.iter(|| naive::transposed_matmul(&x, &grad))
    });
    let mut out = Matrix::zeros(0, 0);
    group.bench_function("blocked_into", |b| {
        b.iter(|| x.transposed_matmul_into(&grad, &mut out))
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_transposed_kernels);
criterion_main!(benches);
