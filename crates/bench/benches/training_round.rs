//! One full federated round per framework (supports Figs. 6–7: the rounds
//! dominate every experiment's runtime).
//!
//! Run with `cargo bench -p safeloc-bench --bench training_round`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_baselines::{FedHil, FedLoc, Onlad};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Client, Framework, RoundPlan, ServerConfig};

fn bench_round(c: &mut Criterion) {
    let data = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 1);
    let (aps, rps) = (data.building.num_aps(), data.building.num_rps());

    let mut frameworks: Vec<Box<dyn Framework>> = vec![
        Box::new(SafeLoc::new(aps, rps, SafeLocConfig::tiny())),
        Box::new(Onlad::new(aps, rps, ServerConfig::tiny())),
        Box::new(FedHil::new(aps, rps, ServerConfig::tiny())),
        Box::new(FedLoc::new(aps, rps, ServerConfig::tiny())),
    ];
    for f in &mut frameworks {
        f.pretrain(&data.server_train);
    }

    let mut group = c.benchmark_group("federated_round");
    group.sample_size(20);
    for f in &frameworks {
        group.bench_with_input(BenchmarkId::from_parameter(f.name()), f, |b, f| {
            b.iter(|| {
                let mut fresh = f.clone_box();
                let mut clients = Client::from_dataset(&data, 0);
                let plan = RoundPlan::full(clients.len());
                fresh.run_round(&mut clients, &plan);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
