//! Server-side aggregation cost per strategy (supports Table I's overhead
//! comparison: SAFELOC's saliency map vs. the baselines' rules).
//!
//! Run with `cargo bench -p safeloc-bench --bench aggregation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safeloc::SaliencyAggregator;
use safeloc_fl::{Aggregator, ClientUpdate, DefensePipeline};
use safeloc_nn::{Activation, HasParams, NamedParams, Sequential};

fn updates(n_clients: usize) -> (NamedParams, Vec<ClientUpdate>) {
    // Realistically sized model: the paper's fused architecture for B1.
    let gm = Sequential::mlp(&[203, 128, 89, 62, 60], Activation::Relu, 0);
    let global = gm.snapshot();
    let updates = (0..n_clients)
        .map(|i| {
            let perturbed = global.scale(1.0 + 0.01 * (i as f32 + 1.0));
            ClientUpdate::new(i, perturbed, 100)
        })
        .collect();
    (global, updates)
}

fn bench_aggregation(c: &mut Criterion) {
    let (global, ups) = updates(6);
    let mut group = c.benchmark_group("aggregation_strategies");
    let mut strategies: Vec<Box<dyn Aggregator>> = vec![
        Box::new(DefensePipeline::fedavg()),
        Box::new(DefensePipeline::krum(1)),
        Box::new(DefensePipeline::selective(0.5)),
        Box::new(DefensePipeline::cluster(0.15)),
        Box::new(DefensePipeline::latent(0)),
        Box::new(SaliencyAggregator::default().into_pipeline()),
    ];
    for strategy in &mut strategies {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &(&global, &ups),
            |b, (g, u)| b.iter(|| strategy.aggregate(g, u)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
