//! Full training step on the paper-sized model: the seed allocation-per-op
//! scalar path vs the allocation-free workspace path, plus the serial vs
//! parallel federated round.
//!
//! Run with `cargo bench -p safeloc-bench --bench training_step`.

use criterion::{criterion_group, criterion_main, Criterion};
use safeloc_bench::naive;
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{
    Client, DefensePipeline, Framework, LocalTrainConfig, RoundPlan, SequentialFlServer,
    ServerConfig,
};
use safeloc_nn::{Activation, Adam, Matrix, Sequential, Workspace};

const DIMS: [usize; 5] = [203, 128, 89, 62, 60];
const BATCH: usize = 32;

fn batch() -> (Matrix, Vec<usize>) {
    let x = Matrix::from_fn(BATCH, DIMS[0], |r, c| {
        ((r * 131 + c * 31) % 1000) as f32 / 1000.0
    });
    let labels = (0..BATCH).map(|i| i % DIMS[4]).collect();
    (x, labels)
}

fn bench_training_step(c: &mut Criterion) {
    let (x, labels) = batch();
    let mut group = c.benchmark_group("training_step");

    let mut seed_model = Sequential::mlp(&DIMS, Activation::Relu, 7);
    let mut seed_opt = Adam::new(1e-3);
    group.bench_function("seed_alloc_per_op", |b| {
        b.iter(|| naive::train_step(&mut seed_model, &x, &labels, &mut seed_opt))
    });

    let mut model = Sequential::mlp(&DIMS, Activation::Relu, 7);
    let mut opt = Adam::new(1e-3);
    let mut ws = Workspace::new();
    group.bench_function("workspace_blocked", |b| {
        b.iter(|| model.train_batch_with(&x, &labels, &mut opt, &mut ws))
    });
    group.finish();
}

fn bench_federated_round(c: &mut Criterion) {
    // Paper Building 1 (203 APs, 60 RPs) with the full paper-sized model.
    let data = BuildingDataset::generate(Building::paper(1), &DatasetConfig::paper(), 1);
    // Short pretraining (setup cost only), the paper's client protocol for
    // the timed rounds (5 epochs at batch 16).
    let cfg = ServerConfig {
        local: LocalTrainConfig::paper(),
        ..ServerConfig::tiny()
    };
    let mut server = SequentialFlServer::new(
        &[
            data.building.num_aps(),
            128,
            89,
            62,
            data.building.num_rps(),
        ],
        Box::new(DefensePipeline::fedavg()),
        cfg,
    );
    server.pretrain(&data.server_train);

    let mut group = c.benchmark_group("federated_round");
    group.sample_size(10);
    let local = LocalTrainConfig::paper();
    group.bench_function("seed_serial_scalar", |b| {
        b.iter(|| {
            let mut gm = server.global_model().clone();
            let mut clients = Client::from_dataset(&data, 0);
            naive::seed_round(&mut gm, &mut clients, &local);
        })
    });
    group.bench_function("rebuilt_one_thread", |b| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        b.iter(|| {
            pool.install(|| {
                let mut s = server.clone();
                let mut clients = Client::from_dataset(&data, 0);
                let plan = RoundPlan::full(clients.len());
                s.run_round(&mut clients, &plan);
            })
        })
    });
    group.bench_function("rebuilt_parallel", |b| {
        b.iter(|| {
            let mut s = server.clone();
            let mut clients = Client::from_dataset(&data, 0);
            let plan = RoundPlan::full(clients.len());
            s.run_round(&mut clients, &plan);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training_step, bench_federated_round);
criterion_main!(benches);
