//! Poison-generation cost per attack (supports Fig. 5's 19-point ε sweep:
//! the iterative attacks dominate its runtime).
//!
//! Run with `cargo bench -p safeloc-bench --bench attack_generation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safeloc_attacks::{Attack, ALL_ATTACK_KINDS};
use safeloc_nn::{Activation, Matrix, Sequential};

fn bench_attacks(c: &mut Criterion) {
    let model = Sequential::mlp(&[203, 128, 60], Activation::Relu, 3);
    let x = Matrix::from_fn(90, 203, |r, c| ((r * 31 + c * 7) % 100) as f32 / 100.0);
    let labels: Vec<usize> = (0..90).map(|i| i % 60).collect();

    let mut group = c.benchmark_group("attack_generation");
    for kind in ALL_ATTACK_KINDS {
        let attack = Attack::of_kind(kind, 0.3);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &attack,
            |b, a| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    a.poison(&x, &labels, &model, 60, &mut rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
