//! Table I (latency column): single-fingerprint inference per framework.
//!
//! Run with `cargo bench -p safeloc-bench --bench inference_latency`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safeloc::{SafeLoc, SafeLocConfig};
use safeloc_baselines::{FedCc, FedHil, FedLoc, FedLs, Onlad};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::{Framework, ServerConfig};
use safeloc_nn::Matrix;

fn data() -> BuildingDataset {
    BuildingDataset::generate(Building::paper(1), &DatasetConfig::paper(), 42)
}

fn frameworks(d: &BuildingDataset) -> Vec<Box<dyn Framework>> {
    let (aps, rps) = (d.building.num_aps(), d.building.num_rps());
    let cfg = ServerConfig::tiny();
    let mut sl = SafeLocConfig::tiny();
    sl.encoder_dims = vec![128, 89, 62];
    sl.decoder_hidden = vec![89];
    vec![
        Box::new(SafeLoc::new(aps, rps, sl)),
        Box::new(Onlad::new(aps, rps, cfg)),
        Box::new(FedLs::new(aps, rps, cfg)),
        Box::new(FedCc::new(aps, rps, cfg)),
        Box::new(FedHil::new(aps, rps, cfg)),
        Box::new(FedLoc::new(aps, rps, cfg)),
    ]
}

fn bench_inference(c: &mut Criterion) {
    let d = data();
    let sample = Matrix::from_rows(&[d.client_test[0].x.row(0).to_vec()]);
    let mut group = c.benchmark_group("table1_inference_latency");
    for f in frameworks(&d) {
        group.bench_with_input(BenchmarkId::from_parameter(f.name()), &sample, |b, s| {
            b.iter(|| f.predict(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
