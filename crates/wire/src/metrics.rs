//! Wire-layer telemetry: per-tag frame/byte counters on every framed
//! connection, typed [`WireError`] counters, fault-injection events and
//! round-deadline straggler/dropout counters.
//!
//! Everything records into the process-global telemetry registry, so one
//! scrape (or one [`crate::Frame::MetricsRequest`]) sees serving, wire
//! and federated metrics together. Handles are registered lazily per
//! `(direction, frame kind)` and cached behind an `RwLock` keyed on
//! `&'static str` pairs — the steady-state path is a read-lock plus a
//! relaxed atomic add, no allocation.
//!
//! Metric catalog (all names prefixed `wire_`):
//!
//! | series | kind | labels |
//! |---|---|---|
//! | `wire_frames_total` | counter | `dir` (`in`/`out`), `kind` (frame type) |
//! | `wire_bytes_total` | counter | `dir`, `kind` |
//! | `wire_errors_total` | counter | `kind` (error variant) |
//! | `wire_faults_total` | counter | `kind` (`latency`/`drop`/`slow_reader`) |
//! | `wire_round_stragglers_total` | counter | — |
//! | `wire_round_dropouts_total` | counter | — |

use crate::frame::WireError;
use safeloc_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// Cached per-(dir, kind) frame and byte counters.
type FrameHandles = HashMap<(&'static str, &'static str), (Arc<Counter>, Arc<Counter>)>;

/// Telemetry handles for the wire layer, shared process-wide.
pub struct WireMetrics {
    registry: Arc<Registry>,
    frames: RwLock<FrameHandles>,
    errors: RwLock<HashMap<&'static str, Arc<Counter>>>,
    faults: RwLock<HashMap<&'static str, Arc<Counter>>>,
    stragglers: Arc<Counter>,
    dropouts: Arc<Counter>,
}

impl WireMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        let stragglers = registry.counter("wire_round_stragglers_total", &[]);
        let dropouts = registry.counter("wire_round_dropouts_total", &[]);
        Self {
            registry,
            frames: RwLock::new(HashMap::new()),
            errors: RwLock::new(HashMap::new()),
            faults: RwLock::new(HashMap::new()),
            stragglers,
            dropouts,
        }
    }

    /// Counts one frame (and its wire bytes) moving in `dir`
    /// (`"in"`/`"out"`).
    pub fn on_frame(&self, dir: &'static str, kind: &'static str, bytes: usize) {
        {
            // Poison recovery: counter caches insert whole entries and a
            // panicked peer cannot tear them; metrics must never abort
            // the connection-handling thread.
            let frames = self.frames.read().unwrap_or_else(PoisonError::into_inner);
            if let Some((count, byte_count)) = frames.get(&(dir, kind)) {
                count.inc();
                byte_count.add(bytes as u64);
                return;
            }
        }
        let mut frames = self.frames.write().unwrap_or_else(PoisonError::into_inner);
        let (count, byte_count) = frames.entry((dir, kind)).or_insert_with(|| {
            let labels: &[(&str, &str)] = &[("dir", dir), ("kind", kind)];
            (
                self.registry.counter("wire_frames_total", labels),
                self.registry.counter("wire_bytes_total", labels),
            )
        });
        count.inc();
        byte_count.add(bytes as u64);
    }

    /// Counts one typed wire error by variant.
    pub fn on_error(&self, err: &WireError) {
        self.labeled(&self.errors, "wire_errors_total", err.kind());
    }

    /// Counts one injected fault (`"latency"`, `"drop"`,
    /// `"slow_reader"`) as it is applied.
    pub fn on_fault(&self, kind: &'static str) {
        self.labeled(&self.faults, "wire_faults_total", kind);
    }

    /// Counts a cohort member that delivered after the round deadline.
    pub fn on_straggler(&self) {
        self.stragglers.inc();
    }

    /// Counts a cohort member that never delivered this round.
    pub fn on_dropout(&self) {
        self.dropouts.inc();
    }

    fn labeled(
        &self,
        cache: &RwLock<HashMap<&'static str, Arc<Counter>>>,
        name: &str,
        kind: &'static str,
    ) {
        {
            // Poison recovery: same single-insert reasoning as on_frame.
            let cached = cache.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(counter) = cached.get(kind) {
                counter.inc();
                return;
            }
        }
        let mut cached = cache.write().unwrap_or_else(PoisonError::into_inner);
        cached
            .entry(kind)
            .or_insert_with(|| self.registry.counter(name, &[("kind", kind)]))
            .inc();
    }
}

/// The process-wide wire metrics, recording into
/// [`safeloc_telemetry::global`].
pub fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| WireMetrics::new(safeloc_telemetry::global()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_value(registry: &Registry, name: &str, labels: &[(&str, &str)]) -> u64 {
        registry
            .snapshot()
            .counters
            .iter()
            .find(|c| {
                c.name == name
                    && c.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|(k, v)| c.labels.contains(&((*k).into(), (*v).into())))
            })
            .map(|c| c.value)
            .unwrap_or(0)
    }

    #[test]
    fn frames_and_errors_accumulate_per_label() {
        let metrics = WireMetrics::new(Arc::new(Registry::new()));
        metrics.on_frame("out", "Update", 100);
        metrics.on_frame("out", "Update", 50);
        metrics.on_frame("in", "Update", 75);
        metrics.on_error(&WireError::Timeout);
        metrics.on_fault("drop");
        metrics.on_straggler();
        metrics.on_dropout();
        let r = &metrics.registry;
        assert_eq!(
            counter_value(
                r,
                "wire_frames_total",
                &[("dir", "out"), ("kind", "Update")]
            ),
            2
        );
        assert_eq!(
            counter_value(r, "wire_bytes_total", &[("dir", "out"), ("kind", "Update")]),
            150
        );
        assert_eq!(
            counter_value(r, "wire_bytes_total", &[("dir", "in"), ("kind", "Update")]),
            75
        );
        assert_eq!(
            counter_value(r, "wire_errors_total", &[("kind", "Timeout")]),
            1
        );
        assert_eq!(
            counter_value(r, "wire_faults_total", &[("kind", "drop")]),
            1
        );
        assert_eq!(counter_value(r, "wire_round_stragglers_total", &[]), 1);
        assert_eq!(counter_value(r, "wire_round_dropouts_total", &[]), 1);
    }
}
