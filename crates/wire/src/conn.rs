//! Framed connections: a [`FrameConn`] wraps a [`TcpStream`] and speaks
//! whole [`Frame`]s, mapping every socket failure into a typed
//! [`WireError`].
//!
//! Read deadlines come from [`FrameConn::set_read_timeout`]; an expired
//! deadline surfaces as [`WireError::Timeout`]. After a timeout the stream
//! may sit mid-frame, so callers treat a timed-out connection as dead —
//! exactly what the round server does to a straggler.

use crate::frame::{Frame, WireError, ERR_SCHEMA, MAX_FRAME_LEN, WIRE_SCHEMA};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Maps a socket error into the wire error taxonomy: expired read
/// deadlines become [`WireError::Timeout`], everything else is I/O.
fn map_io(e: &std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => WireError::Timeout,
        _ => WireError::Io(e.to_string()),
    }
}

/// A TCP stream that sends and receives whole frames.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
}

impl FrameConn {
    /// Wraps an accepted or connected stream. Disables Nagle so small
    /// control frames (invitations, localize requests) are not delayed
    /// behind a 40 ms coalescing window.
    pub fn new(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        Self { stream }
    }

    /// Connects to `addr` (no handshake — see [`FrameConn::client_handshake`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| map_io(&e))?;
        Ok(Self::new(stream))
    }

    /// The peer's socket address, if the stream still knows it.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.peer_addr().ok()
    }

    /// Sets (or clears) the read deadline for subsequent [`FrameConn::recv`]
    /// calls.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| map_io(&e))
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on any write failure.
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let bytes = frame.encode();
        self.stream.write_all(&bytes).map_err(|e| map_io(&e))
    }

    /// Sends raw bytes verbatim — for tests that need to put deliberately
    /// malformed frames on the wire.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on any write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.stream.write_all(bytes).map_err(|e| map_io(&e))
    }

    /// Sends one frame in `chunk` -byte slices with `delay` between them —
    /// the slow-reader fault: the peer sees the length prefix, then waits
    /// on a trickling payload until its deadline expires.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on any write failure.
    pub fn send_slowly(
        &mut self,
        frame: &Frame,
        chunk: usize,
        delay: Duration,
    ) -> Result<(), WireError> {
        let bytes = frame.encode();
        for part in bytes.chunks(chunk.max(1)) {
            self.stream.write_all(part).map_err(|e| map_io(&e))?;
            self.stream.flush().map_err(|e| map_io(&e))?;
            std::thread::sleep(delay);
        }
        Ok(())
    }

    /// Receives one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] if a read deadline expires,
    /// [`WireError::Oversized`] on a hostile length prefix, any decode
    /// error from [`Frame::decode_body`], [`WireError::Io`] otherwise
    /// (including EOF).
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        let mut prefix = [0u8; 4];
        self.stream
            .read_exact(&mut prefix)
            .map_err(|e| map_io(&e))?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).map_err(|e| map_io(&e))?;
        Frame::decode_body(&body)
    }

    /// Half-closes the stream in both directions (best effort).
    pub fn shutdown(&self) {
        self.stream.shutdown(Shutdown::Both).ok();
    }

    /// Opens the connection from the client side: sends `Hello`, expects a
    /// matching `HelloAck`.
    ///
    /// # Errors
    ///
    /// [`WireError::SchemaVersion`] if the server speaks another schema,
    /// [`WireError::Peer`] if it answered with an error frame,
    /// [`WireError::Protocol`] on any other reply, plus transport errors.
    pub fn client_handshake(&mut self) -> Result<(), WireError> {
        self.send(&Frame::Hello {
            schema: WIRE_SCHEMA,
        })?;
        match self.recv()? {
            Frame::HelloAck { schema } if schema == WIRE_SCHEMA => Ok(()),
            Frame::HelloAck { schema } => Err(WireError::SchemaVersion {
                ours: WIRE_SCHEMA,
                theirs: schema,
            }),
            Frame::Error { code, message } => Err(WireError::Peer { code, message }),
            other => Err(WireError::Protocol(format!(
                "expected HelloAck, got {}",
                other.kind()
            ))),
        }
    }

    /// Answers the client-side handshake from the server side: expects
    /// `Hello`, replies `HelloAck` on a schema match or a typed error
    /// frame (best effort) on mismatch.
    ///
    /// # Errors
    ///
    /// [`WireError::SchemaVersion`] on a schema mismatch,
    /// [`WireError::Protocol`] if the opener was a different frame, plus
    /// decode/transport errors from the opener itself.
    pub fn server_handshake(&mut self) -> Result<(), WireError> {
        match self.recv()? {
            Frame::Hello { schema } if schema == WIRE_SCHEMA => self.send(&Frame::HelloAck {
                schema: WIRE_SCHEMA,
            }),
            Frame::Hello { schema } => {
                let _ = self.send(&Frame::Error {
                    code: ERR_SCHEMA,
                    message: format!(
                        "server speaks wire schema v{WIRE_SCHEMA}, client sent v{schema}"
                    ),
                });
                Err(WireError::SchemaVersion {
                    ours: WIRE_SCHEMA,
                    theirs: schema,
                })
            }
            other => Err(WireError::Protocol(format!(
                "expected Hello, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (FrameConn, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || FrameConn::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        (FrameConn::new(server), client.join().unwrap())
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (mut server, mut client) = pair();
        client.send(&Frame::Join { client_index: 7 }).unwrap();
        assert_eq!(server.recv().unwrap(), Frame::Join { client_index: 7 });
        server.send(&Frame::Bye).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::Bye);
    }

    #[test]
    fn handshake_agrees_on_schema() {
        let (mut server, mut client) = pair();
        let s = std::thread::spawn(move || {
            server.server_handshake().unwrap();
            server
        });
        client.client_handshake().unwrap();
        s.join().unwrap();
    }

    #[test]
    fn schema_mismatch_is_typed_on_both_ends() {
        let (mut server, mut client) = pair();
        let s = std::thread::spawn(move || server.server_handshake());
        client.send(&Frame::Hello { schema: 999 }).unwrap();
        assert_eq!(
            s.join().unwrap(),
            Err(WireError::SchemaVersion {
                ours: WIRE_SCHEMA,
                theirs: 999
            })
        );
        match client.recv().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ERR_SCHEMA),
            other => panic!("expected error frame, got {}", other.kind()),
        }
    }

    #[test]
    fn read_deadline_surfaces_as_timeout() {
        let (server, mut client) = pair();
        client
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(client.recv(), Err(WireError::Timeout));
        drop(server);
    }

    #[test]
    fn slow_send_still_delivers_whole_frames() {
        let (mut server, mut client) = pair();
        let frame = Frame::Error {
            code: 5,
            message: "slowly but surely".to_string(),
        };
        let sent = frame.clone();
        let t = std::thread::spawn(move || {
            client
                .send_slowly(&sent, 3, Duration::from_millis(1))
                .unwrap();
        });
        assert_eq!(server.recv().unwrap(), frame);
        t.join().unwrap();
    }
}
