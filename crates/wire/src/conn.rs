//! Framed connections: a [`FrameConn`] wraps a [`TcpStream`] and speaks
//! whole [`Frame`]s, mapping every socket failure into a typed
//! [`WireError`].
//!
//! Read deadlines come from [`FrameConn::set_read_timeout`]; an expired
//! deadline surfaces as [`WireError::Timeout`]. After a timeout the stream
//! may sit mid-frame, so callers treat a timed-out connection as dead —
//! exactly what the round server does to a straggler.

use crate::frame::{Frame, WireError, ERR_SCHEMA, MAX_FRAME_LEN, MIN_WIRE_SCHEMA, WIRE_SCHEMA};
use crate::metrics::wire_metrics;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Maps a socket error into the wire error taxonomy: expired read
/// deadlines become [`WireError::Timeout`], everything else is I/O.
fn map_io(e: &std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => WireError::Timeout,
        _ => WireError::Io(e.to_string()),
    }
}

/// A TCP stream that sends and receives whole frames.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
}

impl FrameConn {
    /// Wraps an accepted or connected stream. Disables Nagle so small
    /// control frames (invitations, localize requests) are not delayed
    /// behind a 40 ms coalescing window.
    pub fn new(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        Self { stream }
    }

    /// Connects to `addr` (no handshake — see [`FrameConn::client_handshake`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| map_io(&e))?;
        Ok(Self::new(stream))
    }

    /// The peer's socket address, if the stream still knows it.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.peer_addr().ok()
    }

    /// Sets (or clears) the read deadline for subsequent [`FrameConn::recv`]
    /// calls.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| map_io(&e))
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on any write failure.
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let bytes = frame.encode();
        wire_metrics().on_frame("out", frame.kind(), bytes.len());
        self.stream.write_all(&bytes).map_err(|e| {
            let err = map_io(&e);
            wire_metrics().on_error(&err);
            err
        })
    }

    /// Sends raw bytes verbatim — for tests that need to put deliberately
    /// malformed frames on the wire.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on any write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.stream.write_all(bytes).map_err(|e| map_io(&e))
    }

    /// Sends one frame in `chunk` -byte slices with `delay` between them —
    /// the slow-reader fault: the peer sees the length prefix, then waits
    /// on a trickling payload until its deadline expires.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on any write failure.
    pub fn send_slowly(
        &mut self,
        frame: &Frame,
        chunk: usize,
        delay: Duration,
    ) -> Result<(), WireError> {
        let bytes = frame.encode();
        wire_metrics().on_frame("out", frame.kind(), bytes.len());
        for part in bytes.chunks(chunk.max(1)) {
            self.stream.write_all(part).map_err(|e| map_io(&e))?;
            self.stream.flush().map_err(|e| map_io(&e))?;
            std::thread::sleep(delay);
        }
        Ok(())
    }

    /// Receives one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] if a read deadline expires,
    /// [`WireError::Oversized`] on a hostile length prefix, any decode
    /// error from [`Frame::decode_body`], [`WireError::Io`] otherwise
    /// (including EOF).
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        self.recv_inner()
            .inspect_err(|err| wire_metrics().on_error(err))
    }

    fn recv_inner(&mut self) -> Result<Frame, WireError> {
        let mut prefix = [0u8; 4];
        self.stream
            .read_exact(&mut prefix)
            .map_err(|e| map_io(&e))?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).map_err(|e| map_io(&e))?;
        let frame = Frame::decode_body(&body)?;
        wire_metrics().on_frame("in", frame.kind(), 4 + len);
        Ok(frame)
    }

    /// Half-closes the stream in both directions (best effort).
    pub fn shutdown(&self) {
        self.stream.shutdown(Shutdown::Both).ok();
    }

    /// Opens the connection from the client side: sends `Hello`, expects a
    /// `HelloAck` and returns the negotiated schema — the server answers
    /// `min(ours, theirs)`, so an older (but still ≥
    /// [`MIN_WIRE_SCHEMA`]) server yields a downgraded connection rather
    /// than a refusal. Frames gated on a newer schema (the metrics pair)
    /// must not be sent below their version.
    ///
    /// # Errors
    ///
    /// [`WireError::SchemaVersion`] if the server answered outside
    /// `MIN_WIRE_SCHEMA..=WIRE_SCHEMA`, [`WireError::Peer`] if it
    /// answered with an error frame, [`WireError::Protocol`] on any other
    /// reply, plus transport errors.
    pub fn client_handshake(&mut self) -> Result<u32, WireError> {
        self.send(&Frame::Hello {
            schema: WIRE_SCHEMA,
        })?;
        match self.recv()? {
            Frame::HelloAck { schema } if (MIN_WIRE_SCHEMA..=WIRE_SCHEMA).contains(&schema) => {
                Ok(schema)
            }
            Frame::HelloAck { schema } => Err(WireError::SchemaVersion {
                ours: WIRE_SCHEMA,
                theirs: schema,
            }),
            Frame::Error { code, message } => Err(WireError::Peer { code, message }),
            other => Err(WireError::Protocol(format!(
                "expected HelloAck, got {}",
                other.kind()
            ))),
        }
    }

    /// Answers the client-side handshake from the server side: expects
    /// `Hello` and, for any client schema ≥ [`MIN_WIRE_SCHEMA`], acks and
    /// returns `min(ours, theirs)` — a v2 client keeps its v2
    /// conversation; v3-only frames stay gated. Clients older than
    /// [`MIN_WIRE_SCHEMA`] get a typed error frame (best effort).
    ///
    /// # Errors
    ///
    /// [`WireError::SchemaVersion`] on an unsupported client schema,
    /// [`WireError::Protocol`] if the opener was a different frame, plus
    /// decode/transport errors from the opener itself.
    pub fn server_handshake(&mut self) -> Result<u32, WireError> {
        match self.recv()? {
            Frame::Hello { schema } if schema >= MIN_WIRE_SCHEMA => {
                let negotiated = schema.min(WIRE_SCHEMA);
                self.send(&Frame::HelloAck { schema: negotiated })?;
                Ok(negotiated)
            }
            Frame::Hello { schema } => {
                let _ = self.send(&Frame::Error {
                    code: ERR_SCHEMA,
                    message: format!(
                        "server speaks wire schema v{MIN_WIRE_SCHEMA}..=v{WIRE_SCHEMA}, \
                         client sent v{schema}"
                    ),
                });
                Err(WireError::SchemaVersion {
                    ours: WIRE_SCHEMA,
                    theirs: schema,
                })
            }
            other => Err(WireError::Protocol(format!(
                "expected Hello, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (FrameConn, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || FrameConn::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        (FrameConn::new(server), client.join().unwrap())
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (mut server, mut client) = pair();
        client.send(&Frame::Join { client_index: 7 }).unwrap();
        assert_eq!(server.recv().unwrap(), Frame::Join { client_index: 7 });
        server.send(&Frame::Bye).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::Bye);
    }

    #[test]
    fn handshake_agrees_on_schema() {
        let (mut server, mut client) = pair();
        let s = std::thread::spawn(move || {
            assert_eq!(server.server_handshake().unwrap(), WIRE_SCHEMA);
            server
        });
        assert_eq!(client.client_handshake().unwrap(), WIRE_SCHEMA);
        s.join().unwrap();
    }

    #[test]
    fn older_supported_client_negotiates_down() {
        let (mut server, mut client) = pair();
        let s = std::thread::spawn(move || server.server_handshake());
        client
            .send(&Frame::Hello {
                schema: MIN_WIRE_SCHEMA,
            })
            .unwrap();
        assert_eq!(s.join().unwrap(), Ok(MIN_WIRE_SCHEMA));
        assert_eq!(
            client.recv().unwrap(),
            Frame::HelloAck {
                schema: MIN_WIRE_SCHEMA
            }
        );
    }

    #[test]
    fn newer_client_is_capped_at_our_schema() {
        let (mut server, mut client) = pair();
        let s = std::thread::spawn(move || server.server_handshake());
        client
            .send(&Frame::Hello {
                schema: WIRE_SCHEMA + 5,
            })
            .unwrap();
        assert_eq!(s.join().unwrap(), Ok(WIRE_SCHEMA));
        assert_eq!(
            client.recv().unwrap(),
            Frame::HelloAck {
                schema: WIRE_SCHEMA
            }
        );
    }

    #[test]
    fn schema_mismatch_is_typed_on_both_ends() {
        let (mut server, mut client) = pair();
        let s = std::thread::spawn(move || server.server_handshake());
        client
            .send(&Frame::Hello {
                schema: MIN_WIRE_SCHEMA - 1,
            })
            .unwrap();
        assert_eq!(
            s.join().unwrap(),
            Err(WireError::SchemaVersion {
                ours: WIRE_SCHEMA,
                theirs: MIN_WIRE_SCHEMA - 1
            })
        );
        match client.recv().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ERR_SCHEMA),
            other => panic!("expected error frame, got {}", other.kind()),
        }
    }

    #[test]
    fn read_deadline_surfaces_as_timeout() {
        let (server, mut client) = pair();
        client
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(client.recv(), Err(WireError::Timeout));
        drop(server);
    }

    #[test]
    fn slow_send_still_delivers_whole_frames() {
        let (mut server, mut client) = pair();
        let frame = Frame::Error {
            code: 5,
            message: "slowly but surely".to_string(),
        };
        let sent = frame.clone();
        let t = std::thread::spawn(move || {
            client
                .send_slowly(&sent, 3, Duration::from_millis(1))
                .unwrap();
        });
        assert_eq!(server.recv().unwrap(), frame);
        t.join().unwrap();
    }
}
