//! Cross-process serving and federated rounds for the SAFELOC
//! reproduction: a compact, versioned binary wire protocol plus the
//! process-separation layer on top of it.
//!
//! Everything else in the workspace runs in one process; this crate puts
//! the SAFELOC threat-model boundary where it actually sits — poisoned
//! updates arrive over a wire, not via `&mut [Client]`. Four pieces:
//!
//! * [`frame`] — the wire format: length-prefixed, tagged binary frames
//!   ([`Frame`]) with explicit schema negotiation ([`WIRE_SCHEMA`]) and
//!   total decoding into typed [`WireError`]s — malformed input never
//!   panics either end.
//! * [`conn`] — [`FrameConn`]: whole-frame I/O over a `TcpStream`, read
//!   deadlines, and the `Hello`/`HelloAck` handshake.
//! * [`tcp`] — the serving front: [`WireServer`] decodes localization
//!   requests into `safeloc-serve`'s micro-batch [`Service`], keeping
//!   served predictions bitwise identical to offline `predict`;
//!   [`WireClient`] and [`run_tcp_load`] are the matching client side.
//! * [`remote`] — cross-process FL: [`RemoteFleet`] +
//!   [`RemoteFlServer`] run federated rounds against `fl_client`
//!   processes under a server-side deadline, reproducing the in-process
//!   GM trajectory bitwise when fault injection is off.
//! * [`fault`] — [`FaultProfile`]: seeded latency / drop / slow-reader
//!   injection, shared between the real transport (the `fl_client` bin
//!   applies draws to its socket) and the scenario-suite engine (which
//!   replays the same draws onto in-process round plans).
//!
//! [`Service`]: safeloc_serve::Service

pub mod conn;
pub mod fault;
pub mod frame;
pub mod metrics;
pub mod remote;
pub mod tcp;

pub use conn::FrameConn;
pub use fault::{FaultDraw, FaultProfile};
pub use frame::{
    DeltaUpdateFrame, Frame, UpdateFrame, WireAvailability, WireError, ERR_MALFORMED, ERR_PROTOCOL,
    ERR_SCHEMA, ERR_SERVE, MAX_FRAME_LEN, MIN_WIRE_SCHEMA, WIRE_SCHEMA,
};
pub use metrics::{wire_metrics, WireMetrics};
pub use remote::{RemoteFlServer, RemoteFleet};
pub use tcp::{run_tcp_load, WireClient, WireServer};
