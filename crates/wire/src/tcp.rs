//! The TCP serving front: a localhost listener that decodes
//! [`Frame::LocalizeReq`]s, feeds them to the in-process micro-batch
//! [`Service`], and encodes the responses — plus the matching client and
//! a closed-loop TCP load generator.
//!
//! # Request path
//!
//! Each accepted connection gets its own thread speaking the handshake
//! then a request/response loop. A connection is synchronous (one
//! outstanding request), but batching still happens: concurrent
//! connections land in the same service queue and coalesce into
//! micro-batches exactly as in-process callers do. Predictions are
//! therefore bitwise identical to offline `predict` — the wire moves
//! `f32` words losslessly and the service's batching invariance does the
//! rest (pinned by `tests/tcp_serving.rs`).
//!
//! # Robustness
//!
//! Malformed frames never panic the server: the per-connection thread
//! answers with a typed [`Frame::Error`] (best effort) and closes that
//! connection only. Admission errors (`ServeError`) keep the connection
//! open — a phone that asked for an unknown building can retry with a
//! valid request.

use crate::conn::FrameConn;
use crate::fault::FaultProfile;
use crate::frame::{Frame, WireError, ERR_MALFORMED, ERR_PROTOCOL, ERR_SERVE};
use crate::metrics::wire_metrics;
use safeloc_serve::{LoadOutcome, LoadPlan, LocalizeRequest, LocalizeResponse, Service};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running TCP front over a shared [`Service`].
///
/// Dropping the server stops the accept loop; open connections close as
/// their clients disconnect or the underlying service shuts down.
pub struct WireServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds a loopback listener on an OS-assigned port and starts
    /// serving `service` over it.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the listener cannot bind.
    pub fn serve(service: Arc<Service>) -> Result<Self, WireError> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| WireError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| WireError::Io(e.to_string()))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                // relaxed: Acquire pairs with the Release in shutdown();
                // the flag guards nothing but itself, so no total order
                // across other atomics is needed (was SeqCst).
                if flag.load(Ordering::Acquire) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let service = Arc::clone(&service);
                        std::thread::spawn(move || serve_connection(&service, stream));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections (idempotent). Existing connections keep
    /// draining until their clients leave.
    pub fn shutdown(&mut self) {
        // relaxed: AcqRel — Release publishes the shutdown to the accept
        // loop's Acquire load, Acquire makes the swap idempotence check
        // see a concurrent shutdown; no cross-variable SeqCst order is
        // involved (was SeqCst).
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection's lifetime: handshake, then a request/response loop
/// until the client leaves or sends something unspeakable.
fn serve_connection(service: &Service, stream: TcpStream) {
    let mut conn = FrameConn::new(stream);
    let Ok(schema) = conn.server_handshake() else {
        // The handshake already answered with a typed error frame where
        // possible; nothing to salvage on this connection.
        return;
    };
    loop {
        match conn.recv() {
            // Telemetry exposition is a v3 frame: a connection negotiated
            // down to v2 treats it like any other out-of-protocol frame.
            Ok(Frame::MetricsRequest) if schema >= 3 => {
                let text = safeloc_telemetry::render_prometheus(&service.telemetry());
                if conn.send(&Frame::MetricsResponse { text }).is_err() {
                    return;
                }
            }
            Ok(Frame::LocalizeReq {
                id,
                building,
                device,
                rss_dbm,
            }) => {
                let request = LocalizeRequest::new(building as usize, &device, rss_dbm);
                let reply = match service.localize(&request) {
                    Ok(response) => Frame::LocalizeResp {
                        id,
                        label: response.label as u32,
                        position: response.position,
                        device_class: response.device_class,
                        model_version: response.model_version,
                    },
                    // Admission errors are the client's problem, not the
                    // connection's: answer and keep serving.
                    Err(e) => Frame::Error {
                        code: ERR_SERVE,
                        message: e.to_string(),
                    },
                };
                if conn.send(&reply).is_err() {
                    return;
                }
            }
            Ok(Frame::Bye) => {
                let _ = conn.send(&Frame::Bye);
                return;
            }
            Ok(other) => {
                let _ = conn.send(&Frame::Error {
                    code: ERR_PROTOCOL,
                    message: format!("unexpected {} on a serving connection", other.kind()),
                });
                return;
            }
            Err(WireError::Io(_)) => return, // peer hung up
            Err(e) => {
                let _ = conn.send(&Frame::Error {
                    code: ERR_MALFORMED,
                    message: e.to_string(),
                });
                return;
            }
        }
    }
}

/// A client of the TCP serving front: one connection, synchronous
/// localization round trips.
pub struct WireClient {
    conn: FrameConn,
    next_id: u64,
    schema: u32,
}

impl WireClient {
    /// Connects and handshakes.
    ///
    /// # Errors
    ///
    /// Transport errors, plus [`WireError::SchemaVersion`] if the server
    /// speaks an unsupported wire schema.
    pub fn connect(addr: SocketAddr) -> Result<Self, WireError> {
        let mut conn = FrameConn::connect(addr)?;
        let schema = conn.client_handshake()?;
        Ok(Self {
            conn,
            next_id: 0,
            schema,
        })
    }

    /// The wire schema this connection negotiated.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// Fetches the server's telemetry snapshot in Prometheus text
    /// exposition format. The connection stays usable for further
    /// localization afterwards.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] if this connection negotiated below wire
    /// schema v3 (the server would reject the frame anyway),
    /// [`WireError::Peer`] on a server-side error frame, plus transport
    /// errors.
    pub fn scrape_metrics(&mut self) -> Result<String, WireError> {
        if self.schema < 3 {
            return Err(WireError::Protocol(format!(
                "metrics frames need wire schema v3, connection negotiated v{}",
                self.schema
            )));
        }
        self.conn.send(&Frame::MetricsRequest)?;
        match self.conn.recv()? {
            Frame::MetricsResponse { text } => Ok(text),
            Frame::Error { code, message } => Err(WireError::Peer { code, message }),
            other => Err(WireError::Protocol(format!(
                "expected MetricsResponse, got {}",
                other.kind()
            ))),
        }
    }

    /// One localization round trip.
    ///
    /// # Errors
    ///
    /// [`WireError::Peer`] if the server answered with an error frame
    /// (admission failure, shutdown), [`WireError::Protocol`] on an
    /// out-of-order or mis-correlated response, plus transport errors.
    pub fn localize(&mut self, request: &LocalizeRequest) -> Result<LocalizeResponse, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.conn.send(&Frame::LocalizeReq {
            id,
            building: request.building as u32,
            device: request.device.clone(),
            rss_dbm: request.rss_dbm.clone(),
        })?;
        match self.conn.recv()? {
            Frame::LocalizeResp {
                id: got,
                label,
                position,
                device_class,
                model_version,
            } => {
                if got != id {
                    return Err(WireError::Protocol(format!(
                        "response correlation mismatch: sent {id}, got {got}"
                    )));
                }
                Ok(LocalizeResponse {
                    label: label as usize,
                    position,
                    device_class,
                    model_version,
                })
            }
            Frame::Error { code, message } => Err(WireError::Peer { code, message }),
            other => Err(WireError::Protocol(format!(
                "expected LocalizeResp, got {}",
                other.kind()
            ))),
        }
    }

    /// Says goodbye and closes the connection (best effort).
    pub fn bye(mut self) {
        let _ = self.conn.send(&Frame::Bye);
        self.conn.shutdown();
    }
}

/// Runs one closed-loop load plan against a TCP front, mirroring
/// `safeloc_serve::run_load` end to end: per-client seeded request mixes
/// (same streams — `plan.seed ^ ((client + 1) << 20)`), one connection
/// per closed-loop client, latencies measured end to end — the injected
/// link latency plus the full wire round trip. `fault` injects a
/// pre-request sleep per draw, modelling link latency; drops and slow
/// readers are round-transport faults and do not apply to serving
/// requests.
///
/// What one closed-loop load client brings home: latencies in ns,
/// responses in arrival order, and its failed-request count.
type ClientLoadResult = Result<(Vec<u64>, Vec<LocalizeResponse>, usize), WireError>;

/// # Panics
///
/// Panics if `pool` is empty or a load client thread panics.
pub fn run_tcp_load(
    addr: SocketAddr,
    pool: &[LocalizeRequest],
    plan: &LoadPlan,
    fault: &FaultProfile,
) -> Result<LoadOutcome, WireError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    assert!(!pool.is_empty(), "load generation needs a request pool");
    let start = Instant::now();
    let per_client: Vec<ClientLoadResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.population)
            .map(|client| {
                let plan = *plan;
                let fault = *fault;
                scope.spawn(move || {
                    let mut wire = WireClient::connect(addr)?;
                    let mut rng = StdRng::seed_from_u64(plan.seed ^ ((client as u64 + 1) << 20));
                    let mut latencies = Vec::with_capacity(plan.requests_per_client);
                    let mut responses = Vec::with_capacity(plan.requests_per_client);
                    let mut failures = 0;
                    for request_idx in 0..plan.requests_per_client {
                        let request = &pool[rng.gen_range(0..pool.len())];
                        let draw = fault.draw(request_idx as u64, client as u64);
                        let sent = Instant::now();
                        if draw.latency_ms > 0.0 {
                            wire_metrics().on_fault("latency");
                            std::thread::sleep(Duration::from_secs_f64(draw.latency_ms / 1e3));
                        }
                        match wire.localize(request) {
                            Ok(response) => {
                                latencies.push(sent.elapsed().as_nanos() as u64);
                                responses.push(response);
                            }
                            Err(WireError::Peer { .. }) => failures += 1,
                            Err(e) => return Err(e),
                        }
                    }
                    wire.bye();
                    Ok((latencies, responses, failures))
                })
            })
            .collect();
        handles
            .into_iter()
            // panic-ok: the client closure above returns transport
            // failures as WireError instead of panicking; a panic here is
            // a harness bug and must surface, not skew the measurement.
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    let mut latencies_ns = Vec::with_capacity(per_client.len());
    let mut responses = Vec::with_capacity(per_client.len());
    let mut failures = 0;
    for result in per_client {
        let (lat, resp, fail) = result?;
        latencies_ns.push(lat);
        responses.push(resp);
        failures += fail;
    }
    Ok(LoadOutcome {
        plan: *plan,
        wall_ns,
        latencies_ns,
        responses,
        failures,
    })
}
