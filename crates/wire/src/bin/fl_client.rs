//! A federated client as its own OS process.
//!
//! Rebuilds one fleet member deterministically from CLI arguments (the
//! same dataset/fleet seeds the server's mirror fleet uses), joins the
//! round server, and then follows the round protocol: receive the GM
//! broadcast, run the *identical* client-side training path the
//! in-process engine runs (`prepare_round_data` →
//! `train_sequential_lm` with seed `client.seed ^ round_salt` →
//! `finalize_params`), and upload the full local model. With an ideal
//! [`FaultProfile`] the uploaded update is bitwise the in-process one.
//!
//! Transport faults are applied client-side from the shared profile: a
//! drawn drop closes the connection (crash-stop — the client is gone for
//! later rounds too), drawn latency sleeps before the upload, and a drawn
//! slow-reader trickles the update in tiny chunks until the server's
//! round deadline gives up on it.

use safeloc_attacks::{Attack, PoisonInjector};
use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::client::train_sequential_lm;
use safeloc_fl::{Client, DeltaCompressor, DeltaSpec, LocalTrainConfig, ServerConfig};
use safeloc_nn::{Activation, HasParams, Sequential};
use safeloc_wire::{DeltaUpdateFrame, FaultProfile, Frame, FrameConn, UpdateFrame, WireError};
use std::time::Duration;

struct Args {
    addr: String,
    client: usize,
    dims: Vec<usize>,
    dataset: String,
    building_seed: u64,
    building_id: usize,
    data_seed: u64,
    fleet_seed: u64,
    local: String,
    label_flip: Option<f32>,
    boost: f32,
    fault: FaultProfile,
    delta: DeltaSpec,
}

/// Parses `--delta dense | topk:<fraction> | q8`.
fn parse_delta(value: &str) -> Result<DeltaSpec, String> {
    if value == "dense" {
        return Ok(DeltaSpec::Dense);
    }
    if value == "q8" {
        return Ok(DeltaSpec::QuantizedI8);
    }
    if let Some(fraction) = value.strip_prefix("topk:") {
        let fraction: f32 = fraction
            .parse()
            .map_err(|e| format!("--delta topk fraction: {e}"))?;
        return Ok(DeltaSpec::TopK { fraction });
    }
    Err(format!(
        "unknown --delta {value} (dense|topk:<fraction>|q8)"
    ))
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            addr: String::new(),
            client: usize::MAX,
            dims: Vec::new(),
            dataset: "tiny".to_string(),
            building_seed: 3,
            building_id: 0,
            data_seed: 3,
            fleet_seed: 0,
            local: "tiny".to_string(),
            label_flip: None,
            boost: 1.0,
            fault: FaultProfile::ideal(),
            delta: DeltaSpec::Dense,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr")?,
                "--client" => {
                    args.client = value("--client")?
                        .parse()
                        .map_err(|e| format!("--client: {e}"))?
                }
                "--dims" => {
                    args.dims = value("--dims")?
                        .split(',')
                        .map(|d| d.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("--dims: {e}"))?
                }
                "--dataset" => args.dataset = value("--dataset")?,
                "--building-seed" => {
                    args.building_seed = value("--building-seed")?
                        .parse()
                        .map_err(|e| format!("--building-seed: {e}"))?
                }
                "--building-id" => {
                    args.building_id = value("--building-id")?
                        .parse()
                        .map_err(|e| format!("--building-id: {e}"))?
                }
                "--data-seed" => {
                    args.data_seed = value("--data-seed")?
                        .parse()
                        .map_err(|e| format!("--data-seed: {e}"))?
                }
                "--fleet-seed" => {
                    args.fleet_seed = value("--fleet-seed")?
                        .parse()
                        .map_err(|e| format!("--fleet-seed: {e}"))?
                }
                "--local" => args.local = value("--local")?,
                "--label-flip" => {
                    args.label_flip = Some(
                        value("--label-flip")?
                            .parse()
                            .map_err(|e| format!("--label-flip: {e}"))?,
                    )
                }
                "--boost" => {
                    args.boost = value("--boost")?
                        .parse()
                        .map_err(|e| format!("--boost: {e}"))?
                }
                "--fault" => {
                    args.fault = serde_json::from_str(&value("--fault")?)
                        .map_err(|e| format!("--fault: {e:?}"))?
                }
                "--delta" => args.delta = parse_delta(&value("--delta")?)?,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.addr.is_empty() {
            return Err("--addr is required".to_string());
        }
        if args.client == usize::MAX {
            return Err("--client is required".to_string());
        }
        if args.dims.len() < 2 {
            return Err("--dims needs at least two comma-separated widths".to_string());
        }
        Ok(args)
    }

    fn dataset(&self) -> Result<BuildingDataset, String> {
        let (building, cfg) = match self.dataset.as_str() {
            "tiny" => (Building::tiny(self.building_seed), DatasetConfig::tiny()),
            "paper" => (Building::paper(self.building_id), DatasetConfig::paper()),
            other => return Err(format!("unknown --dataset {other} (tiny|paper)")),
        };
        Ok(BuildingDataset::generate(building, &cfg, self.data_seed))
    }

    fn local_config(&self) -> Result<LocalTrainConfig, String> {
        Ok(match self.local.as_str() {
            "tiny" => ServerConfig::tiny().local,
            "default" => ServerConfig::default_scale(0).local,
            "paper" => ServerConfig::paper(0).local,
            other => return Err(format!("unknown --local {other} (tiny|default|paper)")),
        })
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("fl_client: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let data = args.dataset()?;
    let local = args.local_config()?;
    let mut clients = Client::from_dataset(&data, args.fleet_seed);
    if args.client >= clients.len() {
        return Err(format!(
            "--client {} out of range for a {}-client fleet",
            args.client,
            clients.len()
        ));
    }
    let mut me = clients.swap_remove(args.client);
    if let Some(fraction) = args.label_flip {
        // The harness's non-coherent attacker stream: seed ^ ((id+1) << 24).
        let stream = args.fleet_seed ^ ((me.id as u64 + 1) << 24);
        me.injector =
            Some(PoisonInjector::new(Attack::label_flip(fraction), stream).with_boost(args.boost));
    }
    if !args.delta.is_dense() {
        me.compressor = Some(DeltaCompressor::new(args.delta));
    }

    let mut conn = FrameConn::connect(args.addr.as_str()).map_err(|e| e.to_string())?;
    conn.client_handshake().map_err(|e| e.to_string())?;
    conn.send(&Frame::Join {
        client_index: me.id as u32,
    })
    .map_err(|e| e.to_string())?;

    loop {
        match conn.recv() {
            // Round preamble — the broadcast is what starts training.
            Ok(Frame::CohortInvite { .. }) | Ok(Frame::RoundPlan { .. }) => continue,
            Ok(Frame::GmBroadcast {
                round,
                round_salt,
                params,
            }) => {
                let draw = args.fault.draw(round as u64, me.id as u64);
                if draw.drop {
                    safeloc_wire::wire_metrics().on_fault("drop");
                    conn.shutdown();
                    return Ok(());
                }
                let mut gm = Sequential::mlp(&args.dims, Activation::Relu, 0);
                gm.load(&params)
                    .map_err(|e| format!("GM broadcast does not fit --dims: {e}"))?;
                let n_classes = gm.out_dim();
                let set = me.prepare_round_data(&gm, n_classes, &local);
                let lm = train_sequential_lm(&gm, &set, &local, me.seed ^ round_salt);
                let lm = me.finalize_params(&params, lm);
                // With `--delta`, the compressor turns the trained LM into
                // a compressed delta frame; the default path stays the
                // byte-identical dense upload.
                let built = me.build_update(&params, lm, set.len());
                let update = match built.repr {
                    safeloc_fl::DeltaRepr::Dense => Frame::Update(UpdateFrame {
                        client_id: me.id as u64,
                        round,
                        building: data.building.id as u32,
                        device_class: me.device_name.clone(),
                        num_samples: set.len() as u64,
                        params: built.params,
                    }),
                    repr => Frame::UpdateDelta(DeltaUpdateFrame {
                        client_id: me.id as u64,
                        round,
                        building: data.building.id as u32,
                        device_class: me.device_name.clone(),
                        num_samples: set.len() as u64,
                        repr,
                    }),
                };
                if draw.latency_ms > 0.0 {
                    safeloc_wire::wire_metrics().on_fault("latency");
                    std::thread::sleep(Duration::from_secs_f64(draw.latency_ms / 1e3));
                }
                if draw.slow_reader {
                    safeloc_wire::wire_metrics().on_fault("slow_reader");
                    // Trickle until the server's deadline gives up on us;
                    // the resulting write error just ends the trickle.
                    let _ = conn.send_slowly(&update, 64, Duration::from_millis(25));
                } else {
                    conn.send(&update).map_err(|e| e.to_string())?;
                }
            }
            Ok(Frame::Bye) => return Ok(()),
            Ok(other) => return Err(format!("unexpected {} from the round server", other.kind())),
            // The server closing the fleet is an orderly end of session.
            Err(WireError::Io(_)) => return Ok(()),
            Err(e) => return Err(e.to_string()),
        }
    }
}
