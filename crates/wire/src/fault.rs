//! Deterministic transport-fault injection: latency, drops and slow
//! readers drawn from a seeded profile.
//!
//! One [`FaultProfile`] serves two consumers. The `fl_client` process
//! applies its draws to the *real* transport — sleeping before an update,
//! closing the socket, or trickling bytes below the server's deadline —
//! turning simulated churn into measured churn. The scenario-suite engine
//! applies the same draws through [`FaultProfile::degrade_plan`], mapping
//! each would-be fault onto the in-process [`Availability`] it would have
//! produced, so network conditions sweep like any other scenario axis
//! without paying per-cell process spawns.
//!
//! Draws are a pure function of `(seed, round, client)` — the profile can
//! be consulted out of order, from any process, and reproduce bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use safeloc_fl::{Availability, RoundPlan};
use serde::{Deserialize, Serialize};

fn f64_zero() -> f64 {
    0.0
}

fn u64_zero() -> u64 {
    0
}

/// A configurable transport-fault distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Mean injected one-way latency, milliseconds.
    #[serde(default = "f64_zero")]
    pub latency_ms_mean: f64,
    /// Standard deviation of the injected latency (0 = constant).
    #[serde(default = "f64_zero")]
    pub latency_ms_std: f64,
    /// Per-(round, client) probability of dropping the connection instead
    /// of delivering the update.
    #[serde(default = "f64_zero")]
    pub drop_probability: f64,
    /// Per-(round, client) probability of trickling the update slower than
    /// any reasonable round deadline (a slow-reader straggler).
    #[serde(default = "f64_zero")]
    pub slow_reader_probability: f64,
    /// Seed of the fault stream.
    #[serde(default = "u64_zero")]
    pub seed: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::ideal()
    }
}

impl FaultProfile {
    /// The no-fault profile: zero latency, no drops, no stragglers.
    pub fn ideal() -> Self {
        Self {
            latency_ms_mean: 0.0,
            latency_ms_std: 0.0,
            drop_probability: 0.0,
            slow_reader_probability: 0.0,
            seed: 0,
        }
    }

    /// A normally distributed latency profile with no drops.
    pub fn latency(mean_ms: f64, std_ms: f64, seed: u64) -> Self {
        Self {
            latency_ms_mean: mean_ms,
            latency_ms_std: std_ms,
            seed,
            ..Self::ideal()
        }
    }

    /// Sets the drop probability.
    pub fn with_drops(mut self, probability: f64) -> Self {
        self.drop_probability = probability;
        self
    }

    /// Sets the slow-reader probability.
    pub fn with_slow_readers(mut self, probability: f64) -> Self {
        self.slow_reader_probability = probability;
        self
    }

    /// `true` when the profile can inject nothing — the fast path that
    /// never consults an RNG, mirroring the cohort sampler's no-churn
    /// guarantee.
    pub fn is_ideal(&self) -> bool {
        self.latency_ms_mean <= 0.0
            && self.latency_ms_std <= 0.0
            && self.drop_probability <= 0.0
            && self.slow_reader_probability <= 0.0
    }

    /// The faults hitting `client` in `round`. Deterministic in
    /// `(seed, round, client)`; the word-consumption order (drop, slow
    /// reader, latency) is fixed, so adding a fault kind later cannot
    /// silently reshuffle existing draws.
    pub fn draw(&self, round: u64, client: u64) -> FaultDraw {
        if self.is_ideal() {
            return FaultDraw {
                latency_ms: 0.0,
                drop: false,
                slow_reader: false,
            };
        }
        let stream = self.seed
            ^ round.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ client.wrapping_add(1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let mut rng = StdRng::seed_from_u64(stream);
        let drop = rng.gen_range(0.0..1.0f64) < self.drop_probability;
        let slow_reader = rng.gen_range(0.0..1.0f64) < self.slow_reader_probability;
        let latency_ms = if self.latency_ms_std > 0.0 {
            // panic-ok: Normal::new fails only on non-finite std, and
            // this branch requires latency_ms_std > 0.0 (NaN compares
            // false), so the parameters are always finite here.
            Normal::<f64>::new(self.latency_ms_mean, self.latency_ms_std)
                .expect("finite latency parameters")
                .sample(&mut rng)
                .max(0.0)
        } else {
            self.latency_ms_mean.max(0.0)
        };
        FaultDraw {
            latency_ms,
            drop,
            slow_reader,
        }
    }

    /// Replays this profile's faults onto an in-process plan: each
    /// participating member that would have dropped its connection becomes
    /// [`Availability::DropsOut`]; one that would have trickled below the
    /// deadline — or whose drawn latency exceeds `deadline_ms` — becomes
    /// [`Availability::Straggles`]. Members the plan already benched keep
    /// their availability. An ideal profile returns the plan unchanged
    /// without consulting any RNG.
    pub fn degrade_plan(&self, plan: &RoundPlan, round: u64, deadline_ms: f64) -> RoundPlan {
        if self.is_ideal() {
            return plan.clone();
        }
        RoundPlan::new(
            plan.cohort()
                .iter()
                .map(|&(i, availability)| {
                    if availability != Availability::Participates {
                        return (i, availability);
                    }
                    let draw = self.draw(round, i as u64);
                    let effective = if draw.drop {
                        Availability::DropsOut
                    } else if draw.slow_reader
                        || (deadline_ms > 0.0 && draw.latency_ms > deadline_ms)
                    {
                        Availability::Straggles
                    } else {
                        Availability::Participates
                    };
                    (i, effective)
                })
                .collect(),
        )
    }
}

/// One (round, client) fault draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDraw {
    /// Injected one-way latency, milliseconds (≥ 0).
    pub latency_ms: f64,
    /// Whether the connection drops instead of delivering.
    pub drop: bool,
    /// Whether the update trickles in below any reasonable deadline.
    pub slow_reader: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_profile_injects_nothing() {
        let p = FaultProfile::ideal();
        assert!(p.is_ideal());
        let d = p.draw(3, 9);
        assert_eq!(
            d,
            FaultDraw {
                latency_ms: 0.0,
                drop: false,
                slow_reader: false
            }
        );
        let plan = RoundPlan::full(5);
        assert_eq!(p.degrade_plan(&plan, 0, 100.0), plan);
    }

    #[test]
    fn draws_are_deterministic_and_vary_by_round_and_client() {
        let p = FaultProfile::latency(20.0, 5.0, 42).with_drops(0.3);
        assert_eq!(p.draw(1, 2), p.draw(1, 2));
        let draws: Vec<FaultDraw> = (0..8).map(|c| p.draw(0, c)).collect();
        assert!(
            draws.windows(2).any(|w| w[0] != w[1]),
            "eight clients drew identical faults"
        );
        assert_ne!(p.draw(0, 1), p.draw(1, 1), "rounds share a stream");
    }

    #[test]
    fn drop_probability_one_drops_everyone() {
        let p = FaultProfile::ideal().with_drops(1.0);
        let degraded = p.degrade_plan(&RoundPlan::full(4), 2, 0.0);
        assert!(degraded
            .cohort()
            .iter()
            .all(|&(_, a)| a == Availability::DropsOut));
    }

    #[test]
    fn latency_beyond_deadline_becomes_a_straggler() {
        let p = FaultProfile::latency(50.0, 0.0, 7);
        let degraded = p.degrade_plan(&RoundPlan::full(3), 0, 10.0);
        assert!(degraded
            .cohort()
            .iter()
            .all(|&(_, a)| a == Availability::Straggles));
        // Same latency under a generous deadline: everyone participates.
        let relaxed = p.degrade_plan(&RoundPlan::full(3), 0, 500.0);
        assert!(relaxed
            .cohort()
            .iter()
            .all(|&(_, a)| a == Availability::Participates));
    }

    #[test]
    fn benched_members_keep_their_availability() {
        let p = FaultProfile::ideal().with_drops(1.0);
        let plan = RoundPlan::new(vec![
            (0, Availability::Straggles),
            (1, Availability::Participates),
        ]);
        let degraded = p.degrade_plan(&plan, 0, 0.0);
        assert_eq!(degraded.cohort()[0], (0, Availability::Straggles));
        assert_eq!(degraded.cohort()[1], (1, Availability::DropsOut));
    }

    #[test]
    fn profile_round_trips_through_serde_with_defaults() {
        let p = FaultProfile::latency(5.0, 1.0, 3).with_drops(0.1);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // Omitted fields default to the ideal profile.
        let sparse: FaultProfile = serde_json::from_str("{\"latency_ms_mean\": 2.5}").unwrap();
        assert_eq!(sparse.latency_ms_mean, 2.5);
        assert_eq!(sparse.drop_probability, 0.0);
        assert_eq!(sparse.seed, 0);
    }
}
