//! Cross-process federated rounds: a [`Framework`] whose clients live in
//! other OS processes and speak the wire protocol.
//!
//! The server side is two pieces. A [`RemoteFleet`] owns one framed
//! connection per registered client process (each opens with the
//! handshake and a [`Frame::Join`] carrying its fleet index). A
//! [`RemoteFlServer`] implements [`Framework`], so a stock
//! [`FlSession`](safeloc_fl::FlSession) drives remote rounds exactly like
//! in-process ones: per round it sends every active cohort member an
//! invitation, the plan and the GM broadcast (so all clients train
//! concurrently), then collects updates under a server-side deadline.
//!
//! # Deadline semantics
//!
//! The deadline bounds the whole collection phase: every connection read
//! runs under the *remaining* time to one shared deadline instant, so a
//! hung or trickling client can delay aggregation by at most the
//! configured deadline — never stall it. Once the deadline is spent, each
//! remaining connection still gets a short grace read ([`DRAIN_GRACE`])
//! so updates that already crossed the wire while an earlier client hung
//! are drained, not discarded. A timed-out client is recorded as
//! [`Availability::Straggles`] and its connection is closed (its bytes
//! may sit mid-frame); a disconnected or misbehaving one as
//! [`Availability::DropsOut`]. The round then aggregates whatever
//! arrived, exactly like an in-process plan with those availabilities.
//!
//! # Bitwise parity
//!
//! With fault injection off, a wire round reproduces the in-process GM
//! trajectory bit for bit: updates carry full `f32` parameters (lossless
//! on the wire), the broadcast carries the round salt so remote clients
//! derive the identical training seed, and collection preserves fleet
//! order. Pinned end to end by `tests/loopback_round.rs`. Clients that
//! opted into delta compression upload [`Frame::UpdateDelta`] instead;
//! the server re-materializes `GM + decode(repr)` — bitwise what the
//! compressing client carries forward — and parity then holds against an
//! in-process fleet whose clients carry the same compressor spec.

use crate::conn::FrameConn;
use crate::frame::{DeltaUpdateFrame, Frame, UpdateFrame, WireAvailability, WireError};
use safeloc_dataset::FingerprintSet;
use safeloc_fl::report::{RoundSplit, RoundTimer};
use safeloc_fl::{
    Aggregator, Availability, Client, ClientUpdate, Framework, RoundPlan, RoundReport, ServerConfig,
};
use safeloc_nn::{Activation, Adam, HasParams, Matrix, NamedParams, Sequential, TrainConfig};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Post-deadline grace read per remaining connection: long enough to
/// drain an update that is already buffered locally, far too short for a
/// straggler to sneak real work through.
pub const DRAIN_GRACE: Duration = Duration::from_millis(50);

/// Converts the in-process availability to its wire form.
fn wire_availability(a: Availability) -> WireAvailability {
    match a {
        Availability::Participates => WireAvailability::Participates,
        Availability::DropsOut => WireAvailability::DropsOut,
        Availability::Straggles => WireAvailability::Straggles,
    }
}

/// The server's view of a fleet of client processes: one slot per fleet
/// index, filled as clients join.
pub struct RemoteFleet {
    listener: TcpListener,
    addr: SocketAddr,
    conns: Vec<Option<FrameConn>>,
}

impl RemoteFleet {
    /// Binds a loopback listener with one slot per fleet member.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the listener cannot bind.
    pub fn bind(n_clients: usize) -> Result<Self, WireError> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| WireError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(Self {
            listener,
            addr,
            conns: (0..n_clients).map(|_| None).collect(),
        })
    }

    /// The address client processes connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fleet size (slots, not live connections).
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// `true` for a zero-slot fleet.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Number of currently connected clients.
    pub fn connected(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Accepts joins until every slot is filled or `timeout` elapses.
    /// A connection that fails its handshake or join is discarded; the
    /// slot stays open for a retry.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] if slots remain empty at the deadline,
    /// [`WireError::Io`] on listener failures.
    pub fn accept_all(&mut self, timeout: Duration) -> Result<(), WireError> {
        let deadline = Instant::now() + timeout;
        self.listener
            .set_nonblocking(true)
            .map_err(|e| WireError::Io(e.to_string()))?;
        while self.connected() < self.conns.len() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| WireError::Io(e.to_string()))?;
                    let mut conn = FrameConn::new(stream);
                    if conn.server_handshake().is_err() {
                        continue;
                    }
                    match conn.recv() {
                        Ok(Frame::Join { client_index }) => {
                            let i = client_index as usize;
                            if i < self.conns.len() && self.conns[i].is_none() {
                                self.conns[i] = Some(conn);
                            }
                        }
                        _ => continue,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(WireError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
        Ok(())
    }

    /// The live connection for fleet index `i`, if any.
    fn conn_mut(&mut self, i: usize) -> Option<&mut FrameConn> {
        self.conns.get_mut(i).and_then(|c| c.as_mut())
    }

    /// Closes and forgets the connection for fleet index `i`.
    fn kill(&mut self, i: usize) {
        if let Some(Some(conn)) = self.conns.get(i) {
            conn.shutdown();
        }
        if let Some(slot) = self.conns.get_mut(i) {
            *slot = None;
        }
    }

    /// Says goodbye to every live client (best effort).
    pub fn broadcast_bye(&mut self) {
        for slot in &mut self.conns {
            if let Some(conn) = slot {
                let _ = conn.send(&Frame::Bye);
                conn.shutdown();
            }
            *slot = None;
        }
    }
}

impl Drop for RemoteFleet {
    fn drop(&mut self) {
        self.broadcast_bye();
    }
}

/// A [`Framework`] running rounds against client *processes* over the
/// wire protocol. Construction mirrors
/// [`SequentialFlServer::new`](safeloc_fl::SequentialFlServer::new) —
/// same MLP, same config, same pretraining code path — so an in-process
/// twin built from the same arguments starts from a bitwise-identical GM.
#[derive(Clone)]
pub struct RemoteFlServer {
    name: &'static str,
    gm: Sequential,
    aggregator: Box<dyn Aggregator>,
    cfg: ServerConfig,
    fleet: Arc<Mutex<RemoteFleet>>,
    deadline: Duration,
    rounds_run: usize,
}

impl RemoteFlServer {
    /// Creates a remote round server over a connected fleet.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2` (same contract as the in-process
    /// server).
    pub fn new(
        dims: &[usize],
        aggregator: Box<dyn Aggregator>,
        cfg: ServerConfig,
        fleet: Arc<Mutex<RemoteFleet>>,
        deadline: Duration,
    ) -> Self {
        Self {
            name: "RemoteFL",
            gm: Sequential::mlp(dims, Activation::Relu, cfg.seed),
            aggregator,
            cfg,
            fleet,
            deadline,
            rounds_run: 0,
        }
    }

    /// The current global model.
    pub fn global_model(&self) -> &Sequential {
        &self.gm
    }

    /// Rounds run so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// The server-side round deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }
}

impl Framework for RemoteFlServer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        // Byte-for-byte the in-process pretraining path.
        let mut opt = Adam::new(self.cfg.pretrain_lr);
        self.gm.fit_classifier(
            &train.x,
            &train.labels,
            &mut opt,
            &TrainConfig::new(self.cfg.pretrain_epochs, self.cfg.batch_size, self.cfg.seed),
        );
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        let timer = RoundTimer::start();
        let round = self.rounds_run;
        let round_salt = (round as u64 + 1) << 16;
        let deadline_ms = self.deadline.as_millis().min(u32::MAX as u128) as u32;
        let gm_params = self.gm.snapshot();
        let wire_cohort: Vec<(u32, WireAvailability)> = plan
            .cohort()
            .iter()
            .map(|&(i, a)| (i as u32, wire_availability(a)))
            .collect();

        // Poison recovery: rounds run one at a time; a previous round
        // that panicked left connections in whatever state the transport
        // did, which the per-member error handling below already absorbs.
        let mut fleet = self.fleet.lock().unwrap_or_else(PoisonError::into_inner);
        // What actually happened to each cohort member, seeded from the
        // plan and downgraded by transport reality.
        let mut effective: Vec<(usize, Availability)> = plan.cohort().to_vec();

        // Phase 1 — broadcast, so every remote client trains concurrently.
        for entry in effective.iter_mut() {
            let (i, availability) = *entry;
            if availability != Availability::Participates {
                continue;
            }
            let sent = match fleet.conn_mut(i) {
                Some(conn) => conn
                    .send(&Frame::CohortInvite {
                        round: round as u32,
                        client_index: i as u32,
                        deadline_ms,
                    })
                    .and_then(|()| {
                        conn.send(&Frame::RoundPlan {
                            round: round as u32,
                            cohort: wire_cohort.clone(),
                        })
                    })
                    .and_then(|()| {
                        conn.send(&Frame::GmBroadcast {
                            round: round as u32,
                            round_salt,
                            params: gm_params.clone(),
                        })
                    })
                    .is_ok(),
                None => false,
            };
            if !sent {
                crate::metrics::wire_metrics().on_dropout();
                fleet.kill(i);
                entry.1 = Availability::DropsOut;
            }
        }

        // Phase 2 — collect under one shared deadline, in fleet order (the
        // order in-process collection returns updates in).
        let deadline_at = Instant::now() + self.deadline;
        let mut updates: Vec<ClientUpdate> = Vec::new();
        for entry in effective.iter_mut() {
            let (i, availability) = *entry;
            if availability != Availability::Participates {
                continue;
            }
            // A hung earlier client may have consumed the whole deadline,
            // but updates that already crossed the wire are sitting in
            // this socket's buffer — a short grace read drains them rather
            // than discarding delivered work. Only clients that still have
            // not produced a frame become stragglers.
            let remaining = deadline_at
                .saturating_duration_since(Instant::now())
                .max(DRAIN_GRACE);
            // panic-ok: `effective` is seeded from the fleet's own cohort
            // plan, so every participating index has a connection by
            // construction.
            let conn = fleet.conn_mut(i).expect("participating member has a conn");
            conn.set_read_timeout(Some(remaining)).ok();
            match conn.recv() {
                Ok(Frame::Update(update)) if update_matches(&update, i, round) => {
                    conn.set_read_timeout(None).ok();
                    updates.push(ClientUpdate::new(
                        i,
                        update.params,
                        update.num_samples as usize,
                    ));
                }
                Ok(Frame::UpdateDelta(update))
                    if delta_update_matches(&update, i, round)
                        && !matches!(update.repr, safeloc_fl::DeltaRepr::Dense) =>
                {
                    conn.set_read_timeout(None).ok();
                    // Re-materialize exactly what crossed the wire:
                    // `GM + decode(repr)` — the same parameters the
                    // compressing client carries forward locally.
                    // panic-ok: decode only fails for Dense reprs, and
                    // this arm is reached only for non-dense ones.
                    let decoded = update
                        .repr
                        .decode(gm_params.num_params())
                        .expect("non-dense repr always decodes");
                    let mut params = gm_params.clone();
                    params.add_flat(&decoded);
                    updates.push(ClientUpdate::with_repr(
                        i,
                        params,
                        update.num_samples as usize,
                        update.repr,
                    ));
                }
                Err(WireError::Timeout) => {
                    // Hung or trickling past the deadline: a straggler.
                    // The stream may sit mid-frame, so the connection is
                    // unusable from here on.
                    crate::metrics::wire_metrics().on_straggler();
                    fleet.kill(i);
                    entry.1 = Availability::Straggles;
                }
                _ => {
                    // Disconnected, or answered with the wrong frame.
                    crate::metrics::wire_metrics().on_dropout();
                    fleet.kill(i);
                    entry.1 = Availability::DropsOut;
                }
            }
        }
        drop(fleet);

        let effective_plan = RoundPlan::new(effective);
        let timer: RoundSplit = timer.split();
        let outcome = self.aggregator.aggregate(&gm_params, &updates);
        let stages = self.aggregator.take_stage_telemetry();
        // panic-ok: aggregate() folds updates that were each validated
        // against the GM architecture, so the outcome always loads back.
        self.gm
            .load(&outcome.params)
            .expect("aggregator preserves architecture");
        let report = timer.finish(
            round,
            self.name,
            clients,
            &effective_plan,
            &updates,
            &outcome,
            stages,
        );
        self.rounds_run += 1;
        report
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.gm.predict(x)
    }

    fn num_params(&self) -> usize {
        self.gm.num_params()
    }

    fn global_params(&self) -> NamedParams {
        self.gm.snapshot()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(&mut self, aggregator: Box<dyn Aggregator>) -> Result<(), String> {
        self.aggregator = aggregator;
        Ok(())
    }
}

/// An update is only credited to the client and round it claims.
fn update_matches(update: &UpdateFrame, client: usize, round: usize) -> bool {
    update.client_id == client as u64 && update.round == round as u32
}

/// Same credit rule for compressed updates.
fn delta_update_matches(update: &DeltaUpdateFrame, client: usize, round: usize) -> bool {
    update.client_id == client as u64 && update.round == round as u32
}
