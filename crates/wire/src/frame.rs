//! The SAFELOC wire format: compact, versioned, length-prefixed binary
//! frames for serving traffic and federated round control.
//!
//! # Framing
//!
//! Every message on a stream is one frame:
//!
//! ```text
//! [ len: u32 LE ][ tag: u8 ][ payload: len-1 bytes ]
//! ```
//!
//! `len` counts the tag byte plus the payload, so a reader pulls exactly
//! 4 + `len` bytes per frame. Frames longer than [`MAX_FRAME_LEN`] are
//! rejected before any allocation — a hostile or corrupt peer cannot make
//! the server reserve gigabytes from a 4-byte header.
//!
//! # Versioning
//!
//! Connections open with an explicit [`Frame::Hello`] / [`Frame::HelloAck`]
//! exchange carrying [`WIRE_SCHEMA`]. A peer speaking a different schema
//! gets a typed [`WireError::SchemaVersion`] (and, on the server, an
//! [`Frame::Error`] frame) instead of garbled payload decodes later.
//!
//! # Dense frames vs. compressed delta frames (schema v2)
//!
//! By default, update and GM-broadcast frames carry [`NamedParams`] as raw
//! `f32` LE words — *not* as deltas. `f32` addition is not invertible, so
//! a delta-encoded update (`LM − GM` re-added server-side) would break the
//! repo's bitwise-trajectory invariant; the full local model round-trips
//! exactly.
//!
//! Schema v2 adds the *opt-in* [`Frame::UpdateDelta`] frame: a client that
//! has chosen lossy compression (top-k or int8 quantization, with
//! client-side error feedback) uploads only its encoded
//! [`DeltaRepr`], shrinking the upload from `4·d`
//! bytes to `O(k)`. The compressing client *re-materializes* its own
//! parameters as `GM + decode(encode(δ))` before training the next round,
//! and the server does the same on receipt — so both sides, and every
//! defense, see exactly the weights that crossed the wire. Dense sessions
//! never produce these frames and keep their bitwise trajectories.
//!
//! All decoding is total: any malformed input yields a typed
//! [`WireError`], never a panic — pinned by the proptest suite in
//! `tests/frame_robustness.rs`.

use safeloc_fl::DeltaRepr;
use safeloc_nn::{Matrix, NamedParams};

/// Wire schema version spoken by this build. v2 added the compressed
/// [`Frame::UpdateDelta`] frame; v3 added the telemetry-exposition
/// [`Frame::MetricsRequest`] / [`Frame::MetricsResponse`] pair.
pub const WIRE_SCHEMA: u32 = 3;

/// Oldest peer schema this build still speaks. Handshakes negotiate
/// `min(ours, theirs)` as long as the peer is in
/// `MIN_WIRE_SCHEMA..=WIRE_SCHEMA`; v3-only frames (the metrics pair)
/// are rejected as protocol errors on a connection negotiated below v3.
pub const MIN_WIRE_SCHEMA: u32 = 2;

/// Hard cap on `tag + payload` length (16 MiB). Large enough for a
/// paper-scale model update (~100k parameters ≈ 400 KiB), small enough
/// that a corrupt length prefix cannot trigger a huge allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Error-frame code: schema version mismatch at handshake.
pub const ERR_SCHEMA: u16 = 1;
/// Error-frame code: the peer sent a frame we could not decode.
pub const ERR_MALFORMED: u16 = 2;
/// Error-frame code: the serving layer rejected the request.
pub const ERR_SERVE: u16 = 3;
/// Error-frame code: a well-formed frame arrived out of protocol order.
pub const ERR_PROTOCOL: u16 = 4;

/// Typed decode/transport error. Every malformed input maps here — wire
/// code never panics on peer-controlled bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Socket-level failure (connect, read, write, EOF mid-frame).
    Io(String),
    /// The buffer ended before the frame did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it had.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Claimed frame length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// The tag byte names no known frame type.
    UnknownTag(u8),
    /// The payload decoded structurally but carried nonsense (bad UTF-8,
    /// overflowing tensor shape, unknown enum discriminant, trailing
    /// bytes).
    BadPayload(String),
    /// The peer speaks a different wire schema.
    SchemaVersion {
        /// Our schema version.
        ours: u32,
        /// The peer's.
        theirs: u32,
    },
    /// The peer reported an error frame.
    Peer {
        /// Machine-readable code (`ERR_*`).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// A well-formed frame arrived where the protocol does not allow it.
    Protocol(String),
    /// A read deadline expired before a full frame arrived.
    Timeout,
}

impl WireError {
    /// Short variant name, used as the `kind` label of the
    /// `wire_errors_total` telemetry counter.
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::Io(_) => "Io",
            WireError::Truncated { .. } => "Truncated",
            WireError::Oversized { .. } => "Oversized",
            WireError::UnknownTag(_) => "UnknownTag",
            WireError::BadPayload(_) => "BadPayload",
            WireError::SchemaVersion { .. } => "SchemaVersion",
            WireError::Peer { .. } => "Peer",
            WireError::Protocol(_) => "Protocol",
            WireError::Timeout => "Timeout",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "wire I/O error: {msg}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds cap {max}")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::BadPayload(msg) => write!(f, "bad frame payload: {msg}"),
            WireError::SchemaVersion { ours, theirs } => {
                write!(
                    f,
                    "wire schema mismatch: we speak v{ours}, peer speaks v{theirs}"
                )
            }
            WireError::Peer { code, message } => {
                write!(f, "peer error {code}: {message}")
            }
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            WireError::Timeout => write!(f, "read deadline expired"),
        }
    }
}

impl std::error::Error for WireError {}

/// One client model update in flight: the full local model plus the
/// metadata the defense layer and the reports need.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateFrame {
    /// Client identifier (fleet index).
    pub client_id: u64,
    /// Round the update belongs to.
    pub round: u32,
    /// Building the client localizes in.
    pub building: u32,
    /// Device class string, for the per-device serving registry.
    pub device_class: String,
    /// Local fingerprints the update trained on.
    pub num_samples: u64,
    /// The full local model (not a delta — see the module docs).
    pub params: NamedParams,
}

/// One *compressed* client update in flight: the encoded delta
/// representation plus the same metadata as [`UpdateFrame`]. The server
/// re-materializes full parameters as `GM + decode(repr)` (see the module
/// docs).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaUpdateFrame {
    /// Client identifier (fleet index).
    pub client_id: u64,
    /// Round the update belongs to.
    pub round: u32,
    /// Building the client localizes in.
    pub building: u32,
    /// Device class string, for the per-device serving registry.
    pub device_class: String,
    /// Local fingerprints the update trained on.
    pub num_samples: u64,
    /// The compressed delta. [`DeltaRepr::Dense`] is legal on the wire but
    /// carries no coefficients — servers reject it as a protocol error
    /// (dense updates travel as [`Frame::Update`]).
    pub repr: DeltaRepr,
}

/// Availability a round plan assigns a cohort member, as sent on the wire.
/// Mirrors `safeloc_fl::Availability` (codes 0/1/2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAvailability {
    /// Trains and delivers an update.
    Participates,
    /// Invited but silent this round.
    DropsOut,
    /// Delivers after the round deadline.
    Straggles,
}

impl WireAvailability {
    fn code(self) -> u8 {
        match self {
            WireAvailability::Participates => 0,
            WireAvailability::DropsOut => 1,
            WireAvailability::Straggles => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(WireAvailability::Participates),
            1 => Ok(WireAvailability::DropsOut),
            2 => Ok(WireAvailability::Straggles),
            other => Err(WireError::BadPayload(format!(
                "unknown availability code {other}"
            ))),
        }
    }
}

/// Every message the protocol speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener: the sender's wire schema.
    Hello {
        /// Schema version the sender speaks.
        schema: u32,
    },
    /// Server's handshake acceptance, echoing its schema.
    HelloAck {
        /// Schema version the server speaks.
        schema: u32,
    },
    /// A federated client registering itself with the round server.
    Join {
        /// The client's fleet index.
        client_index: u32,
    },
    /// Invitation into a round's cohort, with the server's deadline.
    CohortInvite {
        /// Round number.
        round: u32,
        /// The invited client's fleet index.
        client_index: u32,
        /// Server-side round deadline in milliseconds.
        deadline_ms: u32,
    },
    /// The full round plan: every cohort member and its availability.
    RoundPlan {
        /// Round number.
        round: u32,
        /// `(client_index, availability)` pairs, ascending by index.
        cohort: Vec<(u32, WireAvailability)>,
    },
    /// The global model pushed to a training client.
    GmBroadcast {
        /// Round number.
        round: u32,
        /// The round's training-seed salt (`(rounds_run + 1) << 16`),
        /// so the remote client derives bitwise the in-process per-round
        /// seed `client.seed ^ round_salt`.
        round_salt: u64,
        /// Global model parameters.
        params: NamedParams,
    },
    /// A client's trained update.
    Update(UpdateFrame),
    /// A client's trained update in compressed delta form (schema v2,
    /// opt-in — see the module docs).
    UpdateDelta(DeltaUpdateFrame),
    /// A localization request.
    LocalizeReq {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Building to localize in.
        building: u32,
        /// Reported device name.
        device: String,
        /// Raw RSS row in dBm.
        rss_dbm: Vec<f32>,
    },
    /// A localization response.
    LocalizeResp {
        /// Correlation id of the request.
        id: u64,
        /// Predicted reference-point label.
        label: u32,
        /// Physical coordinates of the label, if geometry is registered.
        position: Option<(f32, f32)>,
        /// Device class the request was routed under.
        device_class: String,
        /// Version of the model snapshot that served the request.
        model_version: u64,
    },
    /// Ask the peer for a telemetry snapshot (schema v3).
    MetricsRequest,
    /// The peer's telemetry snapshot in Prometheus text exposition
    /// format (schema v3). Carried as a u32-length UTF-8 string: a busy
    /// registry's exposition easily exceeds the u16 budget of the short
    /// string fields.
    MetricsResponse {
        /// Prometheus text exposition of the peer's registry.
        text: String,
    },
    /// Typed failure notification (see the `ERR_*` codes).
    Error {
        /// Machine-readable code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Orderly goodbye.
    Bye,
}

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_JOIN: u8 = 0x03;
const TAG_COHORT_INVITE: u8 = 0x04;
const TAG_ROUND_PLAN: u8 = 0x05;
const TAG_GM_BROADCAST: u8 = 0x06;
const TAG_UPDATE: u8 = 0x07;
const TAG_LOCALIZE_REQ: u8 = 0x08;
const TAG_LOCALIZE_RESP: u8 = 0x09;
const TAG_UPDATE_DELTA: u8 = 0x0A;
const TAG_METRICS_REQ: u8 = 0x0B;
const TAG_METRICS_RESP: u8 = 0x0C;
const TAG_ERROR: u8 = 0x0E;
const TAG_BYE: u8 = 0x0F;

impl Frame {
    /// Short name of the frame type, for protocol-violation messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::HelloAck { .. } => "HelloAck",
            Frame::Join { .. } => "Join",
            Frame::CohortInvite { .. } => "CohortInvite",
            Frame::RoundPlan { .. } => "RoundPlan",
            Frame::GmBroadcast { .. } => "GmBroadcast",
            Frame::Update(_) => "Update",
            Frame::UpdateDelta(_) => "UpdateDelta",
            Frame::LocalizeReq { .. } => "LocalizeReq",
            Frame::LocalizeResp { .. } => "LocalizeResp",
            Frame::MetricsRequest => "MetricsRequest",
            Frame::MetricsResponse { .. } => "MetricsResponse",
            Frame::Error { .. } => "Error",
            Frame::Bye => "Bye",
        }
    }

    /// Encodes the frame as its full wire bytes: length prefix, tag,
    /// payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        self.encode_body(&mut body);
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Tag byte followed by payload (everything after the length prefix).
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { schema } => {
                out.push(TAG_HELLO);
                put_u32(out, *schema);
            }
            Frame::HelloAck { schema } => {
                out.push(TAG_HELLO_ACK);
                put_u32(out, *schema);
            }
            Frame::Join { client_index } => {
                out.push(TAG_JOIN);
                put_u32(out, *client_index);
            }
            Frame::CohortInvite {
                round,
                client_index,
                deadline_ms,
            } => {
                out.push(TAG_COHORT_INVITE);
                put_u32(out, *round);
                put_u32(out, *client_index);
                put_u32(out, *deadline_ms);
            }
            Frame::RoundPlan { round, cohort } => {
                out.push(TAG_ROUND_PLAN);
                put_u32(out, *round);
                put_u32(out, cohort.len() as u32);
                for (index, availability) in cohort {
                    put_u32(out, *index);
                    out.push(availability.code());
                }
            }
            Frame::GmBroadcast {
                round,
                round_salt,
                params,
            } => {
                out.push(TAG_GM_BROADCAST);
                put_u32(out, *round);
                put_u64(out, *round_salt);
                put_params(out, params);
            }
            Frame::Update(update) => {
                out.push(TAG_UPDATE);
                put_u64(out, update.client_id);
                put_u32(out, update.round);
                put_u32(out, update.building);
                put_str(out, &update.device_class);
                put_u64(out, update.num_samples);
                put_params(out, &update.params);
            }
            Frame::UpdateDelta(update) => {
                out.push(TAG_UPDATE_DELTA);
                put_u64(out, update.client_id);
                put_u32(out, update.round);
                put_u32(out, update.building);
                put_str(out, &update.device_class);
                put_u64(out, update.num_samples);
                put_delta_repr(out, &update.repr);
            }
            Frame::LocalizeReq {
                id,
                building,
                device,
                rss_dbm,
            } => {
                out.push(TAG_LOCALIZE_REQ);
                put_u64(out, *id);
                put_u32(out, *building);
                put_str(out, device);
                put_u32(out, rss_dbm.len() as u32);
                for v in rss_dbm {
                    put_f32(out, *v);
                }
            }
            Frame::LocalizeResp {
                id,
                label,
                position,
                device_class,
                model_version,
            } => {
                out.push(TAG_LOCALIZE_RESP);
                put_u64(out, *id);
                put_u32(out, *label);
                match position {
                    Some((x, y)) => {
                        out.push(1);
                        put_f32(out, *x);
                        put_f32(out, *y);
                    }
                    None => out.push(0),
                }
                put_str(out, device_class);
                put_u64(out, *model_version);
            }
            Frame::MetricsRequest => out.push(TAG_METRICS_REQ),
            Frame::MetricsResponse { text } => {
                out.push(TAG_METRICS_RESP);
                put_lstr(out, text);
            }
            Frame::Error { code, message } => {
                out.push(TAG_ERROR);
                put_u16(out, *code);
                put_str(out, message);
            }
            Frame::Bye => out.push(TAG_BYE),
        }
    }

    /// Decodes one frame from the start of `bytes` (which must begin with
    /// the length prefix). Returns the frame and the total bytes consumed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] decode variant; never panics, whatever the input.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        if bytes.len() < 4 {
            return Err(WireError::Truncated {
                needed: 4,
                have: bytes.len(),
            });
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        if bytes.len() < 4 + len {
            return Err(WireError::Truncated {
                needed: 4 + len,
                have: bytes.len(),
            });
        }
        let frame = Frame::decode_body(&bytes[4..4 + len])?;
        Ok((frame, 4 + len))
    }

    /// Decodes a tag + payload body (everything after the length prefix).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] decode variant; never panics, whatever the input.
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(body);
        let tag = r.u8()?;
        let frame = match tag {
            TAG_HELLO => Frame::Hello { schema: r.u32()? },
            TAG_HELLO_ACK => Frame::HelloAck { schema: r.u32()? },
            TAG_JOIN => Frame::Join {
                client_index: r.u32()?,
            },
            TAG_COHORT_INVITE => Frame::CohortInvite {
                round: r.u32()?,
                client_index: r.u32()?,
                deadline_ms: r.u32()?,
            },
            TAG_ROUND_PLAN => {
                let round = r.u32()?;
                let n = r.u32()? as usize;
                // Each member costs 5 bytes; reject counts the remaining
                // payload cannot possibly hold before allocating.
                r.check_capacity(n, 5)?;
                let mut cohort = Vec::with_capacity(n);
                for _ in 0..n {
                    let index = r.u32()?;
                    let availability = WireAvailability::from_code(r.u8()?)?;
                    cohort.push((index, availability));
                }
                Frame::RoundPlan { round, cohort }
            }
            TAG_GM_BROADCAST => Frame::GmBroadcast {
                round: r.u32()?,
                round_salt: r.u64()?,
                params: r.params()?,
            },
            TAG_UPDATE => Frame::Update(UpdateFrame {
                client_id: r.u64()?,
                round: r.u32()?,
                building: r.u32()?,
                device_class: r.string()?,
                num_samples: r.u64()?,
                params: r.params()?,
            }),
            TAG_UPDATE_DELTA => Frame::UpdateDelta(DeltaUpdateFrame {
                client_id: r.u64()?,
                round: r.u32()?,
                building: r.u32()?,
                device_class: r.string()?,
                num_samples: r.u64()?,
                repr: r.delta_repr()?,
            }),
            TAG_LOCALIZE_REQ => {
                let id = r.u64()?;
                let building = r.u32()?;
                let device = r.string()?;
                let n = r.u32()? as usize;
                r.check_capacity(n, 4)?;
                let mut rss_dbm = Vec::with_capacity(n);
                for _ in 0..n {
                    rss_dbm.push(r.f32()?);
                }
                Frame::LocalizeReq {
                    id,
                    building,
                    device,
                    rss_dbm,
                }
            }
            TAG_LOCALIZE_RESP => {
                let id = r.u64()?;
                let label = r.u32()?;
                let position = match r.u8()? {
                    0 => None,
                    1 => Some((r.f32()?, r.f32()?)),
                    other => {
                        return Err(WireError::BadPayload(format!("bad position flag {other}")))
                    }
                };
                Frame::LocalizeResp {
                    id,
                    label,
                    position,
                    device_class: r.string()?,
                    model_version: r.u64()?,
                }
            }
            TAG_METRICS_REQ => Frame::MetricsRequest,
            TAG_METRICS_RESP => Frame::MetricsResponse { text: r.lstring()? },
            TAG_ERROR => Frame::Error {
                code: r.u16()?,
                message: r.string()?,
            },
            TAG_BYE => Frame::Bye,
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(frame)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// A long string: u32 length prefix. Device names fit in [`put_str`]'s
/// u16 budget; a metrics exposition does not.
fn put_lstr(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Delta-representation discriminant bytes (schema v2).
const REPR_DENSE: u8 = 0;
const REPR_TOP_K: u8 = 1;
const REPR_Q8: u8 = 2;

/// A [`DeltaRepr`] as discriminant byte + coefficients: top-k as `u32`
/// kept-count then `(u32 index, f32 value)` pairs (ascending indices, the
/// compressor's canonical layout); int8 as `f32` scale, `u32` count, raw
/// `i8` bytes.
fn put_delta_repr(out: &mut Vec<u8>, repr: &DeltaRepr) {
    match repr {
        DeltaRepr::Dense => out.push(REPR_DENSE),
        DeltaRepr::TopK { indices, values, k } => {
            out.push(REPR_TOP_K);
            put_u32(out, *k as u32);
            put_u32(out, indices.len() as u32);
            for (i, v) in indices.iter().zip(values) {
                put_u32(out, *i);
                put_f32(out, *v);
            }
        }
        DeltaRepr::QuantizedI8 { scale, values } => {
            out.push(REPR_Q8);
            put_f32(out, *scale);
            put_u32(out, values.len() as u32);
            out.extend(values.iter().map(|&q| q as u8));
        }
    }
}

/// Tensors as `u32` count, then per tensor: `u16` name length, UTF-8
/// name, `u32` rows, `u32` cols, `rows·cols` `f32` LE words.
fn put_params(out: &mut Vec<u8>, params: &NamedParams) {
    put_u32(out, params.len() as u32);
    for (name, tensor) in params.iter() {
        put_str(out, name);
        put_u32(out, tensor.rows() as u32);
        put_u32(out, tensor.cols() as u32);
        for v in tensor.as_slice() {
            put_f32(out, *v);
        }
    }
}

/// Cursor over a frame body; every read is bounds-checked into
/// [`WireError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::BadPayload("length overflow".to_string()))?;
        if end > self.buf.len() {
            return Err(WireError::Truncated {
                needed: end,
                have: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Rejects a claimed element count the remaining bytes cannot hold —
    /// the guard that keeps a hostile count from pre-allocating gigabytes.
    fn check_capacity(&self, count: usize, min_elem_bytes: usize) -> Result<(), WireError> {
        let needed = count
            .checked_mul(min_elem_bytes)
            .ok_or_else(|| WireError::BadPayload("element count overflow".to_string()))?;
        let have = self.buf.len() - self.pos;
        if needed > have {
            return Err(WireError::Truncated {
                needed: self.pos + needed,
                have: self.buf.len(),
            });
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::BadPayload(format!("invalid UTF-8 string: {e}")))
    }

    /// Counterpart of `put_lstr`: u32-length string. `take` bounds the
    /// claimed length against the remaining payload before allocating.
    fn lstring(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::BadPayload(format!("invalid UTF-8 string: {e}")))
    }

    fn params(&mut self) -> Result<NamedParams, WireError> {
        let count = self.u32()? as usize;
        // Cheapest possible tensor: empty name + shape header = 10 bytes.
        self.check_capacity(count, 10)?;
        let mut tensors = Vec::with_capacity(count);
        for _ in 0..count {
            let name = self.string()?;
            let rows = self.u32()? as usize;
            let cols = self.u32()? as usize;
            let elems = rows
                .checked_mul(cols)
                .ok_or_else(|| WireError::BadPayload("tensor shape overflow".to_string()))?;
            self.check_capacity(elems, 4)?;
            let mut data = Vec::with_capacity(elems);
            for _ in 0..elems {
                data.push(self.f32()?);
            }
            let tensor = Matrix::from_vec(rows, cols, data)
                .map_err(|e| WireError::BadPayload(format!("bad tensor shape: {e:?}")))?;
            tensors.push((name, tensor));
        }
        Ok(tensors.into_iter().collect())
    }

    fn delta_repr(&mut self) -> Result<DeltaRepr, WireError> {
        match self.u8()? {
            REPR_DENSE => Ok(DeltaRepr::Dense),
            REPR_TOP_K => {
                let k = self.u32()? as usize;
                let count = self.u32()? as usize;
                // Each kept coefficient costs 8 bytes on the wire.
                self.check_capacity(count, 8)?;
                let mut indices = Vec::with_capacity(count);
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    indices.push(self.u32()?);
                    values.push(self.f32()?);
                }
                Ok(DeltaRepr::TopK { indices, values, k })
            }
            REPR_Q8 => {
                let scale = self.f32()?;
                let count = self.u32()? as usize;
                self.check_capacity(count, 1)?;
                let values = self.take(count)?.iter().map(|&b| b as i8).collect();
                Ok(DeltaRepr::QuantizedI8 { scale, values })
            }
            other => Err(WireError::BadPayload(format!(
                "unknown delta repr discriminant {other}"
            ))),
        }
    }

    /// Rejects trailing bytes: a frame must decode exactly.
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::BadPayload(format!(
                "{} trailing bytes after frame",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::{Activation, HasParams, Sequential};

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let (back, used) = Frame::decode(&bytes).expect("decode");
        assert_eq!(used, bytes.len(), "frame must consume its exact bytes");
        assert_eq!(back, frame);
    }

    #[test]
    fn every_frame_type_round_trips() {
        let params = Sequential::mlp(&[4, 3, 2], Activation::Relu, 9).snapshot();
        round_trip(Frame::Hello {
            schema: WIRE_SCHEMA,
        });
        round_trip(Frame::HelloAck { schema: 7 });
        round_trip(Frame::Join { client_index: 3 });
        round_trip(Frame::CohortInvite {
            round: 2,
            client_index: 5,
            deadline_ms: 1500,
        });
        round_trip(Frame::RoundPlan {
            round: 1,
            cohort: vec![
                (0, WireAvailability::Participates),
                (1, WireAvailability::DropsOut),
                (2, WireAvailability::Straggles),
            ],
        });
        round_trip(Frame::GmBroadcast {
            round: 4,
            round_salt: 5 << 16,
            params: params.clone(),
        });
        round_trip(Frame::Update(UpdateFrame {
            client_id: 11,
            round: 4,
            building: 0,
            device_class: "HTC U11".to_string(),
            num_samples: 120,
            params,
        }));
        round_trip(Frame::UpdateDelta(DeltaUpdateFrame {
            client_id: 12,
            round: 4,
            building: 0,
            device_class: "Pixel 2".to_string(),
            num_samples: 80,
            repr: DeltaRepr::TopK {
                indices: vec![0, 7, 31],
                values: vec![0.5, -0.25, 1.0],
                k: 3,
            },
        }));
        round_trip(Frame::UpdateDelta(DeltaUpdateFrame {
            client_id: 13,
            round: 4,
            building: 0,
            device_class: "S7".to_string(),
            num_samples: 64,
            repr: DeltaRepr::QuantizedI8 {
                scale: 0.01,
                values: vec![-127, 0, 64, 127],
            },
        }));
        round_trip(Frame::LocalizeReq {
            id: 99,
            building: 1,
            device: "S7".to_string(),
            rss_dbm: vec![-41.5, -87.0, -100.0],
        });
        round_trip(Frame::LocalizeResp {
            id: 99,
            label: 17,
            position: Some((3.25, -1.5)),
            device_class: "*".to_string(),
            model_version: 6,
        });
        round_trip(Frame::LocalizeResp {
            id: 100,
            label: 0,
            position: None,
            device_class: "*".to_string(),
            model_version: 6,
        });
        round_trip(Frame::MetricsRequest);
        round_trip(Frame::MetricsResponse {
            text: "# TYPE serve_requests_total counter\nserve_requests_total{building=\"1\"} 3\n"
                .to_string(),
        });
        round_trip(Frame::Error {
            code: ERR_SERVE,
            message: "unknown building 9".to_string(),
        });
        round_trip(Frame::Bye);
    }

    #[test]
    fn metrics_response_carries_more_than_a_u16_of_text() {
        // A busy registry's exposition exceeds the short-string budget;
        // the metrics frame must carry it intact.
        let text = "x".repeat(u16::MAX as usize + 100);
        let frame = Frame::MetricsResponse { text: text.clone() };
        let (back, _) = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back, Frame::MetricsResponse { text });
    }

    #[test]
    fn hostile_metrics_length_is_bounded_by_the_payload() {
        let mut body = vec![TAG_METRICS_RESP];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(b"tiny");
        assert!(matches!(
            Frame::decode_body(&body),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn non_utf8_metrics_text_is_a_typed_error() {
        let mut body = vec![TAG_METRICS_RESP];
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            Frame::decode_body(&body),
            Err(WireError::BadPayload(msg)) if msg.contains("UTF-8")
        ));
    }

    #[test]
    fn params_round_trip_is_bitwise() {
        let snap = Sequential::mlp(&[6, 5, 4], Activation::Relu, 3).snapshot();
        let frame = Frame::GmBroadcast {
            round: 0,
            round_salt: 1 << 16,
            params: snap.clone(),
        };
        let (back, _) = Frame::decode(&frame.encode()).unwrap();
        match back {
            Frame::GmBroadcast { params, .. } => assert_eq!(params, snap),
            other => panic!("wrong frame {}", other.kind()),
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut bytes = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        bytes.push(TAG_BYE);
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::Oversized {
                len: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::Bye.encode();
        // Grow the declared length and append garbage inside the frame.
        bytes[0] = 3;
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadPayload(_))
        ));
    }

    #[test]
    fn hostile_counts_cannot_preallocate() {
        // A RoundPlan claiming u32::MAX members in a 10-byte payload.
        let mut body = vec![TAG_ROUND_PLAN];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode_body(&body),
            Err(WireError::Truncated { .. })
        ));
        // An UpdateDelta claiming u32::MAX top-k coefficients.
        let mut body = vec![TAG_UPDATE_DELTA];
        body.extend_from_slice(&0u64.to_le_bytes()); // client_id
        body.extend_from_slice(&0u32.to_le_bytes()); // round
        body.extend_from_slice(&0u32.to_le_bytes()); // building
        body.extend_from_slice(&0u16.to_le_bytes()); // empty device class
        body.extend_from_slice(&0u64.to_le_bytes()); // num_samples
        body.push(REPR_TOP_K);
        body.extend_from_slice(&3u32.to_le_bytes()); // k
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile count
        assert!(matches!(
            Frame::decode_body(&body),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_delta_repr_discriminant_is_a_typed_error() {
        let good = Frame::UpdateDelta(DeltaUpdateFrame {
            client_id: 1,
            round: 0,
            building: 0,
            device_class: String::new(),
            num_samples: 1,
            repr: DeltaRepr::Dense,
        })
        .encode();
        let mut body = good[4..].to_vec();
        let last = body.len() - 1;
        body[last] = 9; // stomp the repr discriminant
        assert!(matches!(
            Frame::decode_body(&body),
            Err(WireError::BadPayload(msg)) if msg.contains("delta repr")
        ));
    }

    #[test]
    fn compressed_update_frames_shrink_with_k() {
        let d = 4096usize;
        let dense_payload = 4 * d;
        let frame = |k: usize| {
            Frame::UpdateDelta(DeltaUpdateFrame {
                client_id: 0,
                round: 0,
                building: 0,
                device_class: String::new(),
                num_samples: 10,
                repr: DeltaRepr::TopK {
                    indices: (0..k as u32).collect(),
                    values: vec![0.5; k],
                    k,
                },
            })
            .encode()
            .len()
        };
        assert!(frame(41) < dense_payload / 10, "k=1% should shrink >10x");
        assert!(frame(410) < dense_payload / 2);
        assert!(frame(410) > frame(41), "wire bytes grow with k");
    }
}
