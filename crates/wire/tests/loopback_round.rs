//! Cross-process federated rounds over loopback TCP.
//!
//! The headline pin: with fault injection off, a wire-transported round —
//! every client its own OS process (`fl_client`), updates crossing a real
//! socket — reproduces the in-process engine's GM trajectory **bitwise**,
//! round after round. Then the failure half: a transport drop surfaces as
//! `DroppedOut`, a latency spike past the server deadline surfaces as
//! `Straggled`, and in both cases aggregation proceeds with the survivors
//! instead of stalling.

use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
use safeloc_fl::report::ClientOutcome;
use safeloc_fl::{Client, DefensePipeline, Framework, RoundPlan, SequentialFlServer, ServerConfig};
use safeloc_wire::{FaultProfile, RemoteFlServer, RemoteFleet};
use std::process::{Child, Command};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const FLEET_SEED: u64 = 0;
const DATA_SEED: u64 = 3;

fn dataset() -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(DATA_SEED), &DatasetConfig::tiny(), DATA_SEED)
}

fn dims(data: &BuildingDataset) -> Vec<usize> {
    vec![data.building.num_aps(), 16, data.building.num_rps()]
}

/// Spawns one `fl_client` process for fleet slot `client`.
fn spawn_client(
    addr: &str,
    client: usize,
    dims: &[usize],
    fault: Option<&FaultProfile>,
    delta: Option<&str>,
) -> Child {
    let dims_arg = dims
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fl_client"));
    cmd.args(["--addr", addr, "--client", &client.to_string()])
        .args(["--dims", &dims_arg])
        .args(["--dataset", "tiny"])
        .args(["--building-seed", &DATA_SEED.to_string()])
        .args(["--data-seed", &DATA_SEED.to_string()])
        .args(["--fleet-seed", &FLEET_SEED.to_string()])
        .args(["--local", "tiny"]);
    if let Some(profile) = fault {
        cmd.args(["--fault", &serde_json::to_string(profile).unwrap()]);
    }
    if let Some(spec) = delta {
        cmd.args(["--delta", spec]);
    }
    cmd.spawn().expect("spawn fl_client")
}

struct RemoteHarness {
    server: RemoteFlServer,
    fleet: Arc<Mutex<RemoteFleet>>,
    children: Vec<Child>,
    mirror: Vec<Client>,
}

/// Boots a full remote fleet: binds the round server, spawns one process
/// per client (with optional per-client fault profiles), and waits for
/// every join.
fn remote_harness(
    data: &BuildingDataset,
    deadline: Duration,
    fault_for: impl Fn(usize) -> Option<FaultProfile>,
) -> RemoteHarness {
    remote_harness_with_delta(data, deadline, fault_for, None)
}

fn remote_harness_with_delta(
    data: &BuildingDataset,
    deadline: Duration,
    fault_for: impl Fn(usize) -> Option<FaultProfile>,
    delta: Option<&str>,
) -> RemoteHarness {
    let mirror = Client::from_dataset(data, FLEET_SEED);
    let dims = dims(data);
    let mut fleet = RemoteFleet::bind(mirror.len()).unwrap();
    let addr = fleet.addr().to_string();
    let children: Vec<Child> = (0..mirror.len())
        .map(|i| spawn_client(&addr, i, &dims, fault_for(i).as_ref(), delta))
        .collect();
    fleet.accept_all(Duration::from_secs(60)).unwrap();
    assert_eq!(fleet.connected(), mirror.len());
    let fleet = Arc::new(Mutex::new(fleet));
    let mut server = RemoteFlServer::new(
        &dims,
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
        Arc::clone(&fleet),
        deadline,
    );
    server.pretrain(&data.server_train);
    RemoteHarness {
        server,
        fleet,
        children,
        mirror,
    }
}

impl RemoteHarness {
    /// Says goodbye to the fleet and reaps the child processes.
    fn teardown(self) {
        self.fleet.lock().unwrap().broadcast_bye();
        for mut child in self.children {
            // A faulted client may be sleeping out a multi-second injected
            // latency; don't let it hold the test hostage.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Fault injection off: three wire-transported rounds reproduce the
/// in-process GM trajectory bitwise, round by round.
#[test]
fn loopback_round_is_bitwise_identical_to_in_process() {
    let data = dataset();
    let dims = dims(&data);

    let mut inproc = SequentialFlServer::new(
        &dims,
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    inproc.pretrain(&data.server_train);
    let mut local_fleet = Client::from_dataset(&data, FLEET_SEED);

    let mut remote = remote_harness(&data, Duration::from_secs(120), |_| None);
    assert_eq!(
        remote.server.global_params(),
        inproc.global_params(),
        "pretrain must already agree before any wire traffic"
    );

    let n = local_fleet.len();
    for round in 0..3 {
        let plan = RoundPlan::full(n);
        let local_report = inproc.run_round(&mut local_fleet, &plan);
        let wire_report = remote.server.run_round(&mut remote.mirror, &plan);
        assert_eq!(
            remote.server.global_params(),
            inproc.global_params(),
            "GM diverged after round {round}"
        );
        assert_eq!(local_report.round, wire_report.round);
        // Same per-client story: everyone trained, same weights, same
        // sample counts — only wall-clock timings may differ.
        assert_eq!(local_report.clients, wire_report.clients);
    }

    // The transported trajectory actually moved (the pin is not vacuous).
    assert_ne!(
        remote.server.global_params(),
        SequentialFlServer::new(
            &dims,
            Box::new(DefensePipeline::fedavg()),
            ServerConfig::tiny()
        )
        .global_params()
    );
    remote.teardown();
}

/// Compressed rounds (`--delta topk:0.25`) cross the wire as
/// `UpdateDelta` frames and still reproduce the in-process compressed
/// trajectory bitwise — the error-feedback residual lives client-side in
/// both worlds, and the server re-materializes exactly what the
/// in-process engine's `build_update` produces.
#[test]
fn compressed_loopback_round_matches_the_in_process_compressed_fleet() {
    use safeloc_fl::{DeltaCompressor, DeltaSpec};

    let data = dataset();
    let dims = dims(&data);
    let spec = DeltaSpec::TopK { fraction: 0.25 };

    let mut inproc = SequentialFlServer::new(
        &dims,
        Box::new(DefensePipeline::fedavg()),
        ServerConfig::tiny(),
    );
    inproc.pretrain(&data.server_train);
    let mut local_fleet = Client::from_dataset(&data, FLEET_SEED);
    for client in &mut local_fleet {
        client.compressor = Some(DeltaCompressor::new(spec));
    }

    let mut remote =
        remote_harness_with_delta(&data, Duration::from_secs(120), |_| None, Some("topk:0.25"));

    let n = local_fleet.len();
    for round in 0..3 {
        let plan = RoundPlan::full(n);
        let local_report = inproc.run_round(&mut local_fleet, &plan);
        let wire_report = remote.server.run_round(&mut remote.mirror, &plan);
        assert_eq!(
            remote.server.global_params(),
            inproc.global_params(),
            "compressed GM diverged after round {round}"
        );
        assert_eq!(local_report.clients, wire_report.clients);
    }
    remote.teardown();
}

/// A client whose transport drops every round surfaces as `DroppedOut`;
/// the round still aggregates the survivors.
#[test]
fn transport_drop_becomes_dropout_and_does_not_stall_the_round() {
    let data = dataset();
    let victim = 1;
    let mut remote = remote_harness(&data, Duration::from_secs(120), |i| {
        (i == victim).then(|| FaultProfile::ideal().with_drops(1.0))
    });

    let n = remote.mirror.len();
    let before = remote.server.global_params();
    let plan = RoundPlan::full(n);
    let report = remote.server.run_round(&mut remote.mirror, &plan);

    assert_eq!(report.clients.len(), n);
    assert_eq!(report.clients[victim].outcome, ClientOutcome::DroppedOut);
    let trained = report
        .clients
        .iter()
        .filter(|c| matches!(c.outcome, ClientOutcome::Trained { .. }))
        .count();
    assert_eq!(trained, n - 1);
    assert_ne!(
        remote.server.global_params(),
        before,
        "the survivors' round must still move the GM"
    );
    remote.teardown();
}

/// A client stuck behind a huge injected latency misses the server-side
/// round deadline and surfaces as `Straggled` — a hung client cannot
/// stall aggregation.
#[test]
fn deadline_turns_a_hung_client_into_a_straggler() {
    let data = dataset();
    let victim = 0;
    let mut remote = remote_harness(&data, Duration::from_secs(4), |i| {
        (i == victim).then(|| FaultProfile::latency(120_000.0, 0.0, 11))
    });

    let n = remote.mirror.len();
    let plan = RoundPlan::full(n);
    let report = remote.server.run_round(&mut remote.mirror, &plan);

    assert_eq!(report.clients[victim].outcome, ClientOutcome::Straggled);
    let trained = report
        .clients
        .iter()
        .filter(|c| matches!(c.outcome, ClientOutcome::Trained { .. }))
        .count();
    assert_eq!(trained, n - 1);
    assert_eq!(remote.server.rounds_run(), 1);
    remote.teardown();
}
