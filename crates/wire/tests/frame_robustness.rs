//! Wire-format robustness: every frame type round-trips through its wire
//! bytes, and no malformed input — truncated, oversized, garbage, or
//! wrong-schema — ever panics either end. Decode failures must be typed
//! [`WireError`]s.

use proptest::prelude::*;
use safeloc_nn::{Activation, HasParams, Sequential};
use safeloc_wire::{
    Frame, FrameConn, UpdateFrame, WireAvailability, WireError, ERR_SCHEMA, MAX_FRAME_LEN,
    WIRE_SCHEMA,
};

/// Lowercase identifier from generated letter indices.
fn word(letters: Vec<usize>) -> String {
    letters
        .into_iter()
        .map(|i| char::from(b'a' + (i % 26) as u8))
        .collect()
}

/// Deterministic parameters for frames that carry tensors.
fn params(rows: usize, cols: usize, seed: u64) -> safeloc_nn::NamedParams {
    Sequential::mlp(&[rows, cols], Activation::Relu, seed).snapshot()
}

fn assert_round_trip(frame: &Frame) -> Result<(), TestCaseError> {
    let bytes = frame.encode();
    match Frame::decode(&bytes) {
        Ok((back, used)) => {
            prop_assert_eq!(&back, frame);
            prop_assert_eq!(used, bytes.len());
        }
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_frames_round_trip(schema in 0u32..u32::MAX, ack in any::<bool>()) {
        let frame = if ack {
            Frame::HelloAck { schema }
        } else {
            Frame::Hello { schema }
        };
        assert_round_trip(&frame)?;
    }

    #[test]
    fn join_and_invite_round_trip(
        round in 0u32..10_000,
        client in 0u32..10_000,
        deadline_ms in 0u32..600_000,
    ) {
        assert_round_trip(&Frame::Join { client_index: client })?;
        assert_round_trip(&Frame::CohortInvite { round, client_index: client, deadline_ms })?;
    }

    #[test]
    fn round_plan_round_trips(
        round in 0u32..1_000,
        members in prop::collection::vec(0usize..3, 9),
    ) {
        let cohort = members
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let availability = match a {
                    0 => WireAvailability::Participates,
                    1 => WireAvailability::DropsOut,
                    _ => WireAvailability::Straggles,
                };
                (i as u32, availability)
            })
            .collect();
        assert_round_trip(&Frame::RoundPlan { round, cohort })?;
    }

    #[test]
    fn gm_broadcast_and_update_round_trip_bitwise(
        round in 0u32..100,
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1_000,
        device in prop::collection::vec(0usize..26, 7),
        samples in 0u64..100_000,
    ) {
        let p = params(rows, cols, seed);
        assert_round_trip(&Frame::GmBroadcast {
            round,
            round_salt: (round as u64 + 1) << 16,
            params: p.clone(),
        })?;
        assert_round_trip(&Frame::Update(UpdateFrame {
            client_id: seed,
            round,
            building: 0,
            device_class: word(device),
            num_samples: samples,
            params: p,
        }))?;
    }

    #[test]
    fn localize_frames_round_trip(
        id in 0u64..u64::MAX,
        building in 0u32..64,
        device in prop::collection::vec(0usize..26, 5),
        rss in prop::collection::vec(-110.0f32..0.0, 12),
        label in 0u32..512,
        x in -50.0f32..50.0,
        y in -50.0f32..50.0,
        with_position in any::<bool>(),
        version in 0u64..1_000,
    ) {
        assert_round_trip(&Frame::LocalizeReq {
            id,
            building,
            device: word(device.clone()),
            rss_dbm: rss,
        })?;
        assert_round_trip(&Frame::LocalizeResp {
            id,
            label,
            position: if with_position { Some((x, y)) } else { None },
            device_class: word(device),
            model_version: version,
        })?;
    }

    #[test]
    fn error_and_bye_round_trip(code in 0u32..16, message in prop::collection::vec(0usize..26, 20)) {
        assert_round_trip(&Frame::Error { code: code as u16, message: word(message) })?;
        assert_round_trip(&Frame::Bye)?;
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error(
        cut_fraction in 0.0f64..1.0,
        seed in 0u64..50,
    ) {
        let frame = Frame::Update(UpdateFrame {
            client_id: 1,
            round: 2,
            building: 0,
            device_class: "phone".to_string(),
            num_samples: 10,
            params: params(3, 4, seed),
        });
        let bytes = frame.encode();
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        match Frame::decode(&bytes[..cut]) {
            Err(WireError::Truncated { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "expected Truncated at cut {cut}, got {other}"
                )))
            }
            Ok(_) => {
                return Err(TestCaseError::fail(format!(
                    "decode of a {cut}-byte prefix of a {}-byte frame succeeded",
                    bytes.len()
                )))
            }
        }
    }

    #[test]
    fn garbage_bytes_never_panic(
        len in 0usize..64,
        junk in prop::collection::vec(0u32..256, 64),
    ) {
        let bytes: Vec<u8> = junk.into_iter().take(len).map(|b| b as u8).collect();
        // Any outcome is fine as long as it is a value, not a panic; an
        // Err must be one of the typed variants by construction.
        let _ = Frame::decode(&bytes);
        let _ = Frame::decode_body(&bytes);
    }

    #[test]
    fn unknown_tags_are_typed(tag in 0x10u32..0xFF) {
        let body = vec![tag as u8];
        prop_assert_eq!(Frame::decode_body(&body), Err(WireError::UnknownTag(tag as u8)));
    }

    #[test]
    fn corrupting_one_byte_never_panics(
        victim_fraction in 0.0f64..1.0,
        xor in 1u32..256,
        seed in 0u64..50,
    ) {
        let frame = Frame::GmBroadcast {
            round: 1,
            round_salt: 2 << 16,
            params: params(4, 3, seed),
        };
        let mut bytes = frame.encode();
        let victim = ((bytes.len() - 1) as f64 * victim_fraction) as usize;
        bytes[victim] ^= xor as u8;
        let _ = Frame::decode(&bytes); // must return, never panic
    }
}

#[test]
fn oversized_length_prefix_is_rejected() {
    let mut bytes = ((MAX_FRAME_LEN as u32) + 1).to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        Frame::decode(&bytes),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn bad_availability_code_and_position_flag_are_typed() {
    // RoundPlan with availability code 9.
    let good = Frame::RoundPlan {
        round: 0,
        cohort: vec![(0, WireAvailability::Participates)],
    };
    let mut bytes = good.encode();
    let last = bytes.len() - 1;
    bytes[last] = 9;
    assert!(matches!(
        Frame::decode(&bytes),
        Err(WireError::BadPayload(_))
    ));

    let resp = Frame::LocalizeResp {
        id: 0,
        label: 0,
        position: None,
        device_class: String::new(),
        model_version: 0,
    };
    let mut bytes = resp.encode();
    // The position flag sits right after id (8) + label (4) + tag (1) +
    // prefix (4).
    bytes[4 + 1 + 8 + 4] = 7;
    assert!(matches!(
        Frame::decode(&bytes),
        Err(WireError::BadPayload(_))
    ));
}

#[test]
fn invalid_utf8_strings_are_typed() {
    let good = Frame::Error {
        code: 1,
        message: "ab".to_string(),
    };
    let mut bytes = good.encode();
    let last = bytes.len() - 1;
    bytes[last] = 0xFF; // not valid UTF-8 as a lone byte
    assert!(matches!(
        Frame::decode(&bytes),
        Err(WireError::BadPayload(_))
    ));
}

/// Client path: a server speaking a newer schema is rejected with a typed
/// error, not a panic or a garbled decode.
#[test]
fn client_rejects_wrong_schema_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream);
        match conn.recv().unwrap() {
            Frame::Hello { .. } => conn
                .send(&Frame::HelloAck {
                    schema: WIRE_SCHEMA + 1,
                })
                .unwrap(),
            other => panic!("expected Hello, got {}", other.kind()),
        }
    });
    let mut conn = FrameConn::connect(addr).unwrap();
    assert_eq!(
        conn.client_handshake(),
        Err(WireError::SchemaVersion {
            ours: WIRE_SCHEMA,
            theirs: WIRE_SCHEMA + 1
        })
    );
    fake_server.join().unwrap();
}

/// Server path: a client speaking an older schema gets a typed error
/// frame (code [`ERR_SCHEMA`]) before the connection closes.
#[test]
fn server_rejects_wrong_schema_client() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        FrameConn::new(stream).server_handshake()
    });
    let mut conn = FrameConn::connect(addr).unwrap();
    conn.send(&Frame::Hello { schema: 0 }).unwrap();
    assert_eq!(
        server.join().unwrap(),
        Err(WireError::SchemaVersion {
            ours: WIRE_SCHEMA,
            theirs: 0
        })
    );
    match conn.recv().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ERR_SCHEMA),
        other => panic!("expected Error frame, got {}", other.kind()),
    }
}
