//! Live telemetry exposition over the wire: a v3 client scrapes a
//! Prometheus snapshot reflecting real served traffic, a v2 connection
//! keeps localizing but cannot scrape, and the metrics round trip stays
//! parseable end to end.

use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceCatalog};
use safeloc_serve::{ModelKey, ModelRegistry, ServeConfig, Service};
use safeloc_telemetry::parse_prometheus;
use safeloc_wire::{
    Frame, FrameConn, WireClient, WireError, WireServer, ERR_PROTOCOL, MIN_WIRE_SCHEMA, WIRE_SCHEMA,
};
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> (BuildingDataset, Arc<Service>) {
    let data = BuildingDataset::generate(Building::tiny(6), &DatasetConfig::tiny(), 6);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(
        ModelKey::default_for(data.building.id),
        safeloc_nn::Sequential::mlp(
            &[data.building.num_aps(), 12, data.building.num_rps()],
            safeloc_nn::Activation::Relu,
            1,
        ),
        Some(data.building.clone()),
    );
    // Isolated registry: scrapes must reflect exactly this service's
    // traffic, not whatever other tests put in the global registry.
    let service = Arc::new(Service::start_with_telemetry(
        registry,
        DeviceCatalog::new(data.devices.clone()),
        ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::from_micros(200),
            workers: 2,
        },
        Arc::new(safeloc_telemetry::Registry::new()),
    ));
    (data, service)
}

#[test]
fn scrape_reflects_served_traffic_and_parses_back() {
    let (data, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();
    let pool = safeloc_serve::request_pool(&data);
    let mut client = WireClient::connect(server.addr()).unwrap();
    assert_eq!(client.schema(), WIRE_SCHEMA);

    let n_requests = 12.min(pool.len());
    for req in pool.iter().take(n_requests) {
        client.localize(req).unwrap();
    }

    let text = client.scrape_metrics().unwrap();
    let samples = parse_prometheus(&text).expect("exposition parses back");
    let total: f64 = samples
        .iter()
        .filter(|s| s.name == "serve_requests_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(total as usize, n_requests, "scrape counts the real traffic");
    let building_label = data.building.id.to_string();
    assert!(
        samples.iter().any(|s| s.name == "serve_requests_total"
            && s.labels
                .contains(&("building".to_string(), building_label.clone()))),
        "request series carries the building label"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "serve_latency_us_count" && s.value >= n_requests as f64),
        "latency histogram saw every request"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "serve_model_version" && s.value == 1.0),
        "version gauge reports the published snapshot"
    );

    // The connection is still a serving connection after the scrape.
    client.localize(&pool[0]).unwrap();
    client.bye();
}

#[test]
fn v2_connection_localizes_but_cannot_scrape() {
    let (data, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();
    let pool = safeloc_serve::request_pool(&data);

    // Speak v2 by hand: Hello(v2) negotiates the connection down.
    let mut conn = FrameConn::connect(server.addr()).unwrap();
    conn.send(&Frame::Hello {
        schema: MIN_WIRE_SCHEMA,
    })
    .unwrap();
    assert_eq!(
        conn.recv().unwrap(),
        Frame::HelloAck {
            schema: MIN_WIRE_SCHEMA
        }
    );

    // Ordinary serving works on the downgraded connection.
    let req = &pool[0];
    conn.send(&Frame::LocalizeReq {
        id: 1,
        building: req.building as u32,
        device: req.device.clone(),
        rss_dbm: req.rss_dbm.clone(),
    })
    .unwrap();
    assert!(matches!(
        conn.recv().unwrap(),
        Frame::LocalizeResp { id: 1, .. }
    ));

    // A metrics frame on a v2 connection is a protocol error.
    conn.send(&Frame::MetricsRequest).unwrap();
    match conn.recv().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ERR_PROTOCOL),
        other => panic!("expected protocol error, got {}", other.kind()),
    }
}

#[test]
fn client_side_gate_refuses_scraping_below_v3() {
    let (_, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();
    // A full client never negotiates below v3 against our own server, so
    // fake the downgrade through the public schema gate.
    let mut client = WireClient::connect(server.addr()).unwrap();
    assert!(client.scrape_metrics().is_ok());
    drop(client);

    // Protocol-level check of the error the gate mirrors: the server
    // refuses unknown-at-v2 frames rather than answering them.
    let mut conn = FrameConn::connect(server.addr()).unwrap();
    conn.send(&Frame::Hello { schema: 2 }).unwrap();
    conn.recv().unwrap();
    conn.send(&Frame::MetricsRequest).unwrap();
    assert!(matches!(
        conn.recv(),
        Ok(Frame::Error { .. }) | Err(WireError::Io(_))
    ));
}
