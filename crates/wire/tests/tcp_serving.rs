//! The TCP serving front end-to-end: predictions served over the socket
//! must be bitwise identical to the in-process [`Service`] and to plain
//! offline `predict`, and the server side must survive hostile peers with
//! typed error frames, never a panic or a poisoned worker.

use safeloc_dataset::{dbm_to_unit, Building, BuildingDataset, DatasetConfig, DeviceCatalog};
use safeloc_nn::{Activation, Matrix, Sequential};
use safeloc_serve::{LoadPlan, LocalizeRequest, ModelKey, ModelRegistry, ServeConfig, Service};
use safeloc_wire::{
    run_tcp_load, FaultProfile, Frame, FrameConn, WireClient, WireError, WireServer, ERR_MALFORMED,
    ERR_PROTOCOL, ERR_SERVE,
};
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> (BuildingDataset, Sequential, Arc<Service>) {
    let data = BuildingDataset::generate(Building::tiny(6), &DatasetConfig::tiny(), 6);
    let model = Sequential::mlp(
        &[data.building.num_aps(), 12, data.building.num_rps()],
        Activation::Relu,
        1,
    );
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(
        ModelKey::default_for(data.building.id),
        model.clone(),
        Some(data.building.clone()),
    );
    let service = Arc::new(Service::start(
        registry,
        DeviceCatalog::new(data.devices.clone()),
        ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::from_micros(200),
            workers: 2,
        },
    ));
    (data, model, service)
}

/// Served labels over TCP == in-process service == offline `predict`,
/// bitwise, for the whole request pool.
#[test]
fn tcp_predictions_match_offline_predict_bitwise() {
    let (data, model, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();
    let pool = safeloc_serve::request_pool(&data);
    assert!(!pool.is_empty());

    // Offline path: renormalize each request exactly as the service does.
    let n_aps = data.building.num_aps();
    let mut flat = Vec::with_capacity(pool.len() * n_aps);
    for req in &pool {
        flat.extend(req.rss_dbm.iter().map(|&d| dbm_to_unit(d)));
    }
    let offline = model.predict(&Matrix::from_vec(pool.len(), n_aps, flat).unwrap());

    let mut client = WireClient::connect(server.addr()).unwrap();
    for (req, &expected) in pool.iter().zip(&offline) {
        let wired = client.localize(req).unwrap();
        let direct = service.localize(req).unwrap();
        assert_eq!(wired.label, expected, "TCP label diverged from offline");
        assert_eq!(wired.label, direct.label);
        assert_eq!(wired.position, direct.position);
        assert_eq!(wired.device_class, direct.device_class);
        assert_eq!(wired.model_version, direct.model_version);
    }
    client.bye();
    service.shutdown();
}

/// Admission errors travel as `Error(ERR_SERVE)` frames and do NOT tear
/// the connection down — the next well-formed request still succeeds.
#[test]
fn serve_errors_keep_the_connection_usable() {
    let (data, _, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();
    let mut client = WireClient::connect(server.addr()).unwrap();

    let bogus = LocalizeRequest::new(999, "phone", vec![-60.0; data.building.num_aps()]);
    match client.localize(&bogus) {
        Err(WireError::Peer { code, .. }) => assert_eq!(code, ERR_SERVE),
        other => panic!("expected Peer(ERR_SERVE), got {other:?}"),
    }
    let short = LocalizeRequest::new(data.building.id, "phone", vec![-60.0; 1]);
    match client.localize(&short) {
        Err(WireError::Peer { code, .. }) => assert_eq!(code, ERR_SERVE),
        other => panic!("expected Peer(ERR_SERVE), got {other:?}"),
    }

    let pool = safeloc_serve::request_pool(&data);
    let good = client.localize(&pool[0]).unwrap();
    assert_eq!(good.label, service.localize(&pool[0]).unwrap().label);
    client.bye();
    service.shutdown();
}

/// A peer that speaks valid frames out of protocol (an FL `Join` at the
/// serving front) gets `Error(ERR_PROTOCOL)` before the close.
#[test]
fn protocol_violation_is_a_typed_error_frame() {
    let (_, _, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();
    let mut conn = FrameConn::connect(server.addr()).unwrap();
    conn.client_handshake().unwrap();
    conn.send(&Frame::Join { client_index: 0 }).unwrap();
    match conn.recv().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ERR_PROTOCOL),
        other => panic!("expected Error frame, got {}", other.kind()),
    }
    service.shutdown();
}

/// Garbage after a valid handshake gets `Error(ERR_MALFORMED)`; the
/// server stays up and keeps serving fresh connections.
#[test]
fn garbage_frames_poison_nothing() {
    let (data, _, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();

    let mut conn = FrameConn::connect(server.addr()).unwrap();
    conn.client_handshake().unwrap();
    // A frame with a valid length prefix but an unknown tag.
    conn.send_raw(&[3, 0, 0, 0, 0x7F, 1, 2]).unwrap();
    match conn.recv().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ERR_MALFORMED),
        other => panic!("expected Error frame, got {}", other.kind()),
    }

    // The listener is unaffected: a fresh client round-trips fine.
    let pool = safeloc_serve::request_pool(&data);
    let mut client = WireClient::connect(server.addr()).unwrap();
    assert!(client.localize(&pool[0]).is_ok());
    client.bye();
    service.shutdown();
}

/// The closed-loop TCP load generator completes every request with the
/// same per-client request sequence as the in-process generator, and
/// injected latency only slows things down — it never changes answers.
#[test]
fn tcp_load_matches_in_process_load() {
    let (data, _, service) = fixture();
    let server = WireServer::serve(Arc::clone(&service)).unwrap();
    let pool = safeloc_serve::request_pool(&data);
    let plan = LoadPlan::new(3, 8, 42);

    let local = safeloc_serve::run_load(&service, &pool, &plan);
    let wired = run_tcp_load(server.addr(), &pool, &plan, &FaultProfile::ideal()).unwrap();
    assert_eq!(wired.failures, 0);
    assert_eq!(wired.stats().requests, plan.total_requests());
    // Same seeded request choices → same labels, client by client.
    for (a, b) in local.responses.iter().zip(&wired.responses) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.position, y.position);
        }
    }

    let slow = run_tcp_load(
        server.addr(),
        &pool,
        &LoadPlan::new(2, 3, 42),
        &FaultProfile::latency(5.0, 1.0, 7),
    )
    .unwrap();
    assert_eq!(slow.failures, 0);
    for latencies in &slow.latencies_ns {
        assert!(latencies.iter().all(|&ns| ns >= 1_000_000));
    }
    service.shutdown();
}
