//! Fixture: a frame-tag table with a duplicate and a gap, linted as if
//! it were `crates/wire/src/frame.rs`. Must produce wire-tag-unique,
//! wire-tag-dense, and the wire-schema-bump coupling record.
#![allow(dead_code)]

pub const WIRE_SCHEMA: u32 = 7;

const TAG_HELLO: u8 = 0x01;
const TAG_DATA: u8 = 0x02;
const TAG_ACK: u8 = 0x02; // duplicate of TAG_DATA
const TAG_BYE: u8 = 0x05; // gap: 0x03 and 0x04 are unused
