//! Fixture: panic-path positives and negatives, linted as if it lived in
//! the request-handling `serve` crate.
#![allow(dead_code)]

fn flagged_unwraps(input: Option<u32>, parse: Result<u32, String>) -> u32 {
    let a = input.unwrap();
    let b = parse.expect("parsing cannot fail");
    if a + b > 100 {
        panic!("overload");
    }
    match a {
        0 => unreachable!("zero is filtered at admission"),
        1 => todo!("single-sample batches"),
        2 => unimplemented!(),
        _ => a + b,
    }
}

fn justified_unwrap(widths: &[usize]) -> usize {
    // panic-ok: the caller validated widths is non-empty one frame up;
    // an empty slice here is a programming error worth aborting on.
    let first = widths.first().unwrap();
    *first
}

fn typed_error_instead(input: Option<u32>) -> Result<u32, String> {
    input.ok_or_else(|| "missing input".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwraps_are_exempt() {
        let v: Result<u32, String> = Ok(3);
        assert_eq!(v.unwrap(), 3);
        let w: Option<u32> = Some(4);
        assert_eq!(w.expect("test fixture"), 4);
    }
}
