//! Fixture: determinism-rule negatives — constructs that look close to
//! violations but are fine (or carry `det:` justifications) and must NOT
//! be reported when linted as a bitwise-pinned crate.
#![allow(dead_code)]

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

fn sorted_iteration_is_deterministic() -> Vec<u64> {
    let scores: BTreeMap<usize, u64> = BTreeMap::new();
    scores.values().map(|v| v + 1).collect()
}

fn hash_lookup_without_iteration(map: &HashMap<usize, u64>) -> Option<u64> {
    // Point lookups have no order to leak.
    map.get(&3).copied()
}

fn justified_wall_clock() -> f64 {
    // det: timing telemetry only — the caller logs it, nothing
    // model-visible reads it.
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

fn seeded_rng(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0..10)
}

fn sequential_float_reduction(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * 2.0).sum()
}

fn parallel_integer_count(xs: &[u64]) -> u64 {
    // Integer addition is associative: parallel folding is fine.
    xs.par_iter().filter(|&&x| x > 3).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn test_code_is_exempt() {
        // Test-only iteration and clocks are masked out.
        let seen: HashSet<usize> = HashSet::new();
        for _ in seen.iter() {}
        let _ = Instant::now();
    }
}
