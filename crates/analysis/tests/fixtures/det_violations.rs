//! Fixture: determinism-rule positives. Linted as if it lived in the
//! bitwise-pinned `fl` crate. Every flagged construct below must be
//! reported; the companion `det_clean.rs` holds the negatives.
#![allow(dead_code)]

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

fn hash_iteration_order_leaks() -> Vec<u64> {
    let scores: HashMap<usize, u64> = HashMap::new();
    let mut out = Vec::new();
    for (_, v) in scores.iter() {
        out.push(v + 1);
    }
    let seen: HashSet<usize> = HashSet::new();
    for id in &seen {
        out.push(*id as u64);
    }
    out
}

fn wall_clock_feeds_state() -> f64 {
    let start = Instant::now();
    let _epoch = SystemTime::now();
    start.elapsed().as_secs_f64()
}

fn ambient_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..10)
}

fn parallel_float_reduction(xs: &[f32]) -> f32 {
    xs.par_iter().map(|x| x * 2.0).sum()
}
