//! Fixture: atomic-ordering positives and negatives. Atomic rules apply
//! to every crate, so the crate name used when linting does not matter.
#![allow(dead_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);
static FLAG: AtomicBool = AtomicBool::new(false);

fn unjustified_relaxed() -> u64 {
    COUNT.fetch_add(1, Ordering::Relaxed)
}

fn justified_relaxed() -> u64 {
    // relaxed: monotonic counter, no other state published through it.
    COUNT.fetch_add(1, Ordering::Relaxed)
}

fn unjustified_seqcst() {
    FLAG.store(true, Ordering::SeqCst);
}

fn justified_seqcst() -> bool {
    // seqcst: the flag participates in a store-load fence with COUNT —
    // both sides must agree on a single total order.
    FLAG.load(Ordering::SeqCst)
}

fn acquire_release_are_never_flagged(ready: &AtomicBool) {
    ready.store(true, Ordering::Release);
    let _ = ready.load(Ordering::Acquire);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_still_audited() {
        // Atomic rules apply in test code too: orderings matter wherever
        // they appear, so this Relaxed needs its justification.
        // relaxed: single-threaded test, any ordering is equivalent.
        assert_eq!(COUNT.load(Ordering::Relaxed), COUNT.load(Ordering::Relaxed));
    }
}
