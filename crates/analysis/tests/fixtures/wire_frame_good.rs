//! Fixture: a dense, duplicate-free frame-tag table. Must produce only
//! the always-on wire-schema-bump coupling record.
#![allow(dead_code)]

pub const WIRE_SCHEMA: u32 = 2;

const TAG_HELLO: u8 = 0x01;
const TAG_DATA: u8 = 0x02;
const TAG_ACK: u8 = 0x03;
const TAG_BYE: u8 = 0x04;
