//! Exhaustive interleaving checks for the workspace's modeled
//! concurrent structures, plus proof the checker catches the bugs the
//! real code's guards exist to prevent.
//!
//! Each correct model must explore at least 1 000 distinct schedules
//! with zero violations; each `*_buggy` variant must produce a
//! violation with a non-empty reproducer schedule. Runs under
//! `cargo test -q` like any other test.

use safeloc_analysis::interleave::{explore, Limits, Model, Violation};
use safeloc_analysis::models::{
    HistogramCasSum, HotSwapMonotonic, RegistryInterning, RingWraparound,
};

/// Explores `model` expecting zero violations and ≥1k schedules.
fn assert_clean<M: Model>(name: &str, model: M) {
    let stats = explore(&model, Limits::default())
        .unwrap_or_else(|v| panic!("{name}: unexpected violation: {v}"));
    assert!(
        stats.schedules >= 1_000,
        "{name}: only {} schedules explored (complete={})",
        stats.schedules,
        stats.complete
    );
}

/// Explores `model` expecting the checker to find a violation.
fn assert_buggy<M: Model>(name: &str, model: M) -> Violation {
    let v = explore(&model, Limits::default())
        .err()
        .unwrap_or_else(|| panic!("{name}: checker missed the planted bug"));
    assert!(
        !v.schedule.is_empty(),
        "{name}: violation without a reproducer"
    );
    v
}

#[test]
fn registry_interning_is_race_free() {
    assert_clean("registry-interning", RegistryInterning::new(3));
}

#[test]
fn registry_interning_without_recheck_double_inserts() {
    let v = assert_buggy("registry-interning-buggy", RegistryInterning::buggy(3));
    assert!(v.message.contains("duplicate"), "{v}");
}

#[test]
fn histogram_cas_sum_never_loses_updates() {
    assert_clean("histogram-cas-sum", HistogramCasSum::new(3));
}

#[test]
fn histogram_plain_store_loses_updates() {
    let v = assert_buggy("histogram-cas-sum-buggy", HistogramCasSum::buggy(3));
    assert!(v.message.contains("lost update"), "{v}");
}

#[test]
fn flight_recorder_ring_snapshots_are_consistent() {
    // Capacity 2 with 3 pushes exercises both the fill and wrap arms;
    // the reader snapshots concurrently with the wraparound.
    assert_clean(
        "ring-wraparound",
        RingWraparound::new(2, &[&[1, 2], &[3]], 1, 2),
    );
}

#[test]
fn flight_recorder_torn_push_is_caught() {
    let v = assert_buggy(
        "ring-wraparound-buggy",
        RingWraparound::buggy(2, &[&[1, 2], &[3]], 1, 2),
    );
    assert!(
        v.message.contains("snapshot") || v.message.contains("retained"),
        "{v}"
    );
}

#[test]
fn model_registry_hot_swap_is_tear_free_and_monotone() {
    assert_clean("hot-swap-monotonic", HotSwapMonotonic::new(2, 2, 2, 2));
}

#[test]
fn model_registry_without_write_lock_tears() {
    // Small enough that exploration is exhaustive: the buggy variant's
    // torn (version, weights) window is provably visited, not left to
    // whichever corner of a huge schedule space the budget reaches.
    let v = assert_buggy(
        "hot-swap-monotonic-buggy",
        HotSwapMonotonic::buggy(1, 1, 1, 1),
    );
    assert!(v.message.contains("torn"), "{v}");
}

/// The acceptance bar from the issue, stated as its own test: every
/// modeled structure explores ≥1 000 distinct schedules.
#[test]
fn every_model_clears_the_thousand_schedule_bar() {
    let counts = [
        (
            "registry-interning",
            explore(&RegistryInterning::new(3), Limits::default()).unwrap(),
        ),
        (
            "histogram-cas-sum",
            explore(&HistogramCasSum::new(3), Limits::default()).unwrap(),
        ),
        (
            "ring-wraparound",
            explore(
                &RingWraparound::new(2, &[&[1, 2], &[3]], 1, 2),
                Limits::default(),
            )
            .unwrap(),
        ),
        (
            "hot-swap-monotonic",
            explore(&HotSwapMonotonic::new(2, 2, 2, 2), Limits::default()).unwrap(),
        ),
    ];
    for (name, stats) in counts {
        assert!(
            stats.schedules >= 1_000,
            "{name}: {} schedules",
            stats.schedules
        );
    }
}
