//! Lint-engine tests: the fixture corpus pins every rule's positives
//! and negatives, and the self-lint test asserts the committed baseline
//! is exactly what linting this workspace produces — so CI's
//! `safeloc_lint --check` gate and `cargo test` can never disagree.

use safeloc_analysis::lint::{
    default_baseline_path, lint_text, lint_workspace, load_baseline, Finding,
};
use std::collections::BTreeMap;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Rule-id histogram of findings, for order-insensitive assertions.
fn by_rule(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts
}

#[test]
fn det_violations_fixture_trips_every_determinism_rule() {
    let findings = lint_text(
        "crates/fl/src/fixture.rs",
        "fl",
        &fixture("det_violations.rs"),
    );
    let counts = by_rule(&findings);
    assert_eq!(counts.get("det-hash-iter"), Some(&2), "{findings:#?}");
    assert_eq!(counts.get("det-wall-clock"), Some(&2), "{findings:#?}");
    assert_eq!(counts.get("det-ambient-rng"), Some(&1), "{findings:#?}");
    assert_eq!(
        counts.get("det-par-float-reduce"),
        Some(&1),
        "{findings:#?}"
    );
    // Findings carry usable positions.
    for f in &findings {
        assert!(f.line > 0 && f.path.ends_with("fixture.rs"));
        assert!(!f.excerpt.is_empty() && !f.message.is_empty());
    }
}

#[test]
fn det_clean_fixture_is_silent() {
    let findings = lint_text("crates/fl/src/fixture.rs", "fl", &fixture("det_clean.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn determinism_rules_do_not_apply_outside_pinned_crates() {
    // The same violating source in a non-pinned crate (bench) is fine.
    let findings = lint_text(
        "crates/bench/src/fixture.rs",
        "bench",
        &fixture("det_violations.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn panic_fixture_flags_each_panic_form_once() {
    let findings = lint_text(
        "crates/serve/src/fixture.rs",
        "serve",
        &fixture("panic_paths.rs"),
    );
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented! — and
    // nothing from the justified/typed/test functions.
    assert_eq!(
        by_rule(&findings).get("panic-path"),
        Some(&6),
        "{findings:#?}"
    );
    assert!(
        findings.iter().all(|f| f.line <= 17),
        "justified or test code was flagged: {findings:#?}"
    );
}

#[test]
fn panic_rules_do_not_apply_outside_request_handling_crates() {
    let findings = lint_text("crates/fl/src/fixture.rs", "fl", &fixture("panic_paths.rs"));
    assert!(
        findings.iter().all(|f| f.rule != "panic-path"),
        "{findings:#?}"
    );
}

#[test]
fn atomics_fixture_flags_unjustified_orderings_only() {
    let findings = lint_text(
        "crates/telemetry/src/fixture.rs",
        "telemetry",
        &fixture("atomics.rs"),
    );
    let counts = by_rule(&findings);
    assert_eq!(
        counts.get("atomic-relaxed-justify"),
        Some(&1),
        "{findings:#?}"
    );
    assert_eq!(counts.get("atomic-seqcst-audit"), Some(&1), "{findings:#?}");
}

#[test]
fn wire_frame_bad_fixture_reports_duplicate_gap_and_coupling() {
    let findings = lint_text(
        "crates/wire/src/frame.rs",
        "wire",
        &fixture("wire_frame_bad.rs"),
    );
    let counts = by_rule(&findings);
    assert_eq!(counts.get("wire-tag-unique"), Some(&1), "{findings:#?}");
    // 0x03 and 0x04 are two separate gap findings.
    assert_eq!(counts.get("wire-tag-dense"), Some(&2), "{findings:#?}");
    assert_eq!(counts.get("wire-schema-bump"), Some(&1), "{findings:#?}");
    let coupling = findings
        .iter()
        .find(|f| f.rule == "wire-schema-bump")
        .unwrap();
    assert!(coupling.excerpt.contains("schema=7"), "{coupling:?}");
}

#[test]
fn wire_frame_good_fixture_yields_only_the_coupling_record() {
    let findings = lint_text(
        "crates/wire/src/frame.rs",
        "wire",
        &fixture("wire_frame_good.rs"),
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "wire-schema-bump");
    assert!(findings[0]
        .excerpt
        .contains("tags=[0x01,0x02,0x03,0x04] schema=2"));
}

#[test]
fn frame_rules_only_fire_on_the_frame_module() {
    let findings = lint_text(
        "crates/wire/src/conn.rs",
        "wire",
        &fixture("wire_frame_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

/// The self-lint: linting this workspace must reproduce the committed
/// baseline exactly — zero new findings, zero stale entries. This is the
/// same invariant CI's `safeloc_lint --check` enforces, pinned here so a
/// plain `cargo test -q` catches drift without the extra CI step.
#[test]
fn workspace_lint_exactly_reproduces_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("workspace lints");
    let baseline_path = default_baseline_path(&root);
    let baseline = load_baseline(&baseline_path)
        .unwrap_or_else(|e| panic!("baseline {} unreadable: {e}", baseline_path.display()));
    let diff = baseline.check(&findings);
    assert!(
        diff.is_clean(),
        "workspace lint drifted from {}:\n  new: {:#?}\n  stale: {:?}\n  schema: {:?}\n\
         (run `cargo run --bin safeloc_lint -- --bless` after reviewing)",
        baseline_path.display(),
        diff.new,
        diff.stale,
        diff.schema_conflict,
    );
    // The committed baseline is not an empty formality: it pins the two
    // intentional wire records (the historical 0x0D gap and the
    // tag-table ↔ WIRE_SCHEMA coupling).
    assert_eq!(baseline.accepted(), 2);
}
