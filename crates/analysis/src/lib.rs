//! Static and dynamic analysis for the SAFELOC workspace.
//!
//! Two pillars, both dependency-free:
//!
//! - [`lint`] — a workspace-aware lexical rule engine (`safeloc_lint`
//!   binary) enforcing the invariants the test suite cannot see:
//!   determinism in the bitwise-pinned crates, panic-freedom on
//!   request-handling paths, justified atomic orderings, and wire-schema
//!   hygiene. Accepted pre-existing findings live in a checked-in
//!   baseline; `--check` fails CI on anything new or stale.
//! - [`interleave`] — a loom-lite bounded-interleaving checker that
//!   exhaustively explores thread schedules of modeled concurrent
//!   structures under sequential consistency, with [`models`] restating
//!   the workspace's real lock-free/lock-light structures (telemetry
//!   registry interning, histogram CAS sums, flight-recorder ring,
//!   serve hot-swap) as checkable state machines.
//!
//! The linter is lexical by design: no `syn`, no rustc internals, no
//! dependencies — it blanks comments/strings/char literals and masks
//! `#[cfg(test)]` regions with a small char-level scanner, which is
//! exactly enough precision for the pattern rules it enforces and keeps
//! the whole tool buildable in the offline environment.

pub mod interleave;
pub mod lint;
pub mod models;
