//! A loom-lite bounded-interleaving checker.
//!
//! The telemetry and serving layers contain hand-rolled lock-free and
//! lock-light code (CAS loops, double-checked registration, hot-swapped
//! snapshots) whose correctness arguments live in comments and hammer
//! tests. Hammer tests explore whatever schedules the OS happens to
//! produce; this module explores *all of them*, deterministically, up to
//! a bound.
//!
//! # The model
//!
//! A [`Model`] is a set of virtual threads over shared state, where one
//! [`Model::step`] call performs exactly one atomic action (one atomic
//! load/store/CAS, or one lock acquire/release — the granularity at
//! which real schedulers can interleave). The explorer runs a
//! depth-first search over every choice of "which runnable thread steps
//! next", so under sequential consistency every interleaving of the
//! modeled operations is visited. Invariants are checked after every
//! step and at every terminal state; the first violation aborts the
//! search and reports the exact schedule (a thread-id sequence) that
//! produced it — a deterministic reproducer, which is the part hammer
//! tests can never give you.
//!
//! Blocking (a mutex held by someone else) is modeled by returning
//! [`Step::Blocked`]: the explorer undoes nothing (the step must not
//! mutate state when blocked) and simply does not schedule that thread
//! at this node. A state where no thread can run and not all threads are
//! done is reported as a deadlock.
//!
//! # Scope
//!
//! Sequential consistency only: relaxed-memory reorderings are out of
//! scope (the atomics under test are Relaxed counters whose *values*
//! are commutative, and lock-protected state where SC is what the lock
//! provides). What this catches is lost updates, torn multi-field
//! reads, duplicate/skipped work in double-checked paths, broken ring
//! index arithmetic and version-monotonicity violations — the bug
//! classes the modeled structures can actually have.

/// Result of one thread step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed one atomic action and can run again.
    Ran,
    /// The thread cannot act right now (lock held elsewhere). The call
    /// must not have mutated shared state.
    Blocked,
    /// The thread finished. Subsequent calls must keep returning `Done`.
    Done,
}

/// A concurrent structure modeled as explicit per-thread state machines.
pub trait Model: Clone {
    /// Number of virtual threads.
    fn threads(&self) -> usize;
    /// Performs thread `tid`'s next atomic action.
    fn step(&mut self, tid: usize) -> Step;
    /// Invariant checked after every step; return `Err` to report a
    /// violation mid-schedule (torn intermediate state).
    fn check_step(&self) -> Result<(), String> {
        Ok(())
    }
    /// Invariant checked when every thread is done.
    fn check_final(&self) -> Result<(), String>;
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Stop after visiting this many complete schedules.
    pub max_schedules: u64,
    /// Fail any single schedule longer than this many steps (livelock
    /// guard for buggy models).
    pub max_steps: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_schedules: 250_000,
            max_steps: 10_000,
        }
    }
}

/// A found violation, with its deterministic reproducer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The thread-id sequence that produced the violation.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (schedule: {})",
            self.message,
            self.schedule
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("→")
        )
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct complete schedules visited.
    pub schedules: u64,
    /// `true` when the search space was exhausted within the limits.
    pub complete: bool,
    /// Longest schedule seen (in steps).
    pub max_depth: usize,
}

/// Explores every interleaving of `model` (up to `limits`).
///
/// # Errors
///
/// The first [`Violation`] found: a failed step/final invariant, a
/// deadlock, or a schedule exceeding `limits.max_steps`.
pub fn explore<M: Model>(model: &M, limits: Limits) -> Result<Exploration, Violation> {
    let mut stats = Exploration {
        schedules: 0,
        complete: true,
        max_depth: 0,
    };
    let done = vec![false; model.threads()];
    let mut path = Vec::new();
    dfs(model, &done, &mut path, &limits, &mut stats)?;
    Ok(stats)
}

fn dfs<M: Model>(
    model: &M,
    done: &[bool],
    path: &mut Vec<usize>,
    limits: &Limits,
    stats: &mut Exploration,
) -> Result<(), Violation> {
    if stats.schedules >= limits.max_schedules {
        stats.complete = false;
        return Ok(());
    }
    if done.iter().all(|&d| d) {
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(path.len());
        return model.check_final().map_err(|message| Violation {
            schedule: path.clone(),
            message: format!("final invariant violated: {message}"),
        });
    }
    if path.len() >= limits.max_steps {
        return Err(Violation {
            schedule: path.clone(),
            message: format!(
                "schedule exceeded {} steps without terminating (livelock?)",
                limits.max_steps
            ),
        });
    }
    let mut any_ran = false;
    for tid in 0..model.threads() {
        if done[tid] {
            continue;
        }
        let mut next = model.clone();
        let step = next.step(tid);
        if step == Step::Blocked {
            continue;
        }
        any_ran = true;
        path.push(tid);
        next.check_step().map_err(|message| Violation {
            schedule: path.clone(),
            message: format!("step invariant violated: {message}"),
        })?;
        let mut next_done = done.to_vec();
        if step == Step::Done {
            next_done[tid] = true;
        }
        dfs(&next, &next_done, path, limits, stats)?;
        path.pop();
    }
    if !any_ran {
        return Err(Violation {
            schedule: path.clone(),
            message: "deadlock: no runnable thread and not all threads done".to_string(),
        });
    }
    Ok(())
}

/// A virtual mutex: one holder, acquire blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VMutex {
    holder: Option<usize>,
}

impl VMutex {
    /// Tries to take the lock for `tid`; `false` means blocked.
    pub fn try_acquire(&mut self, tid: usize) -> bool {
        if self.holder.is_none() {
            self.holder = Some(tid);
            true
        } else {
            false
        }
    }

    /// Releases the lock (panics if `tid` is not the holder — a model
    /// bug, not a modeled-code bug).
    pub fn release(&mut self, tid: usize) {
        assert_eq!(self.holder, Some(tid), "released a lock it did not hold");
        self.holder = None;
    }

    /// Current holder, if any.
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }
}

/// A virtual `RwLock`: many readers or one writer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VRwLock {
    writer: Option<usize>,
    readers: u32,
}

impl VRwLock {
    /// Tries to take a read lock; `false` means a writer holds it.
    pub fn try_read(&mut self) -> bool {
        if self.writer.is_none() {
            self.readers += 1;
            true
        } else {
            false
        }
    }

    /// Releases a read lock.
    pub fn release_read(&mut self) {
        assert!(self.readers > 0, "released a read lock nobody held");
        self.readers -= 1;
    }

    /// Tries to take the write lock; `false` means readers or another
    /// writer hold it.
    pub fn try_write(&mut self, tid: usize) -> bool {
        if self.writer.is_none() && self.readers == 0 {
            self.writer = Some(tid);
            true
        } else {
            false
        }
    }

    /// Releases the write lock.
    pub fn release_write(&mut self, tid: usize) {
        assert_eq!(
            self.writer,
            Some(tid),
            "released a write lock it did not hold"
        );
        self.writer = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a counter twice through load+store
    /// *without* CAS — the textbook lost update. The checker must find
    /// it and produce a reproducer schedule.
    #[derive(Clone)]
    struct LostUpdate {
        value: u64,
        local: [u64; 2],
        pc: [u8; 2],
    }

    impl Model for LostUpdate {
        fn threads(&self) -> usize {
            2
        }
        fn step(&mut self, tid: usize) -> Step {
            match self.pc[tid] {
                0 => {
                    self.local[tid] = self.value;
                    self.pc[tid] = 1;
                    Step::Ran
                }
                1 => {
                    self.value = self.local[tid] + 1;
                    self.pc[tid] = 2;
                    Step::Done
                }
                _ => Step::Done,
            }
        }
        fn check_final(&self) -> Result<(), String> {
            if self.value == 2 {
                Ok(())
            } else {
                Err(format!("expected 2, got {} (lost update)", self.value))
            }
        }
    }

    #[test]
    fn lost_updates_are_found_with_a_reproducer() {
        let m = LostUpdate {
            value: 0,
            local: [0; 2],
            pc: [0; 2],
        };
        let v = explore(&m, Limits::default()).unwrap_err();
        assert!(v.message.contains("lost update"), "{v}");
        assert!(!v.schedule.is_empty());
    }

    /// The same counter with a modeled CAS retry loop is correct under
    /// every interleaving.
    #[derive(Clone)]
    struct CasCounter {
        value: u64,
        local: [u64; 2],
        pc: [u8; 2],
    }

    impl Model for CasCounter {
        fn threads(&self) -> usize {
            2
        }
        fn step(&mut self, tid: usize) -> Step {
            match self.pc[tid] {
                0 => {
                    self.local[tid] = self.value;
                    self.pc[tid] = 1;
                    Step::Ran
                }
                1 => {
                    if self.value == self.local[tid] {
                        self.value += 1;
                        self.pc[tid] = 2;
                        Step::Done
                    } else {
                        self.local[tid] = self.value; // CAS failure returns the observed value
                        Step::Ran
                    }
                }
                _ => Step::Done,
            }
        }
        fn check_final(&self) -> Result<(), String> {
            if self.value == 2 {
                Ok(())
            } else {
                Err(format!("expected 2, got {}", self.value))
            }
        }
    }

    #[test]
    fn cas_counter_is_clean_and_exploration_is_exhaustive() {
        let m = CasCounter {
            value: 0,
            local: [0; 2],
            pc: [0; 2],
        };
        let stats = explore(&m, Limits::default()).unwrap();
        assert!(stats.complete);
        assert!(stats.schedules >= 6, "got {}", stats.schedules);
    }

    /// Two threads acquiring two mutexes in opposite order: the explorer
    /// must report the deadlock schedule.
    #[derive(Clone, Default)]
    struct DeadlockModel {
        a: VMutex,
        b: VMutex,
        pc: [u8; 2],
    }

    impl Model for DeadlockModel {
        fn threads(&self) -> usize {
            2
        }
        fn step(&mut self, tid: usize) -> Step {
            let (first, second) = if tid == 0 {
                (&mut self.a, &mut self.b)
            } else {
                (&mut self.b, &mut self.a)
            };
            match self.pc[tid] {
                0 => {
                    if first.try_acquire(tid) {
                        self.pc[tid] = 1;
                        Step::Ran
                    } else {
                        Step::Blocked
                    }
                }
                1 => {
                    if second.try_acquire(tid) {
                        self.pc[tid] = 2;
                        Step::Ran
                    } else {
                        Step::Blocked
                    }
                }
                2 => {
                    let (f, s) = if tid == 0 {
                        (&mut self.a, &mut self.b)
                    } else {
                        (&mut self.b, &mut self.a)
                    };
                    s.release(tid);
                    f.release(tid);
                    self.pc[tid] = 3;
                    Step::Done
                }
                _ => Step::Done,
            }
        }
        fn check_final(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn lock_order_inversion_is_reported_as_deadlock() {
        let v = explore(&DeadlockModel::default(), Limits::default()).unwrap_err();
        assert!(v.message.contains("deadlock"), "{v}");
    }

    #[test]
    fn schedule_budget_marks_incomplete_exploration() {
        let m = CasCounter {
            value: 0,
            local: [0; 2],
            pc: [0; 2],
        };
        let stats = explore(
            &m,
            Limits {
                max_schedules: 2,
                max_steps: 100,
            },
        )
        .unwrap();
        assert_eq!(stats.schedules, 2);
        assert!(!stats.complete);
    }
}
