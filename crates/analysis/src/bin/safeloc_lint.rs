//! Workspace invariant linter CLI.
//!
//! ```text
//! safeloc_lint [--root DIR] [--baseline FILE] [--check | --bless | --list-rules]
//! ```
//!
//! - default (no mode flag): print all current findings with their
//!   baseline status, exit 0.
//! - `--check`: exit nonzero if any finding is not in the baseline, any
//!   baseline entry is stale, or the frame tag table changed without a
//!   `WIRE_SCHEMA` bump. This is the CI gate.
//! - `--bless`: rewrite the baseline from the current findings
//!   (refused for schema-coupling conflicts — those need a real fix).
//! - `--list-rules`: print the rule catalog and exit.

use safeloc_analysis::lint::{
    default_baseline_path, lint_workspace, load_baseline, Baseline, RULES,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    check: bool,
    bless: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        baseline: None,
        check: false,
        bless: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--check" => args.check = true,
            "--bless" => args.bless = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.check && args.bless {
        return Err("--check and --bless are mutually exclusive".to_string());
    }
    Ok(args)
}

const HELP: &str = "\
safeloc_lint: workspace invariant linter

USAGE:
    safeloc_lint [--root DIR] [--baseline FILE] [--check | --bless | --list-rules]

MODES:
    (default)     print findings with baseline status, exit 0
    --check       exit 1 on any finding missing from the baseline, any
                  stale baseline entry, or a frame-tag change without a
                  WIRE_SCHEMA bump (the CI gate)
    --bless       rewrite the baseline from the current findings
    --list-rules  print the rule catalog

OPTIONS:
    --root DIR       workspace root (default: ancestor of this binary's
                     manifest, else the current directory)
    --baseline FILE  baseline path (default: ROOT/crates/analysis/lint_baseline.txt)
";

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when built from the
/// workspace (so `cargo run --bin safeloc_lint` works from anywhere),
/// else the current directory.
fn default_root() -> PathBuf {
    let manifest_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if manifest_root.join("crates").is_dir() {
        return manifest_root;
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("safeloc_lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RULES {
            println!("{}", rule.id);
            println!("  scope: {}", rule.scope);
            if let Some(token) = rule.justify {
                println!("  justify: `// {token} <reason>` within 6 lines above the site");
            }
            println!(
                "  {}\n",
                rule.rationale
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| default_baseline_path(&args.root));

    let findings = match lint_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("safeloc_lint: failed to lint {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.bless {
        let baseline = match load_baseline(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "safeloc_lint: bad baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        if let Some(conflict) = baseline.check(&findings).schema_conflict {
            eprintln!("safeloc_lint: refusing to bless: {conflict}");
            return ExitCode::FAILURE;
        }
        let rendered = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!(
                "safeloc_lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "blessed {} finding(s) into {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "safeloc_lint: bad baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let diff = baseline.check(&findings);

    if args.check {
        for f in &diff.new {
            println!("NEW  [{}] {}:{}: {}", f.rule, f.path, f.line, f.message);
            println!("       {}", f.excerpt);
        }
        for (fp, n) in &diff.stale {
            println!("STALE {n}× no longer produced: {}", fp.replace('\t', "  "));
        }
        if let Some(conflict) = &diff.schema_conflict {
            println!("SCHEMA {conflict}");
        }
        if diff.is_clean() {
            println!(
                "safeloc_lint: clean ({} finding(s), all baselined)",
                findings.len()
            );
            ExitCode::SUCCESS
        } else {
            println!(
                "safeloc_lint: FAILED: {} new, {} stale, schema conflict: {}",
                diff.new.len(),
                diff.stale.len(),
                diff.schema_conflict.is_some(),
            );
            println!("(accept intentional findings with --bless; schema conflicts need a WIRE_SCHEMA bump)");
            ExitCode::FAILURE
        }
    } else {
        let new: std::collections::HashSet<_> = diff
            .new
            .iter()
            .map(|f| (f.path.clone(), f.line, f.rule))
            .collect();
        for f in &findings {
            let status = if new.contains(&(f.path.clone(), f.line, f.rule)) {
                "NEW "
            } else {
                "base"
            };
            println!("{status} [{}] {}:{}: {}", f.rule, f.path, f.line, f.message);
        }
        println!(
            "{} finding(s): {} baselined, {} new, {} stale",
            findings.len(),
            findings.len() - diff.new.len(),
            diff.new.len(),
            diff.stale.len()
        );
        ExitCode::SUCCESS
    }
}
