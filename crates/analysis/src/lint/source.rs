//! The lexical source model rules run over.
//!
//! The offline build environment has no `syn`/`proc-macro2`, so the
//! linter works from a character-level lexical pass instead of a real
//! AST. [`SourceFile::parse`] produces three aligned per-line views:
//!
//! * **code** — the line with every comment, string literal and char
//!   literal blanked to spaces. Rule patterns match here, so a rule
//!   string appearing inside a doc comment or a format string can never
//!   fire.
//! * **comments** — only the comment text of the line (everything else
//!   blanked). Justification tokens (`relaxed:`, `panic-ok:`, `det:`,
//!   `seqcst:`) are searched here, so a justification must really be a
//!   comment.
//! * **test mask** — whether the line sits inside a `#[cfg(test)]`
//!   item or a `#[test]` function, found by brace matching from the
//!   attribute. Production-path rules skip masked lines.
//!
//! The lexer understands nested block comments, escapes in string/char
//! literals, raw strings (`r"…"`, `r#"…"#`, any hash depth) and
//! lifetimes (`'a` is not an unterminated char literal). That is enough
//! to be exact on this workspace; it does not attempt macros-defining-
//! macros or exotic token trickery.

/// One parsed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (stable across platforms).
    pub path: String,
    /// The crate directory name under `crates/` this file belongs to.
    pub crate_name: String,
    /// Raw line text (without trailing newline).
    pub raw: Vec<String>,
    /// Comment/string/char-blanked line text, aligned with `raw`.
    pub code: Vec<String>,
    /// Comment-only line text, aligned with `raw`.
    pub comments: Vec<String>,
    /// `true` where the line is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Lex {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Lexes `text` into the three aligned views.
    pub fn parse(path: &str, crate_name: &str, text: &str) -> Self {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let (code, comments) = blank_lines(&raw);
        let in_test = test_mask(&code);
        Self {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            raw,
            code,
            comments,
            in_test,
        }
    }

    /// `true` if any comment on lines `lo..=hi` (0-based, clamped)
    /// contains `token` — the justification-window primitive.
    pub fn comment_window_contains(&self, lo: usize, hi: usize, token: &str) -> bool {
        let hi = hi.min(self.comments.len().saturating_sub(1));
        self.comments[lo..=hi].iter().any(|c| c.contains(token))
    }
}

/// Blanks comments and literals, producing (code view, comment view).
fn blank_lines(raw: &[String]) -> (Vec<String>, Vec<String>) {
    let mut code = Vec::with_capacity(raw.len());
    let mut comments = Vec::with_capacity(raw.len());
    let mut state = Lex::Code;
    for line in raw {
        let chars: Vec<char> = line.chars().collect();
        let mut code_line = String::with_capacity(chars.len());
        let mut comment_line = String::with_capacity(chars.len());
        let mut i = 0;
        // A line comment never survives a newline.
        if state == Lex::LineComment {
            state = Lex::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                Lex::Code => match c {
                    '/' if next == Some('/') => {
                        state = Lex::LineComment;
                        code_line.push(' ');
                        comment_line.push('/');
                        i += 1;
                    }
                    '/' if next == Some('*') => {
                        state = Lex::BlockComment(1);
                        code_line.push(' ');
                        comment_line.push('/');
                        i += 1;
                    }
                    '"' => {
                        state = Lex::Str;
                        code_line.push(' ');
                        comment_line.push(' ');
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        state = Lex::RawStr(hashes);
                        // Skip `r`, the hashes and the opening quote.
                        for _ in 0..(2 + hashes as usize) {
                            code_line.push(' ');
                            comment_line.push(' ');
                        }
                        i += 1 + hashes as usize;
                    }
                    '\'' => {
                        // Char literal or lifetime. A char literal closes
                        // within a few chars; a lifetime has no closing
                        // quote.
                        if let Some(len) = char_literal_len(&chars, i) {
                            for _ in 0..len {
                                code_line.push(' ');
                                comment_line.push(' ');
                            }
                            i += len - 1;
                        } else {
                            code_line.push(c);
                            comment_line.push(' ');
                        }
                    }
                    _ => {
                        code_line.push(c);
                        comment_line.push(' ');
                    }
                },
                Lex::LineComment => {
                    code_line.push(' ');
                    comment_line.push(c);
                }
                Lex::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = Lex::Code;
                        } else {
                            state = Lex::BlockComment(depth - 1);
                        }
                        code_line.push(' ');
                        code_line.push(' ');
                        comment_line.push('*');
                        comment_line.push('/');
                        i += 1;
                    } else if c == '/' && next == Some('*') {
                        state = Lex::BlockComment(depth + 1);
                        code_line.push(' ');
                        code_line.push(' ');
                        comment_line.push('/');
                        comment_line.push('*');
                        i += 1;
                    } else {
                        code_line.push(' ');
                        comment_line.push(c);
                    }
                }
                Lex::Str => match c {
                    '\\' => {
                        code_line.push(' ');
                        comment_line.push(' ');
                        if next.is_some() {
                            code_line.push(' ');
                            comment_line.push(' ');
                            i += 1;
                        }
                    }
                    '"' => {
                        state = Lex::Code;
                        code_line.push(' ');
                        comment_line.push(' ');
                    }
                    _ => {
                        code_line.push(' ');
                        comment_line.push(' ');
                    }
                },
                Lex::RawStr(hashes) => {
                    if c == '"' && hashes_follow(&chars, i + 1, hashes) {
                        state = Lex::Code;
                        for _ in 0..(1 + hashes as usize) {
                            code_line.push(' ');
                            comment_line.push(' ');
                        }
                        i += hashes as usize;
                    } else {
                        code_line.push(' ');
                        comment_line.push(' ');
                    }
                }
            }
            i += 1;
        }
        code.push(code_line);
        comments.push(comment_line);
    }
    (code, comments)
}

/// `r"`, `r#"`, `r##"`, … — but not a plain identifier containing `r`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false; // part of an identifier like `str` or `for`
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn hashes_follow(chars: &[char], mut i: usize, hashes: u32) -> bool {
    for _ in 0..hashes {
        if chars.get(i) != Some(&'#') {
            return false;
        }
        i += 1;
    }
    true
}

/// Length (in chars, including both quotes) of a char literal starting
/// at `i`, or `None` if this quote starts a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escape: scan to the closing quote (handles \n, \', \u{…}).
            let mut j = i + 2;
            while j < chars.len() && j < i + 12 {
                if chars[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        _ => {
            if chars.get(i + 2) == Some(&'\'') {
                Some(3)
            } else {
                None // `'a` lifetime (or `'static`)
            }
        }
    }
}

/// Marks lines covered by `#[cfg(test)]` items and `#[test]` functions.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    // Flatten with line offsets so brace matching can cross lines.
    let mut flat = String::new();
    let mut line_of = Vec::new(); // char index -> line
    for (ln, line) in code.iter().enumerate() {
        for c in line.chars() {
            flat.push(c);
            line_of.push(ln);
        }
        flat.push('\n');
        line_of.push(ln);
    }
    let chars: Vec<char> = flat.chars().collect();
    for pat in ["#[cfg(test)]", "#[test]"] {
        let pat_chars: Vec<char> = pat.chars().collect();
        let mut from = 0;
        while let Some(pos) = find_chars(&chars, &pat_chars, from) {
            from = pos + pat_chars.len();
            if let Some((_, end)) = item_extent(&chars, pos + pat_chars.len()) {
                let start_line = line_of[pos.min(line_of.len() - 1)];
                let end_line = line_of[end.min(line_of.len() - 1)];
                for m in mask.iter_mut().take(end_line + 1).skip(start_line) {
                    *m = true;
                }
            }
        }
    }
    mask
}

/// Substring search over char slices (byte offsets would desync from the
/// char-indexed line map on non-ASCII source).
fn find_chars(haystack: &[char], needle: &[char], from: usize) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| haystack[i..i + needle.len()] == *needle)
}

/// The extent of the item following an attribute ending at `from`: scans
/// past further attributes to the item's closing `}` (brace-matched) or
/// a `;` at depth 0 for braceless items.
fn item_extent(chars: &[char], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    let mut depth = 0u32;
    let mut opened = false;
    while i < chars.len() {
        match chars[i] {
            '{' => {
                depth += 1;
                opened = true;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if opened && depth == 0 {
                    return Some((from, i));
                }
            }
            ';' if !opened && depth == 0 => return Some((from, i)),
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_from_code() {
        let src = "let x = \"Ordering::Relaxed\"; // Ordering::SeqCst\nlet y = 1;";
        let f = SourceFile::parse("a.rs", "fl", src);
        assert!(!f.code[0].contains("Ordering"));
        assert!(f.comments[0].contains("Ordering::SeqCst"));
        assert!(f.code[1].contains("let y"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner */ still comment */ let a = r#\"raw \"x\" body\"#; let b = 2;";
        let f = SourceFile::parse("a.rs", "fl", src);
        assert!(f.code[0].contains("let a"));
        assert!(f.code[0].contains("let b"));
        assert!(!f.code[0].contains("raw"));
        assert!(f.comments[0].contains("still comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let _ = c; x }";
        let f = SourceFile::parse("a.rs", "fl", src);
        assert!(f.code[0].contains("fn f<'a>"));
        assert!(!f.code[0].contains("'x'"), "char literal blanked");
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_masked() {
        let src = "fn prod() { body(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); }\n\
                   }\n\
                   fn prod2() {}";
        let f = SourceFile::parse("a.rs", "serve", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[2] && f.in_test[4] && f.in_test[5]);
        assert!(!f.in_test[6]);
    }

    #[test]
    fn cfg_test_on_a_braceless_item_masks_only_that_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() {}";
        let f = SourceFile::parse("a.rs", "fl", src);
        assert!(f.in_test[1]);
        assert!(!f.in_test[2]);
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let src = "let s = \"line one\nline two with .unwrap()\nend\"; done();";
        let f = SourceFile::parse("a.rs", "serve", src);
        assert!(!f.code[1].contains("unwrap"));
        assert!(f.code[2].contains("done()"));
    }
}
