//! The invariant linter: workspace walk + rule engine + baseline.
//!
//! See [`rules`] for the catalog, [`baseline`] for how accepted findings
//! are pinned, and the `safeloc_lint` binary for the CLI. The library
//! surface exists so the engine can be tested against fixture snippets
//! (`tests/lint_engine.rs`) and so the self-lint test can assert the
//! committed baseline is exactly reproduced.

pub mod baseline;
pub mod rules;
pub mod source;

pub use baseline::{Baseline, Diff};
pub use rules::{Finding, RuleInfo, RULES};
pub use source::SourceFile;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crate directories under `crates/` that are not ours to lint: vendor
/// stubs exist only because the build env is offline.
const SKIP_CRATES: &[&str] = &["vendor"];

/// Lints one file's text as if it lived at `path` in crate `crate_name`
/// — the fixture-testing entry point.
pub fn lint_text(path: &str, crate_name: &str, text: &str) -> Vec<Finding> {
    rules::lint_file(&SourceFile::parse(path, crate_name, text))
}

/// Walks `<root>/crates/*/src/**/*.rs` (skipping vendor stubs) and runs
/// every rule, returning findings sorted by (path, line, rule).
///
/// # Errors
///
/// Any I/O error reading the tree (a vanished file mid-walk, unreadable
/// permissions). Missing `crates/` is an error: the linter refusing to
/// run must never look like a clean run.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} is not a workspace root (no crates/ dir)",
                root.display()
            ),
        ));
    }
    let mut findings = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if SKIP_CRATES.contains(&crate_name.as_str()) {
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = relative_path(root, &file);
            let parsed = SourceFile::parse(&rel, &crate_name, &text);
            findings.extend(rules::lint_file(&parsed));
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `/`-separated path relative to `root` (stable fingerprints across
/// platforms and absolute-path prefixes).
fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Default baseline location relative to the workspace root.
pub fn default_baseline_path(root: &Path) -> PathBuf {
    root.join("crates/analysis/lint_baseline.txt")
}

/// Loads and parses the baseline at `path`; a missing file is an empty
/// baseline (bootstrapping a new workspace).
///
/// # Errors
///
/// I/O errors other than not-found, and any parse error (as
/// `InvalidData`).
pub fn load_baseline(path: &Path) -> io::Result<Baseline> {
    match fs::read_to_string(path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(e),
    }
}
