//! The rule catalog: every repo invariant `safeloc_lint` enforces.
//!
//! Rules are lexical (see [`super::source`]) and deliberately
//! over-approximate: a finding means "this line *looks like* it violates
//! the invariant". Three escape hatches keep that workable as a hard CI
//! gate:
//!
//! 1. **Justification comments** — a comment containing the rule's
//!    token (`det:`, `panic-ok:`, `relaxed:`, `seqcst:`) on the flagged
//!    line or within [`JUSTIFY_WINDOW`] lines above it suppresses the
//!    finding. The token must carry a reason; reviewers see it inline.
//! 2. **The baseline** — pre-existing accepted findings live in
//!    `crates/analysis/lint_baseline.txt`; `--check` fails only on
//!    findings not in it (and on stale entries).
//! 3. **Test code is exempt** — lines under `#[cfg(test)]` / `#[test]`
//!    are skipped by the production-path rules (`panic-*`, `det-*`).
//!    Atomic-ordering rules apply everywhere: a test that models
//!    orderings wrongly is still wrong.

use super::source::SourceFile;

/// Crates whose defense/training trajectories are bitwise-pinned: any
/// nondeterminism here silently weakens the poisoning defenses without
/// failing an accuracy test.
pub const PINNED_CRATES: &[&str] = &["fl", "nn", "core", "baselines"];

/// Crates whose request-handling paths run on attacker-controlled input
/// and must never panic (typed `WireError` / `ServeError` instead).
pub const PANIC_FREE_CRATES: &[&str] = &["serve", "wire"];

/// Justification comments are honored on the flagged line or up to this
/// many lines above it (multi-line statements: one comment above a
/// `compare_exchange` covers both of its `Ordering` arguments).
pub const JUSTIFY_WINDOW: usize = 6;

/// One catalog entry, rendered by `--list-rules` and the README table.
pub struct RuleInfo {
    /// Stable rule id (finding key, baseline key).
    pub id: &'static str,
    /// Where it applies.
    pub scope: &'static str,
    /// What it enforces and why.
    pub rationale: &'static str,
    /// Inline suppression token, if the rule has one.
    pub justify: Option<&'static str>,
}

/// The full catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "det-hash-iter",
        scope: "bitwise-pinned crates (fl, nn, core, baselines)",
        rationale: "HashMap/HashSet iteration order is randomized per process; iterating one on \
                    a defense or training path makes trajectories nondeterministic, which is \
                    exactly the regression an adaptive poisoning adversary exploits. Sort keys \
                    or use a Vec/BTreeMap.",
        justify: Some("det:"),
    },
    RuleInfo {
        id: "det-wall-clock",
        scope: "bitwise-pinned crates",
        rationale: "Instant::now/SystemTime readings feeding returned values break bitwise \
                    reproducibility. Wall-clock telemetry that never feeds model state must say \
                    so with a `det:` justification.",
        justify: Some("det:"),
    },
    RuleInfo {
        id: "det-ambient-rng",
        scope: "bitwise-pinned crates",
        rationale: "thread_rng/from_entropy/OsRng draw from ambient process entropy; every \
                    random choice on a pinned path must come from an explicit per-scenario \
                    seed.",
        justify: Some("det:"),
    },
    RuleInfo {
        id: "det-par-float-reduce",
        scope: "bitwise-pinned crates",
        rationale: "Floating-point reduction over a parallel iterator (`par_iter().sum()`, \
                    `.reduce(...)`) folds in scheduling order; f32 addition is not associative, \
                    so results vary by thread count. Collect in order, then fold sequentially.",
        justify: Some("det:"),
    },
    RuleInfo {
        id: "panic-path",
        scope: "request-handling crates (serve, wire), non-test code",
        rationale: "unwrap/expect/panic! on the serving and wire paths turn attacker-controlled \
                    input into a process abort. Return typed WireError/ServeError/RegistryError \
                    instead; a genuinely infallible site documents why with `panic-ok:`.",
        justify: Some("panic-ok:"),
    },
    RuleInfo {
        id: "atomic-relaxed-justify",
        scope: "all workspace crates",
        rationale: "Every Ordering::Relaxed must carry a `relaxed:` comment explaining why no \
                    synchronization edge is needed. Relaxed is usually right for monotonic \
                    counters and flags — the comment is the audit trail that someone checked.",
        justify: Some("relaxed:"),
    },
    RuleInfo {
        id: "atomic-seqcst-audit",
        scope: "all workspace crates",
        rationale: "Ordering::SeqCst is flagged where Acquire/Release suffices: a `seqcst:` \
                    comment must state which cross-variable total-order property needs it, \
                    otherwise downgrade (hand-rolled lock-free code should spend exactly the \
                    ordering it needs).",
        justify: Some("seqcst:"),
    },
    RuleInfo {
        id: "wire-tag-unique",
        scope: "crates/wire/src/frame.rs",
        rationale: "Two frame types sharing a tag byte silently decode into each other; the \
                    TAG_* table must be injective.",
        justify: None,
    },
    RuleInfo {
        id: "wire-tag-dense",
        scope: "crates/wire/src/frame.rs",
        rationale: "Gaps in the tag table are where silent tag typos hide (0x0D vs 0x0E). The \
                    table should be dense from its first tag; a historical gap is baselined, \
                    not silently grown.",
        justify: None,
    },
    RuleInfo {
        id: "wire-schema-bump",
        scope: "crates/wire/src/frame.rs",
        rationale: "Any change to the frame tag table is a wire-format change and must bump \
                    WIRE_SCHEMA so peers negotiate instead of misdecoding. This rule couples \
                    the tag set to the schema number in the baseline; changing the tags without \
                    bumping the schema cannot be blessed away.",
        justify: None,
    },
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id from the catalog.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source excerpt — the baseline fingerprint component, so
    /// baselined findings survive unrelated line-number churn.
    pub excerpt: String,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    fn new(rule: &'static str, file: &SourceFile, line0: usize, message: String) -> Self {
        Self {
            rule,
            path: file.path.clone(),
            line: line0 + 1,
            excerpt: file.raw[line0].trim().to_string(),
            message,
        }
    }

    /// `rule\tpath\texcerpt` — the identity the baseline stores.
    pub fn fingerprint(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.path, self.excerpt)
    }
}

/// Runs every applicable rule over one parsed file.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let pinned = PINNED_CRATES.contains(&file.crate_name.as_str());
    let panic_free =
        PANIC_FREE_CRATES.contains(&file.crate_name.as_str()) && !file.path.contains("/src/bin/");
    if pinned {
        det_hash_iter(file, &mut findings);
        det_pattern_rule(
            file,
            "det-wall-clock",
            &[
                "Instant::now(",
                "SystemTime::now(",
                "SystemTime::UNIX_EPOCH",
            ],
            "wall-clock reading on a bitwise-pinned path",
            &mut findings,
        );
        det_pattern_rule(
            file,
            "det-ambient-rng",
            &["thread_rng(", "rand::random", "from_entropy(", "OsRng"],
            "ambient (unseeded) randomness on a bitwise-pinned path",
            &mut findings,
        );
        det_par_float_reduce(file, &mut findings);
    }
    if panic_free {
        panic_path(file, &mut findings);
    }
    atomic_orderings(file, &mut findings);
    if file.path.ends_with("wire/src/frame.rs") {
        wire_frame_rules(file, &mut findings);
    }
    findings
}

fn justified(file: &SourceFile, line0: usize, token: &str) -> bool {
    let lo = line0.saturating_sub(JUSTIFY_WINDOW);
    file.comment_window_contains(lo, line0, token)
}

/// Production-path (non-test) lines only.
fn prod_lines(file: &SourceFile) -> impl Iterator<Item = (usize, &str)> {
    file.code
        .iter()
        .enumerate()
        .filter(|&(i, _)| !file.in_test[i])
        .map(|(i, l)| (i, l.as_str()))
}

fn det_pattern_rule(
    file: &SourceFile,
    rule: &'static str,
    patterns: &[&str],
    what: &str,
    findings: &mut Vec<Finding>,
) {
    for (i, line) in prod_lines(file) {
        for pat in patterns {
            if line.contains(pat) && !justified(file, i, "det:") {
                findings.push(Finding::new(rule, file, i, format!("{what} ({pat})")));
                break;
            }
        }
    }
}

/// Methods whose call on a hash collection observes iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain()",
];

fn det_hash_iter(file: &SourceFile, findings: &mut Vec<Finding>) {
    // Pass 1: names lexically bound to a HashMap/HashSet in this file
    // (let bindings, fields, params — `name: HashMap<…>` / `= HashMap::`).
    let mut hash_names: Vec<String> = Vec::new();
    for (_, line) in prod_lines(file) {
        for ty in ["HashMap", "HashSet"] {
            for pat in [format!(": {ty}<"), format!(": {ty} <")] {
                if let Some(pos) = line.find(&pat) {
                    if let Some(name) = ident_before(line, pos) {
                        hash_names.push(name);
                    }
                }
            }
            let assign = format!("= {ty}::");
            if let Some(pos) = line.find(&assign) {
                if let Some(name) = ident_before(line, pos) {
                    hash_names.push(name);
                }
            }
            // `RwLock<HashMap<…>>` fields: the guard is usually read into
            // a local of the same name; catch `let name = …` on lines
            // mentioning the type too.
            if line.contains(&format!("{ty}<")) && line.trim_start().starts_with("let ") {
                if let Some(name) = let_binding_name(line) {
                    hash_names.push(name);
                }
            }
        }
    }
    hash_names.sort();
    hash_names.dedup();

    // Pass 2: iteration over those names, or directly over a hash type.
    for (i, line) in prod_lines(file) {
        let mut hit = None;
        for m in HASH_ITER_METHODS {
            if let Some(pos) = line.find(m) {
                // Receiver identifier directly before the method call.
                if let Some(recv) = ident_before(line, pos) {
                    if hash_names.contains(&recv) {
                        hit = Some(format!("`{recv}{m}` iterates a hash collection"));
                        break;
                    }
                }
            }
        }
        if hit.is_none() {
            for name in &hash_names {
                for pat in [
                    format!("in {name}"),
                    format!("in &{name}"),
                    format!("in &mut {name}"),
                ] {
                    if let Some(pos) = line.find(&pat) {
                        let end = pos + pat.len();
                        let boundary_ok = line[end..]
                            .chars()
                            .next()
                            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                        let before_ok = pos == 0
                            || line[..pos]
                                .chars()
                                .next_back()
                                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                        if boundary_ok && before_ok && line.contains("for ") {
                            hit = Some(format!("`for … {pat}` iterates a hash collection"));
                            break;
                        }
                    }
                }
                if hit.is_some() {
                    break;
                }
            }
        }
        if let Some(msg) = hit {
            if !justified(file, i, "det:") {
                findings.push(Finding::new(
                    "det-hash-iter",
                    file,
                    i,
                    format!("{msg}; iteration order is nondeterministic"),
                ));
            }
        }
    }
}

/// The identifier (or `ident()` call receiver) ending right before `pos`.
fn ident_before(line: &str, pos: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == end {
        return None;
    }
    Some(line[start..end].to_string())
}

fn let_binding_name(line: &str) -> Option<String> {
    let rest = line.trim_start().strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then(|| rest[..end].to_string())
}

/// Unordered-reduction methods that close a parallel chain.
const PAR_REDUCE_METHODS: &[&str] = &[".sum()", ".sum::<", ".product()", ".product::<", ".reduce("];
/// How many lines after a `par_*` adapter a chained reduction is searched.
const PAR_CHAIN_WINDOW: usize = 6;

fn det_par_float_reduce(file: &SourceFile, findings: &mut Vec<Finding>) {
    let starts = [
        "par_iter(",
        "par_iter_mut(",
        "into_par_iter(",
        "par_chunks(",
        "par_bridge(",
    ];
    let lines: Vec<(usize, &str)> = prod_lines(file).collect();
    for w in 0..lines.len() {
        let (i, line) = lines[w];
        if !starts.iter().any(|s| line.contains(s)) {
            continue;
        }
        for &(j, later) in lines.iter().skip(w).take(PAR_CHAIN_WINDOW + 1) {
            if let Some(m) = PAR_REDUCE_METHODS.iter().find(|m| later.contains(**m)) {
                if !justified(file, j, "det:") {
                    findings.push(Finding::new(
                        "det-par-float-reduce",
                        file,
                        j,
                        format!(
                            "`{m}` closes a parallel chain started on line {}; float reduction \
                             order depends on scheduling",
                            i + 1
                        ),
                    ));
                }
                break;
            }
            // A sequential collect/for_each ends the chain harmlessly.
            if later.contains(".collect") || later.contains(";") {
                break;
            }
        }
    }
}

const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap() panics on Err/None"),
    (".expect(", "expect() panics on Err/None"),
    ("panic!(", "explicit panic"),
    ("unreachable!(", "unreachable!() is a panic if ever reached"),
    ("todo!(", "todo!() panics"),
    ("unimplemented!(", "unimplemented!() panics"),
];

fn panic_path(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (i, line) in prod_lines(file) {
        for (pat, why) in PANIC_PATTERNS {
            if line.contains(pat) && !justified(file, i, "panic-ok:") {
                findings.push(Finding::new(
                    "panic-path",
                    file,
                    i,
                    format!(
                        "{why}; request-handling code must return a typed error \
                         (or justify with `panic-ok:`)"
                    ),
                ));
                break;
            }
        }
    }
}

fn atomic_orderings(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (i, line) in file.code.iter().enumerate() {
        if line.contains("Ordering::Relaxed") && !justified(file, i, "relaxed:") {
            findings.push(Finding::new(
                "atomic-relaxed-justify",
                file,
                i,
                "Ordering::Relaxed without a `relaxed:` justification comment".to_string(),
            ));
        }
        if line.contains("Ordering::SeqCst") && !justified(file, i, "seqcst:") {
            findings.push(Finding::new(
                "atomic-seqcst-audit",
                file,
                i,
                "Ordering::SeqCst without a `seqcst:` justification — downgrade to \
                 Acquire/Release unless a cross-variable total order is required"
                    .to_string(),
            ));
        }
    }
}

/// Parses the `const TAG_* : u8 = 0x..;` table and `WIRE_SCHEMA` from
/// `frame.rs`, then checks uniqueness, density and the schema coupling.
fn wire_frame_rules(file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut tags: Vec<(String, u8, usize)> = Vec::new(); // (name, value, line0)
    let mut schema: Option<(u32, usize)> = None;
    for (i, line) in file.code.iter().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("const TAG_") {
            if let Some((name_part, value_part)) = rest.split_once('=') {
                let name = format!("TAG_{}", name_part.split(':').next().unwrap_or("").trim());
                if let Some(v) = parse_u64(value_part) {
                    tags.push((name, v as u8, i));
                }
            }
        }
        if let Some(rest) = t.strip_prefix("pub const WIRE_SCHEMA") {
            if let Some((_, value_part)) = rest.split_once('=') {
                if let Some(v) = parse_u64(value_part) {
                    schema = Some((v as u32, i));
                }
            }
        }
    }
    if tags.is_empty() {
        return;
    }
    // Uniqueness.
    let mut by_value = tags.clone();
    by_value.sort_by_key(|&(_, v, _)| v);
    for pair in by_value.windows(2) {
        if pair[0].1 == pair[1].1 {
            findings.push(Finding::new(
                "wire-tag-unique",
                file,
                pair[1].2,
                format!(
                    "{} and {} share tag {:#04x}",
                    pair[0].0, pair[1].0, pair[1].1
                ),
            ));
        }
    }
    // Density from the first tag.
    let present: Vec<u8> = by_value.iter().map(|&(_, v, _)| v).collect();
    let (lo, hi) = (present[0], present[present.len() - 1]);
    for missing in lo..hi {
        if !present.contains(&missing) {
            let after = by_value.iter().rev().find(|&&(_, v, _)| v < missing);
            findings.push(Finding::new(
                "wire-tag-dense",
                file,
                after.map_or(0, |&(_, _, l)| l),
                format!("tag table has a gap at {missing:#04x}"),
            ));
        }
    }
    // Schema coupling: one synthetic finding whose excerpt encodes the
    // exact tag set and the schema version. The baseline pins the pair;
    // `Baseline::check` refuses to bless a tag-set change that keeps the
    // schema number (see `wire_schema_conflict`).
    let tag_list: Vec<String> = by_value
        .iter()
        .map(|(_, v, _)| format!("{v:#04x}"))
        .collect();
    let (schema_v, schema_line) = schema.unwrap_or((0, 0));
    findings.push(Finding {
        rule: "wire-schema-bump",
        path: file.path.clone(),
        line: schema_line + 1,
        excerpt: format!("tags=[{}] schema={}", tag_list.join(","), schema_v),
        message: "frame-tag table ↔ WIRE_SCHEMA coupling record (any tag change must bump the \
                  schema and re-bless the baseline)"
            .to_string(),
    });
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim().trim_end_matches(';').trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Extracts `(tag_set, schema)` from a `wire-schema-bump` excerpt.
pub fn parse_schema_coupling(excerpt: &str) -> Option<(String, String)> {
    let tags = excerpt
        .split("tags=")
        .nth(1)?
        .split(']')
        .next()?
        .to_string();
    let schema = excerpt.split("schema=").nth(1)?.trim().to_string();
    Some((tags, schema))
}
