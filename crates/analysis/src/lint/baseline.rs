//! The accepted-findings baseline.
//!
//! Pre-existing findings that the team has reviewed and accepted live in
//! a checked-in text file keyed by `(rule, path, excerpt)` — *not* line
//! numbers, so unrelated edits above a finding do not churn the file.
//! `--check` fails on any finding not in the baseline **and** on any
//! baseline entry no longer produced (stale entries rot into false
//! confidence); `--bless` rewrites the file from the current findings.
//!
//! One rule gets special treatment: `wire-schema-bump` couples the frame
//! tag set to `WIRE_SCHEMA`. If the tag set changed but the schema
//! number did not, that is a hard violation that even `--bless` refuses
//! — a new frame tag without a schema bump would make old peers
//! misdecode instead of renegotiate.

use super::rules::{parse_schema_coupling, Finding};
use std::collections::BTreeMap;

/// File-format header; bump if the entry format ever changes.
const HEADER: &str = "# safeloc_lint baseline v1";

/// The parsed baseline: fingerprint → accepted occurrence count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<String, usize>,
}

/// Result of checking current findings against a baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings not covered by the baseline (or beyond their accepted
    /// count) — these fail `--check`.
    pub new: Vec<Finding>,
    /// Baseline fingerprints no longer produced (with how many
    /// occurrences disappeared) — these also fail `--check`.
    pub stale: Vec<(String, usize)>,
    /// Set when the frame tag set changed without a `WIRE_SCHEMA` bump;
    /// not blessable.
    pub schema_conflict: Option<String>,
}

impl Diff {
    /// `true` when `--check` should pass.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty() && self.schema_conflict.is_none()
    }
}

impl Baseline {
    /// Parses the baseline file format.
    ///
    /// # Errors
    ///
    /// A message naming the offending line on any malformed entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (count, fingerprint) = line
                .split_once('\t')
                .ok_or_else(|| format!("baseline line {}: missing count field", i + 1))?;
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {count:?}", i + 1))?;
            if fingerprint.split('\t').count() != 3 {
                return Err(format!(
                    "baseline line {}: fingerprint must be rule\\tpath\\texcerpt",
                    i + 1
                ));
            }
            *entries.entry(fingerprint.to_string()).or_insert(0) += count;
        }
        Ok(Self { entries })
    }

    /// Renders findings into the baseline file format (sorted, counted).
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.fingerprint()).or_insert(0) += 1;
        }
        let mut out = String::new();
        out.push_str(HEADER);
        out.push_str("\n# One accepted finding per line: <count>\\t<rule>\\t<path>\\t<excerpt>\n");
        out.push_str("# Regenerate with `cargo run --release --bin safeloc_lint -- --bless`.\n");
        for (fp, n) in &counts {
            out.push_str(&format!("{n}\t{fp}\n"));
        }
        out
    }

    /// Number of accepted findings (sum of counts).
    pub fn accepted(&self) -> usize {
        self.entries.values().sum()
    }

    /// Compares current findings against this baseline.
    pub fn check(&self, findings: &[Finding]) -> Diff {
        let mut diff = Diff::default();
        let mut remaining = self.entries.clone();
        for f in findings {
            let fp = f.fingerprint();
            match remaining.get_mut(&fp) {
                Some(n) if *n > 0 => *n -= 1,
                _ => diff.new.push(f.clone()),
            }
        }
        for (fp, n) in remaining {
            if n > 0 {
                diff.stale.push((fp, n));
            }
        }
        diff.schema_conflict = self.wire_schema_conflict(findings);
        diff
    }

    /// The unblessable case: tag set changed, schema did not.
    fn wire_schema_conflict(&self, findings: &[Finding]) -> Option<String> {
        let current = findings.iter().find(|f| f.rule == "wire-schema-bump")?;
        let (cur_tags, cur_schema) = parse_schema_coupling(&current.excerpt)?;
        for fp in self.entries.keys() {
            if let Some(rest) = fp.strip_prefix("wire-schema-bump\t") {
                let excerpt = rest.split_once('\t').map(|(_, e)| e)?;
                if let Some((base_tags, base_schema)) = parse_schema_coupling(excerpt) {
                    if base_tags != cur_tags && base_schema == cur_schema {
                        return Some(format!(
                            "frame tag table changed (was [{base_tags}], now [{cur_tags}]) but \
                             WIRE_SCHEMA is still {cur_schema} — bump WIRE_SCHEMA in \
                             crates/wire/src/frame.rs before re-blessing"
                        ));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            excerpt: excerpt.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let findings = vec![
            finding("panic-path", "a.rs", "x.unwrap();"),
            finding("panic-path", "a.rs", "x.unwrap();"),
            finding("det-wall-clock", "b.rs", "Instant::now()"),
        ];
        let text = Baseline::render(&findings);
        let base = Baseline::parse(&text).unwrap();
        assert_eq!(base.accepted(), 3);
        assert!(base.check(&findings).is_clean());
    }

    #[test]
    fn new_and_stale_entries_fail_check() {
        let old = vec![finding("panic-path", "a.rs", "x.unwrap();")];
        let base = Baseline::parse(&Baseline::render(&old)).unwrap();
        // A new finding appears…
        let now = vec![
            finding("panic-path", "a.rs", "x.unwrap();"),
            finding("panic-path", "a.rs", "y.expect(\"boom\");"),
        ];
        let diff = base.check(&now);
        assert_eq!(diff.new.len(), 1);
        assert!(diff.stale.is_empty());
        // …or a baselined one disappears.
        let diff = base.check(&[]);
        assert!(diff.new.is_empty());
        assert_eq!(diff.stale.len(), 1);
        assert!(!diff.is_clean());
    }

    #[test]
    fn duplicate_count_overflows_are_new_findings() {
        let base =
            Baseline::parse(&Baseline::render(&[finding("panic-path", "a.rs", "u()")])).unwrap();
        let now = vec![
            finding("panic-path", "a.rs", "u()"),
            finding("panic-path", "a.rs", "u()"),
        ];
        let diff = base.check(&now);
        assert_eq!(diff.new.len(), 1, "second occurrence is new");
    }

    #[test]
    fn tag_change_without_schema_bump_is_a_hard_conflict() {
        let old = vec![finding(
            "wire-schema-bump",
            "crates/wire/src/frame.rs",
            "tags=[0x01,0x02] schema=3",
        )];
        let base = Baseline::parse(&Baseline::render(&old)).unwrap();
        // New tag, same schema: conflict.
        let bad = vec![finding(
            "wire-schema-bump",
            "crates/wire/src/frame.rs",
            "tags=[0x01,0x02,0x03] schema=3",
        )];
        assert!(base.check(&bad).schema_conflict.is_some());
        // New tag with a bump: ordinary new finding, blessable.
        let good = vec![finding(
            "wire-schema-bump",
            "crates/wire/src/frame.rs",
            "tags=[0x01,0x02,0x03] schema=4",
        )];
        let diff = base.check(&good);
        assert!(diff.schema_conflict.is_none());
        assert_eq!(diff.new.len(), 1);
    }

    #[test]
    fn malformed_baselines_are_rejected_with_line_numbers() {
        assert!(Baseline::parse("garbage without tabs")
            .unwrap_err()
            .contains("line 1"));
        assert!(Baseline::parse("x\trule\tonly-two")
            .unwrap_err()
            .contains("line 1"));
        assert!(Baseline::parse("# comment\n\n3\tr\tp\te\n").is_ok());
    }
}
