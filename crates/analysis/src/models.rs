//! Interleaving models of the workspace's hand-rolled concurrent
//! structures.
//!
//! Each model re-states one real structure's algorithm over the virtual
//! primitives in [`crate::interleave`], at one-atomic-action step
//! granularity, with its correctness claim as a machine-checked
//! invariant:
//!
//! | model | real structure | claim |
//! |---|---|---|
//! | [`RegistryInterning`] | `safeloc_telemetry::Registry::register` double-checked registration | racing registrants all get the *same* series; no duplicate entry |
//! | [`HistogramCasSum`] | `safeloc_telemetry::Histogram` f64-bits CAS sum | no lost update: final sum is the exact total, count matches |
//! | [`RingWraparound`] | `safeloc_telemetry::FlightRecorder` mutex ring | retained events are exactly the most recent `capacity` pushes, every snapshot is consistent |
//! | [`HotSwapMonotonic`] | `safeloc_serve::ModelRegistry` publish/resolve | readers never see torn (version, weights) pairs; per-key versions are monotone per reader |
//!
//! Each model has a `*_buggy` variant with the guarding discipline
//! removed (no CAS, no recheck, no lock); `tests/interleave.rs` asserts
//! the checker *finds* those bugs — the checker is only trustworthy
//! because it demonstrably catches what it claims to catch.

use crate::interleave::{Model, Step, VMutex, VRwLock};

// ---------------------------------------------------------------------
// 1. Registry interning: double-checked register under an RwLock.
// ---------------------------------------------------------------------

/// N threads concurrently register the same `(name, labels)` key via
/// the read-check / write-lock / recheck / insert dance of
/// `Registry::register`.
#[derive(Debug, Clone)]
pub struct RegistryInterning {
    /// `true` removes the post-write-lock recheck (the bug the recheck
    /// exists to prevent: both racers insert).
    skip_recheck: bool,
    lock: VRwLock,
    /// Interned entries; correctness = it ends with exactly one.
    entries: Vec<u32>,
    /// Index each thread obtained.
    obtained: Vec<Option<usize>>,
    pc: Vec<u8>,
}

impl RegistryInterning {
    /// A correct model with `threads` registrants.
    pub fn new(threads: usize) -> Self {
        Self {
            skip_recheck: false,
            lock: VRwLock::default(),
            entries: Vec::new(),
            obtained: vec![None; threads],
            pc: vec![0; threads],
        }
    }

    /// The recheck-free buggy variant.
    pub fn buggy(threads: usize) -> Self {
        Self {
            skip_recheck: true,
            ..Self::new(threads)
        }
    }
}

impl Model for RegistryInterning {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn step(&mut self, tid: usize) -> Step {
        match self.pc[tid] {
            // Fast path: read-lock, check, unlock.
            0 => {
                if self.lock.try_read() {
                    self.pc[tid] = 1;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            1 => {
                // Lookup under the read lock.
                self.pc[tid] = if self.entries.is_empty() { 3 } else { 2 };
                if self.pc[tid] == 2 {
                    self.obtained[tid] = Some(0);
                }
                Step::Ran
            }
            2 => {
                self.lock.release_read();
                self.pc[tid] = 7;
                Step::Done
            }
            3 => {
                self.lock.release_read();
                self.pc[tid] = 4;
                Step::Ran
            }
            // Slow path: write-lock, recheck, insert.
            4 => {
                if self.lock.try_write(tid) {
                    self.pc[tid] = 5;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            5 => {
                if !self.skip_recheck && !self.entries.is_empty() {
                    self.obtained[tid] = Some(0); // lost the race: take theirs
                } else {
                    self.entries.push(42);
                    self.obtained[tid] = Some(self.entries.len() - 1);
                }
                self.pc[tid] = 6;
                Step::Ran
            }
            6 => {
                self.lock.release_write(tid);
                self.pc[tid] = 7;
                Step::Done
            }
            _ => Step::Done,
        }
    }

    fn check_step(&self) -> Result<(), String> {
        if self.entries.len() > 1 {
            return Err(format!(
                "duplicate interning: {} entries for one key",
                self.entries.len()
            ));
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if self.entries.len() != 1 {
            return Err(format!(
                "expected 1 interned entry, got {}",
                self.entries.len()
            ));
        }
        for (tid, got) in self.obtained.iter().enumerate() {
            if *got != Some(0) {
                return Err(format!("thread {tid} obtained {got:?}, expected Some(0)"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// 2. Histogram CAS sum: lock-free f64 accumulation.
// ---------------------------------------------------------------------

/// N adders fold distinct powers of two into one `f64`-bits word via
/// the `Histogram::add_to_sum` load/CAS-retry loop, then bump the
/// sample count. Powers of two make f64 addition exact in every order,
/// so any deviation from the total is a lost update, not rounding.
#[derive(Debug, Clone)]
pub struct HistogramCasSum {
    /// `true` replaces the CAS with a plain load/store (the lost-update
    /// bug the CAS loop exists to prevent).
    no_cas: bool,
    sum_bits: u64,
    count: u64,
    values: Vec<f64>,
    local: Vec<u64>,
    pc: Vec<u8>,
}

impl HistogramCasSum {
    /// A correct model adding `1.0, 2.0, 4.0, …` from `threads` threads.
    pub fn new(threads: usize) -> Self {
        Self {
            no_cas: false,
            sum_bits: 0f64.to_bits(),
            count: 0,
            values: (0..threads).map(|i| (1u64 << i) as f64).collect(),
            local: vec![0; threads],
            pc: vec![0; threads],
        }
    }

    /// The CAS-free buggy variant.
    pub fn buggy(threads: usize) -> Self {
        Self {
            no_cas: true,
            ..Self::new(threads)
        }
    }

    fn expected_sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

impl Model for HistogramCasSum {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn step(&mut self, tid: usize) -> Step {
        match self.pc[tid] {
            0 => {
                self.local[tid] = self.sum_bits; // atomic load
                self.pc[tid] = 1;
                Step::Ran
            }
            1 => {
                let next = (f64::from_bits(self.local[tid]) + self.values[tid]).to_bits();
                if self.no_cas {
                    self.sum_bits = next; // plain store: blind overwrite
                    self.pc[tid] = 2;
                } else if self.sum_bits == self.local[tid] {
                    self.sum_bits = next; // CAS success
                    self.pc[tid] = 2;
                } else {
                    self.local[tid] = self.sum_bits; // CAS failure observes
                }
                Step::Ran
            }
            2 => {
                self.count += 1; // fetch_add
                self.pc[tid] = 3;
                Step::Done
            }
            _ => Step::Done,
        }
    }

    fn check_final(&self) -> Result<(), String> {
        let sum = f64::from_bits(self.sum_bits);
        if sum != self.expected_sum() {
            return Err(format!(
                "lost update: sum {} != expected {}",
                sum,
                self.expected_sum()
            ));
        }
        if self.count != self.pc.len() as u64 {
            return Err(format!("count {} != {}", self.count, self.pc.len()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// 3. Flight-recorder ring wraparound.
// ---------------------------------------------------------------------

/// Writers push event ids through `FlightRecorder::push` (fill, then
/// wrap at `capacity`) while a reader snapshots `events()`; everything
/// under the ring mutex, exactly like the real recorder. A shared
/// append-only `log` linearizes push completion order, so every
/// snapshot has one right answer: the last `min(capacity, pushes)`
/// entries of the log, oldest first.
#[derive(Debug, Clone)]
pub struct RingWraparound {
    /// `true` splits each push across two lock sections (slot write
    /// released before the index/recorded update) — the torn-state bug
    /// holding the mutex across the whole push prevents.
    torn_push: bool,
    capacity: usize,
    lock: VMutex,
    buf: Vec<u64>,
    next: usize,
    recorded: u64,
    /// Linearized push order (updated atomically with the push).
    log: Vec<u64>,
    /// First verification failure observed by the reader.
    error: Option<String>,
    /// Per-thread plan: writers carry the ids they push; readers `None`.
    plans: Vec<Option<Vec<u64>>>,
    /// Per-thread progress through the plan (writers) or reads left.
    progress: Vec<usize>,
    pc: Vec<u8>,
    reads_per_reader: usize,
}

impl RingWraparound {
    /// `capacity`-slot ring, one writer per id list, `readers` snapshot
    /// threads doing `reads_per_reader` reads each.
    pub fn new(
        capacity: usize,
        writers: &[&[u64]],
        readers: usize,
        reads_per_reader: usize,
    ) -> Self {
        let mut plans: Vec<Option<Vec<u64>>> =
            writers.iter().map(|ids| Some(ids.to_vec())).collect();
        plans.extend(std::iter::repeat_n(None, readers));
        let threads = plans.len();
        Self {
            torn_push: false,
            capacity,
            lock: VMutex::default(),
            buf: Vec::new(),
            next: 0,
            recorded: 0,
            log: Vec::new(),
            error: None,
            plans,
            progress: vec![0; threads],
            pc: vec![0; threads],
            reads_per_reader,
        }
    }

    /// The torn-push buggy variant.
    pub fn buggy(capacity: usize, writers: &[&[u64]], readers: usize, reads: usize) -> Self {
        Self {
            torn_push: true,
            ..Self::new(capacity, writers, readers, reads)
        }
    }

    /// What `events()` returns right now (oldest first).
    fn view(&self) -> Vec<u64> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// The one right answer for a snapshot taken now.
    fn expected_view(&self) -> Vec<u64> {
        let keep = self.log.len().min(self.capacity);
        self.log[self.log.len() - keep..].to_vec()
    }

    fn verify_snapshot(&mut self) {
        if self.error.is_none() {
            let (got, want) = (self.view(), self.expected_view());
            if got != want {
                self.error = Some(format!("snapshot {got:?} != most recent pushes {want:?}"));
            }
        }
    }
}

impl Model for RingWraparound {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn step(&mut self, tid: usize) -> Step {
        let is_writer = self.plans[tid].is_some();
        if is_writer {
            let planned = self.plans[tid].as_ref().map_or(0, Vec::len);
            if self.progress[tid] >= planned {
                return Step::Done;
            }
            match self.pc[tid] {
                // Compose the event outside the lock (free step — this is
                // where real writers interleave).
                0 => {
                    self.pc[tid] = 1;
                    Step::Ran
                }
                1 => {
                    if self.lock.try_acquire(tid) {
                        self.pc[tid] = 2;
                        Step::Ran
                    } else {
                        Step::Blocked
                    }
                }
                2 => {
                    // Slot write.
                    let id =
                        self.plans[tid].as_ref().expect("writer has a plan")[self.progress[tid]];
                    if self.buf.len() < self.capacity {
                        self.buf.push(id);
                    } else {
                        let slot = self.next;
                        self.buf[slot] = id;
                    }
                    if self.torn_push {
                        // Bug: release between the slot write and the
                        // index/recorded update.
                        self.lock.release(tid);
                    }
                    self.pc[tid] = 3;
                    Step::Ran
                }
                3 => {
                    if self.torn_push && !self.lock.try_acquire(tid) {
                        return Step::Blocked;
                    }
                    // Index/recorded update + linearization point.
                    let id =
                        self.plans[tid].as_ref().expect("writer has a plan")[self.progress[tid]];
                    self.next = (self.next + 1) % self.capacity;
                    self.recorded += 1;
                    self.log.push(id);
                    self.pc[tid] = 4;
                    Step::Ran
                }
                4 => {
                    self.lock.release(tid);
                    self.progress[tid] += 1;
                    self.pc[tid] = 0;
                    if self.progress[tid] >= self.plans[tid].as_ref().map_or(0, Vec::len) {
                        Step::Done
                    } else {
                        Step::Ran
                    }
                }
                _ => Step::Done,
            }
        } else {
            if self.progress[tid] >= self.reads_per_reader {
                return Step::Done;
            }
            match self.pc[tid] {
                0 => {
                    if self.lock.try_acquire(tid) {
                        self.pc[tid] = 1;
                        Step::Ran
                    } else {
                        Step::Blocked
                    }
                }
                1 => {
                    self.verify_snapshot();
                    self.pc[tid] = 2;
                    Step::Ran
                }
                2 => {
                    self.lock.release(tid);
                    self.progress[tid] += 1;
                    self.pc[tid] = 0;
                    if self.progress[tid] >= self.reads_per_reader {
                        Step::Done
                    } else {
                        Step::Ran
                    }
                }
                _ => Step::Done,
            }
        }
    }

    fn check_step(&self) -> Result<(), String> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn check_final(&self) -> Result<(), String> {
        let pushed: usize = self.plans.iter().flatten().map(Vec::len).sum();
        if self.recorded != pushed as u64 {
            return Err(format!("recorded {} != pushed {pushed}", self.recorded));
        }
        let (got, want) = (self.view(), self.expected_view());
        if got != want {
            return Err(format!(
                "final retained {got:?} != most recent pushes {want:?}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// 4. Model-registry hot swap: torn reads + per-key version monotonicity.
// ---------------------------------------------------------------------

/// Weights are modeled as `version * 17`: a consistent snapshot always
/// satisfies `payload == version * 17`, so any torn (version, weights)
/// observation is immediately visible. Publishers bump under the write
/// lock exactly like `ModelRegistry::publish`; each reader asserts
/// consistency and that versions never run backwards for it.
#[derive(Debug, Clone)]
pub struct HotSwapMonotonic {
    /// `true` publishes without taking the write lock (the torn-read /
    /// monotonicity bug the lock prevents).
    no_lock: bool,
    lock: VRwLock,
    version: u64,
    payload: u64,
    publishes_per_writer: usize,
    reads_per_reader: usize,
    writers: usize,
    /// Reader-local: last version seen, staged (version, payload) read.
    last_seen: Vec<u64>,
    staged: Vec<(u64, u64)>,
    error: Option<String>,
    progress: Vec<usize>,
    pc: Vec<u8>,
}

impl HotSwapMonotonic {
    /// `writers` publishers × `publishes` each, `readers` × `reads` each.
    pub fn new(writers: usize, publishes: usize, readers: usize, reads: usize) -> Self {
        Self {
            no_lock: false,
            lock: VRwLock::default(),
            version: 0,
            payload: 0,
            publishes_per_writer: publishes,
            reads_per_reader: reads,
            writers,
            last_seen: vec![0; readers],
            staged: vec![(0, 0); readers],
            error: None,
            progress: vec![0; writers + readers],
            pc: vec![0; writers + readers],
        }
    }

    /// The lockless buggy variant.
    pub fn buggy(writers: usize, publishes: usize, readers: usize, reads: usize) -> Self {
        Self {
            no_lock: true,
            ..Self::new(writers, publishes, readers, reads)
        }
    }
}

impl Model for HotSwapMonotonic {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn step(&mut self, tid: usize) -> Step {
        if tid < self.writers {
            // Publisher.
            if self.progress[tid] >= self.publishes_per_writer {
                return Step::Done;
            }
            match self.pc[tid] {
                0 => {
                    if self.no_lock || self.lock.try_write(tid) {
                        self.pc[tid] = 1;
                        Step::Ran
                    } else {
                        Step::Blocked
                    }
                }
                1 => {
                    self.version += 1; // version write
                    self.pc[tid] = 2;
                    Step::Ran
                }
                2 => {
                    self.payload = self.version * 17; // weights write
                    self.pc[tid] = 3;
                    Step::Ran
                }
                3 => {
                    if !self.no_lock {
                        self.lock.release_write(tid);
                    }
                    self.progress[tid] += 1;
                    self.pc[tid] = 0;
                    if self.progress[tid] >= self.publishes_per_writer {
                        Step::Done
                    } else {
                        Step::Ran
                    }
                }
                _ => Step::Done,
            }
        } else {
            // Reader.
            let r = tid - self.writers;
            if self.progress[tid] >= self.reads_per_reader {
                return Step::Done;
            }
            match self.pc[tid] {
                0 => {
                    if self.lock.try_read() {
                        self.pc[tid] = 1;
                        Step::Ran
                    } else {
                        Step::Blocked
                    }
                }
                1 => {
                    self.staged[r].0 = self.version; // version read
                    self.pc[tid] = 2;
                    Step::Ran
                }
                2 => {
                    self.staged[r].1 = self.payload; // weights read
                    self.pc[tid] = 3;
                    Step::Ran
                }
                3 => {
                    self.lock.release_read();
                    let (v, p) = self.staged[r];
                    if self.error.is_none() {
                        if p != v * 17 {
                            self.error = Some(format!("torn read: version {v} with weights {p}"));
                        } else if v < self.last_seen[r] {
                            self.error = Some(format!(
                                "version ran backwards: saw {v} after {}",
                                self.last_seen[r]
                            ));
                        }
                    }
                    self.last_seen[r] = v;
                    self.progress[tid] += 1;
                    self.pc[tid] = 0;
                    if self.progress[tid] >= self.reads_per_reader {
                        Step::Done
                    } else {
                        Step::Ran
                    }
                }
                _ => Step::Done,
            }
        }
    }

    fn check_step(&self) -> Result<(), String> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn check_final(&self) -> Result<(), String> {
        let expected = (self.writers * self.publishes_per_writer) as u64;
        if self.version != expected {
            return Err(format!(
                "final version {} != {} publishes",
                self.version, expected
            ));
        }
        if self.payload != self.version * 17 {
            return Err(format!(
                "final weights {} torn against version {}",
                self.payload, self.version
            ));
        }
        Ok(())
    }
}
