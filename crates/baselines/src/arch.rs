//! Layer-width choices for the baseline global models.
//!
//! The originals do not publish exact widths for the Wi-Fi localization
//! setting, so widths are chosen to (a) match each paper's qualitative
//! description ("three-layer DNN", "simple MLP", "resource-intensive") and
//! (b) preserve Table I's parameter-count ordering:
//! SAFELOC < FEDCC < FEDHIL < ONLAD < FEDLOC < FEDLS.

/// FEDLOC's three-layer DNN (the paper's heaviest single localizer after
/// FEDLS).
pub fn fedloc_dims(input_dim: usize, n_classes: usize) -> Vec<usize> {
    vec![input_dim, 608, 176, n_classes]
}

/// FEDHIL's three-layer DNN.
pub fn fedhil_dims(input_dim: usize, n_classes: usize) -> Vec<usize> {
    vec![input_dim, 480, 128, n_classes]
}

/// KRUM's "simple MLP".
pub fn krum_dims(input_dim: usize, n_classes: usize) -> Vec<usize> {
    vec![input_dim, 128, n_classes]
}

/// FEDCC's DNN — closest in size to SAFELOC's fused model.
pub fn fedcc_dims(input_dim: usize, n_classes: usize) -> Vec<usize> {
    vec![input_dim, 216, 104, n_classes]
}

/// FEDLS's large localizer (the "resource-intensive" entry of Table I).
pub fn fedls_dims(input_dim: usize, n_classes: usize) -> Vec<usize> {
    vec![input_dim, 512, 256, n_classes]
}

/// ONLAD's localizer.
pub fn onlad_localizer_dims(input_dim: usize, n_classes: usize) -> Vec<usize> {
    vec![input_dim, 512, 160, n_classes]
}

/// ONLAD's on-device anomaly-detector autoencoder.
///
/// The hidden layer is an *undercomplete* bottleneck (one third of the input
/// width): an overcomplete AE would learn the identity map and reconstruct
/// poisoned inputs perfectly, blinding the detector.
pub fn onlad_detector_dims(input_dim: usize) -> Vec<usize> {
    vec![input_dim, (input_dim / 3).max(4), input_dim]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp_params(dims: &[usize]) -> usize {
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Table I ordering: SAFELOC < FEDCC < FEDHIL < ONLAD < FEDLOC < FEDLS
    /// for the paper's Building-1 shape (203 APs, 60 RPs).
    #[test]
    fn parameter_ordering_matches_table_one() {
        let (d, c) = (203, 60);
        // SAFELOC fused: encoder 128-89-62, decoder 89-d, classifier 62-c.
        let safeloc = (d * 128 + 128)
            + (128 * 89 + 89)
            + (89 * 62 + 62)
            + (62 * 89 + 89)
            + (89 * d + d)
            + (62 * c + c);
        let fedcc = mlp_params(&fedcc_dims(d, c));
        let fedhil = mlp_params(&fedhil_dims(d, c));
        let onlad = mlp_params(&onlad_localizer_dims(d, c)) + mlp_params(&onlad_detector_dims(d));
        let fedloc = mlp_params(&fedloc_dims(d, c));
        let fedls = mlp_params(&fedls_dims(d, c));
        assert!(
            safeloc < fedcc && fedcc < fedhil && fedhil < onlad && onlad < fedloc && fedloc < fedls,
            "ordering broken: SAFELOC {safeloc}, FEDCC {fedcc}, FEDHIL {fedhil}, \
             ONLAD {onlad}, FEDLOC {fedloc}, FEDLS {fedls}"
        );
    }

    #[test]
    fn ratios_are_in_the_paper_ballpark() {
        // Paper ratios to SAFELOC: FEDCC 1.05, FEDHIL 2.37, ONLAD 3.17,
        // FEDLOC 3.35, FEDLS 6.88. Ours should be within a factor ~2 of
        // those (geometry differs since the paper's input width is unknown).
        let (d, c) = (203, 60);
        let safeloc = (d * 128 + 128)
            + (128 * 89 + 89)
            + (89 * 62 + 62)
            + (62 * 89 + 89)
            + (89 * d + d)
            + (62 * c + c);
        let ratio = |p: usize| p as f32 / safeloc as f32;
        assert!((0.8..2.2).contains(&ratio(mlp_params(&fedcc_dims(d, c)))));
        assert!((1.5..4.0).contains(&ratio(mlp_params(&fedhil_dims(d, c)))));
        assert!((2.0..6.0).contains(&ratio(mlp_params(&fedloc_dims(d, c)))));
        assert!((3.0..10.0).contains(&ratio(mlp_params(&fedls_dims(d, c)))));
    }
}
