//! FEDHIL (Gufran et al., ACM TECS 2023): DNN global model + selective
//! per-tensor aggregation.

use crate::arch::fedhil_dims;
use safeloc_dataset::FingerprintSet;
use safeloc_fl::{
    Client, DefensePipeline, Framework, RoundPlan, RoundReport, SelectiveAggregator,
    SequentialFlServer, ServerConfig,
};
use safeloc_nn::Matrix;

/// FEDHIL: heterogeneity-resilient FL with selective weight aggregation —
/// per-tensor outlier rejection against the median client deviation.
///
/// Fig. 1 shows it more resilient than FEDLOC to backdoors but *worse* under
/// label flipping: flipped-label LMs deviate on most tensors at once, so the
/// median itself shifts and poisoned tensors get accepted.
#[derive(Debug, Clone)]
pub struct FedHil {
    inner: SequentialFlServer,
}

impl FedHil {
    /// Creates FEDHIL for a building.
    pub fn new(input_dim: usize, n_classes: usize, cfg: ServerConfig) -> Self {
        Self {
            inner: SequentialFlServer::named(
                "FEDHIL",
                &fedhil_dims(input_dim, n_classes),
                Box::new(DefensePipeline::selective(
                    SelectiveAggregator::default().aggregate_fraction,
                )),
                cfg,
            ),
        }
    }
}

impl Framework for FedHil {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        self.inner.pretrain(train);
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        self.inner.run_round(clients, plan)
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.inner.predict(x)
    }

    fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    fn global_params(&self) -> safeloc_nn::NamedParams {
        self.inner.global_params()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(
        &mut self,
        aggregator: Box<dyn safeloc_fl::Aggregator>,
    ) -> Result<(), String> {
        self.inner.set_aggregator(aggregator);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    #[test]
    fn trains_and_uses_selective_aggregation() {
        let data = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 1);
        let mut f = FedHil::new(
            data.building.num_aps(),
            data.building.num_rps(),
            ServerConfig::tiny(),
        );
        assert_eq!(f.name(), "FEDHIL");
        f.pretrain(&data.server_train);
        let before = f.accuracy(&data.server_train.x, &data.server_train.labels);
        assert!(before > 0.7, "pretrain accuracy {before}");
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::full(clients.len());
        f.run_round(&mut clients, &plan);
        let after = f.accuracy(&data.server_train.x, &data.server_train.labels);
        assert!(after > before - 0.3);
    }
}
