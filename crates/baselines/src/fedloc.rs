//! FEDLOC (Yin et al., IEEE JSP 2020): DNN global model + plain FedAvg.

use crate::arch::fedloc_dims;
use safeloc_dataset::FingerprintSet;
use safeloc_fl::{
    Client, DefensePipeline, Framework, RoundPlan, RoundReport, SequentialFlServer, ServerConfig,
};
use safeloc_nn::Matrix;

/// FEDLOC: a three-layer DNN aggregated with FedAvg and no defense — the
/// paper's most vulnerable baseline (highest errors in Figs. 1 and 6).
#[derive(Debug, Clone)]
pub struct FedLoc {
    inner: SequentialFlServer,
}

impl FedLoc {
    /// Creates FEDLOC for a building.
    pub fn new(input_dim: usize, n_classes: usize, cfg: ServerConfig) -> Self {
        Self {
            inner: SequentialFlServer::named(
                "FEDLOC",
                &fedloc_dims(input_dim, n_classes),
                Box::new(DefensePipeline::fedavg()),
                cfg,
            ),
        }
    }
}

impl Framework for FedLoc {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        self.inner.pretrain(train);
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        self.inner.run_round(clients, plan)
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.inner.predict(x)
    }

    fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    fn global_params(&self) -> safeloc_nn::NamedParams {
        self.inner.global_params()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(
        &mut self,
        aggregator: Box<dyn safeloc_fl::Aggregator>,
    ) -> Result<(), String> {
        self.inner.set_aggregator(aggregator);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    #[test]
    fn trains_and_names_itself() {
        let data = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 1);
        let mut f = FedLoc::new(
            data.building.num_aps(),
            data.building.num_rps(),
            ServerConfig::tiny(),
        );
        assert_eq!(f.name(), "FEDLOC");
        f.pretrain(&data.server_train);
        assert!(f.accuracy(&data.server_train.x, &data.server_train.labels) > 0.7);
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::full(clients.len());
        f.run_round(&mut clients, &plan);
    }

    #[test]
    fn param_count_matches_architecture() {
        let f = FedLoc::new(50, 10, ServerConfig::tiny());
        let dims = fedloc_dims(50, 10);
        let expect: usize = dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
        assert_eq!(f.num_params(), expect);
    }
}
