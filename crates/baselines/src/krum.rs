//! KRUM (El Mhamdi et al. 2018): simple MLP + Krum LM selection.

use crate::arch::krum_dims;
use safeloc_dataset::FingerprintSet;
use safeloc_fl::{
    Client, DefensePipeline, Framework, RoundPlan, RoundReport, SequentialFlServer, ServerConfig,
};
use safeloc_nn::Matrix;

/// The KRUM baseline (§II): a simple MLP global model whose next version is
/// the single LM closest to its peers. Robust to isolated outliers but
/// discards the collaborative signal — weak device-heterogeneity resilience.
#[derive(Debug, Clone)]
pub struct KrumFramework {
    inner: SequentialFlServer,
}

impl KrumFramework {
    /// Creates the KRUM framework assuming one Byzantine client.
    pub fn new(input_dim: usize, n_classes: usize, cfg: ServerConfig) -> Self {
        Self::with_byzantine(input_dim, n_classes, cfg, 1)
    }

    /// Creates the KRUM framework assuming `f` Byzantine clients.
    pub fn with_byzantine(input_dim: usize, n_classes: usize, cfg: ServerConfig, f: usize) -> Self {
        Self {
            inner: SequentialFlServer::named(
                "KRUM",
                &krum_dims(input_dim, n_classes),
                Box::new(DefensePipeline::krum(f)),
                cfg,
            ),
        }
    }
}

impl Framework for KrumFramework {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        self.inner.pretrain(train);
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        self.inner.run_round(clients, plan)
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.inner.predict(x)
    }

    fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    fn global_params(&self) -> safeloc_nn::NamedParams {
        self.inner.global_params()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(
        &mut self,
        aggregator: Box<dyn safeloc_fl::Aggregator>,
    ) -> Result<(), String> {
        self.inner.set_aggregator(aggregator);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    #[test]
    fn trains_with_krum_selection() {
        let data = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 1);
        let mut f = KrumFramework::new(
            data.building.num_aps(),
            data.building.num_rps(),
            ServerConfig::tiny(),
        );
        assert_eq!(f.name(), "KRUM");
        f.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::full(clients.len());
        f.run_round(&mut clients, &plan);
        assert!(f.accuracy(&data.server_train.x, &data.server_train.labels) > 0.4);
    }

    #[test]
    fn is_the_smallest_baseline() {
        let f = KrumFramework::new(100, 20, ServerConfig::tiny());
        let fedloc = crate::FedLoc::new(100, 20, ServerConfig::tiny());
        assert!(f.num_params() < fedloc.num_params());
    }
}
