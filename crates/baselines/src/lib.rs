//! The six baseline FL indoor-localization frameworks the paper compares
//! SAFELOC against (§II, §V).
//!
//! | Framework | Global model | Aggregation | Defense |
//! |---|---|---|---|
//! | [`FedLoc`] | 3-layer DNN | FedAvg | none |
//! | [`FedHil`] | 3-layer DNN | selective per-tensor | outlier tensors dropped |
//! | [`KrumFramework`] | small MLP | Krum selection | distance-based LM filtering |
//! | [`FedCc`] | DNN | 2-means clustering | minority cluster dropped |
//! | [`FedLs`] | large DNN + server AE | latent-space filtering | anomalous updates dropped |
//! | [`Onlad`] | DNN + on-device AE | FedAvg | poisoned *samples* dropped on device |
//!
//! All implement [`safeloc_fl::Framework`] so the benches treat
//! them interchangeably with SAFELOC. Layer widths (see
//! [`arch`]) are chosen to preserve the paper's Table I parameter-count
//! ordering (SAFELOC < FEDCC < FEDHIL < ONLAD < FEDLOC < FEDLS); the
//! originals' exact widths are not published for the localization setting.
//!
//! # Example
//!
//! ```
//! use safeloc_baselines::FedLoc;
//! use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
//! use safeloc_fl::{Client, Framework, RoundPlan, ServerConfig};
//!
//! let data = BuildingDataset::generate(Building::tiny(2), &DatasetConfig::tiny(), 2);
//! let mut f = FedLoc::new(data.building.num_aps(), data.building.num_rps(), ServerConfig::tiny());
//! f.pretrain(&data.server_train);
//! let mut clients = Client::from_dataset(&data, 0);
//! let plan = RoundPlan::full(clients.len());
//! let report = f.run_round(&mut clients, &plan);
//! assert_eq!(f.name(), "FEDLOC");
//! assert_eq!(report.accepted(), clients.len());
//! ```

pub mod arch;
pub mod fedcc;
pub mod fedhil;
pub mod fedloc;
pub mod fedls;
pub mod krum;
pub mod onlad;

pub use fedcc::FedCc;
pub use fedhil::FedHil;
pub use fedloc::FedLoc;
pub use fedls::FedLs;
pub use krum::KrumFramework;
pub use onlad::Onlad;

use safeloc_fl::{Framework, ServerConfig};

/// Builds every baseline for a building, in the paper's comparison order.
pub fn all_baselines(
    input_dim: usize,
    n_classes: usize,
    cfg: ServerConfig,
) -> Vec<Box<dyn Framework>> {
    vec![
        Box::new(Onlad::new(input_dim, n_classes, cfg)),
        Box::new(FedLs::new(input_dim, n_classes, cfg)),
        Box::new(FedCc::new(input_dim, n_classes, cfg)),
        Box::new(FedHil::new(input_dim, n_classes, cfg)),
        Box::new(FedLoc::new(input_dim, n_classes, cfg)),
    ]
}
