//! ONLAD (Tsukada et al., IEEE TC 2020): on-device autoencoder anomaly
//! detection + separate localization DNN, aggregated with FedAvg.

use crate::arch::{onlad_detector_dims, onlad_localizer_dims};
use rayon::prelude::*;
use safeloc_dataset::FingerprintSet;
use safeloc_fl::client::train_sequential_lm;
use safeloc_fl::report::RoundTimer;
use safeloc_fl::{
    active_clients, Aggregator, Client, ClientUpdate, DefensePipeline, Framework, RoundPlan,
    RoundReport, ServerConfig,
};
use safeloc_nn::{Activation, Adam, HasParams, Matrix, NamedParams, Sequential, TrainConfig};

/// ONLAD: two separate models — an on-device semi-supervised autoencoder
/// that flags anomalous *samples* before local training, and a conventional
/// localization DNN aggregated with FedAvg.
///
/// The paper ranks it second overall: sample-level detection blunts
/// backdoors, but FedAvg still admits the noisy weight tensors produced by
/// label-flipped training (labels are invisible to the detector). The
/// original uses an OS-ELM autoencoder updated online; here the detector is
/// a gradient-trained AE calibrated server-side and kept fixed on device
/// (see `DESIGN.md` §5).
#[derive(Clone)]
pub struct Onlad {
    localizer: Sequential,
    detector: Sequential,
    threshold: f32,
    aggregator: Box<dyn Aggregator>,
    cfg: ServerConfig,
    rounds_run: usize,
}

impl std::fmt::Debug for Onlad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Onlad")
            .field("params", &self.num_params())
            .field("threshold", &self.threshold)
            .field("rounds_run", &self.rounds_run)
            .finish()
    }
}

impl Onlad {
    /// Creates ONLAD for a building.
    pub fn new(input_dim: usize, n_classes: usize, cfg: ServerConfig) -> Self {
        Self {
            localizer: Sequential::mlp(
                &onlad_localizer_dims(input_dim, n_classes),
                Activation::Relu,
                cfg.seed,
            ),
            detector: Sequential::mlp(
                &onlad_detector_dims(input_dim),
                Activation::Relu,
                cfg.seed ^ 0xDE7EC7,
            ),
            threshold: f32::INFINITY, // calibrated during pretrain
            aggregator: Box::new(DefensePipeline::fedavg()),
            cfg,
            rounds_run: 0,
        }
    }

    /// The calibrated detection threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The on-device detector (for latency benches).
    pub fn detector(&self) -> &Sequential {
        &self.detector
    }

    /// The localization model (for latency benches).
    pub fn localizer(&self) -> &Sequential {
        &self.localizer
    }

    /// Indices of the rows the on-device detector keeps (used by tests to
    /// probe detection quality directly).
    pub fn keep_indices(&self, x: &Matrix) -> Vec<usize> {
        keep_indices(&self.detector, self.threshold, x)
    }
}

/// Indices of the rows the on-device detector keeps (RCE within the
/// calibrated threshold) — free-standing so the parallel client loop can
/// borrow just the detector model, not the whole (non-`Sync`) framework.
fn keep_indices(detector: &Sequential, threshold: f32, x: &Matrix) -> Vec<usize> {
    detector
        .relative_reconstruction_error(x)
        .iter()
        .enumerate()
        .filter(|(_, &r)| r <= threshold)
        .map(|(i, _)| i)
        .collect()
}

impl Framework for Onlad {
    fn name(&self) -> &'static str {
        "ONLAD"
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        // Localizer: standard classification pretraining.
        let mut opt = Adam::new(self.cfg.pretrain_lr);
        self.localizer.fit_classifier(
            &train.x,
            &train.labels,
            &mut opt,
            &TrainConfig::new(self.cfg.pretrain_epochs, self.cfg.batch_size, self.cfg.seed),
        );
        // Detector: autoencoder on the clean survey split.
        let mut ae_opt = Adam::new(self.cfg.pretrain_lr);
        self.detector.fit_autoencoder(
            &train.x,
            &mut ae_opt,
            &TrainConfig::new(
                self.cfg.pretrain_epochs,
                self.cfg.batch_size,
                self.cfg.seed ^ 1,
            ),
        );
        // Calibrate the sample-level threshold at p95 of clean RCE × 1.3.
        let mut rce = self.detector.relative_reconstruction_error(&train.x);
        rce.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((rce.len() - 1) as f32 * 0.95).round() as usize;
        self.threshold = rce[idx] * 1.3;
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        let n_classes = self.localizer.out_dim();
        let round_salt = (self.rounds_run as u64 + 1) << 16;
        // One snapshot shared across the fleet; clients are independent,
        // so detection + local retraining runs in parallel over the
        // participating cohort.
        let gm_snapshot = self.localizer.snapshot();
        let localizer = &self.localizer;
        let detector = &self.detector;
        let threshold = self.threshold;
        let local = &self.cfg.local;
        let timer = RoundTimer::start();
        let updates: Vec<ClientUpdate> = active_clients(clients, plan)
            .into_par_iter()
            .map(|c| {
                // Backdoor attackers perturb the RSS feed first.
                let base = c.base_labels(localizer, local);
                let x = c.round_rss(localizer, &base, n_classes);
                // On-device detection: drop anomalous samples.
                let keep = keep_indices(detector, threshold, &x);
                if keep.is_empty() {
                    // Everything flagged: the client sits this round out by
                    // returning the GM unchanged.
                    return ClientUpdate::new(c.id, gm_snapshot.clone(), 0);
                }
                let x = safeloc_nn::gather_rows(&x, &keep);
                // Labeling per protocol on the surviving rows.
                let labels = match local.labeling {
                    safeloc_fl::LabelingMode::SelfTrain => localizer.predict(&x),
                    safeloc_fl::LabelingMode::Surveyed => {
                        keep.iter().map(|&i| c.local.labels[i]).collect()
                    }
                };
                // Label-flipping attackers corrupt the final labels.
                let labels = c.round_labels(labels, n_classes);
                let filtered = FingerprintSet::new(x, labels);
                let params = train_sequential_lm(localizer, &filtered, local, c.seed ^ round_salt);
                let params = c.finalize_params(&gm_snapshot, params);
                c.build_update(&gm_snapshot, params, filtered.len())
            })
            .collect();
        let timer = timer.split();
        let outcome = self
            .aggregator
            .aggregate(&self.localizer.snapshot(), &updates);
        let stages = self.aggregator.take_stage_telemetry();
        self.localizer
            .load(&outcome.params)
            .expect("aggregation preserves architecture");
        let report = timer.finish(
            self.rounds_run,
            self.name(),
            clients,
            plan,
            &updates,
            &outcome,
            stages,
        );
        self.rounds_run += 1;
        report
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.localizer.predict(x)
    }

    fn num_params(&self) -> usize {
        self.localizer.num_params() + self.detector.num_params()
    }

    fn global_params(&self) -> NamedParams {
        // Only the localizer is federated; the detector is calibrated
        // server-side and never rewritten by a round.
        self.localizer.snapshot()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(&mut self, aggregator: Box<dyn Aggregator>) -> Result<(), String> {
        // Only the server-side combination rule is swapped; the on-device
        // detector keeps screening samples in front of whatever runs here.
        self.aggregator = aggregator;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_attacks::{Attack, PoisonInjector};
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    fn dataset() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(3), &DatasetConfig::tiny(), 3)
    }

    fn pretrained(data: &BuildingDataset) -> Onlad {
        let mut f = Onlad::new(
            data.building.num_aps(),
            data.building.num_rps(),
            ServerConfig::tiny(),
        );
        f.pretrain(&data.server_train);
        f
    }

    #[test]
    fn pretrain_calibrates_threshold() {
        let data = dataset();
        let f = pretrained(&data);
        assert!(f.threshold().is_finite());
        assert!(f.threshold() > 0.0);
        assert!(f.accuracy(&data.server_train.x, &data.server_train.labels) > 0.7);
    }

    #[test]
    fn detector_drops_perturbed_samples() {
        let data = dataset();
        let f = pretrained(&data);
        let clean_keep = f.keep_indices(&data.server_train.x);
        assert!(
            clean_keep.len() as f32 >= data.server_train.len() as f32 * 0.8,
            "detector drops too much clean data"
        );
        let poisoned = data.server_train.x.map(|v| (v + 0.5).min(1.0));
        let poisoned_keep = f.keep_indices(&poisoned);
        assert!(
            poisoned_keep.len() < clean_keep.len(),
            "detector blind to perturbations"
        );
    }

    #[test]
    fn backdoor_rounds_stay_stable() {
        let data = dataset();
        let mut f = pretrained(&data);
        let eval = &data.client_test[0];
        let before = f.accuracy(&eval.x, &eval.labels);
        let mut clients = Client::from_dataset(&data, 0);
        let last = clients.len() - 1;
        clients[last].injector = Some(PoisonInjector::new(Attack::fgsm(0.6), 7));
        let plan = RoundPlan::full(clients.len());
        for _ in 0..3 {
            f.run_round(&mut clients, &plan);
        }
        let after = f.accuracy(&eval.x, &eval.labels);
        assert!(
            after > before - 0.35,
            "ONLAD collapsed under backdoor: {before} -> {after}"
        );
    }

    #[test]
    fn counts_both_models() {
        let f = Onlad::new(100, 20, ServerConfig::tiny());
        assert_eq!(
            f.num_params(),
            f.localizer().num_params() + f.detector().num_params()
        );
    }
}
