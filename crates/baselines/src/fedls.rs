//! FEDLS (Luong et al. 2023): large DNN + server-side latent-space
//! anomaly filtering of updates.

use crate::arch::fedls_dims;
use safeloc_dataset::FingerprintSet;
use safeloc_fl::{
    Client, DefensePipeline, Framework, RoundPlan, RoundReport, SequentialFlServer, ServerConfig,
};
use safeloc_nn::Matrix;

/// FEDLS: every round, the server projects the received update deltas into
/// a latent space, fits an autoencoder, and drops updates whose
/// reconstruction error is anomalous before FedAvg.
///
/// The "resource-intensive" baseline of Table I: it deploys the largest
/// localizer and runs a second model server-side. Strong on label flipping;
/// weaker on backdoors whose LM-space footprint hides inside the
/// heterogeneity scatter (Fig. 6).
#[derive(Debug, Clone)]
pub struct FedLs {
    inner: SequentialFlServer,
}

impl FedLs {
    /// Creates FEDLS for a building.
    pub fn new(input_dim: usize, n_classes: usize, cfg: ServerConfig) -> Self {
        Self {
            inner: SequentialFlServer::named(
                "FEDLS",
                &fedls_dims(input_dim, n_classes),
                Box::new(DefensePipeline::latent(cfg.seed)),
                cfg,
            ),
        }
    }
}

impl Framework for FedLs {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        self.inner.pretrain(train);
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        self.inner.run_round(clients, plan)
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.inner.predict(x)
    }

    fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    fn global_params(&self) -> safeloc_nn::NamedParams {
        self.inner.global_params()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(
        &mut self,
        aggregator: Box<dyn safeloc_fl::Aggregator>,
    ) -> Result<(), String> {
        self.inner.set_aggregator(aggregator);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    #[test]
    fn trains_with_latent_filtering() {
        let data = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 1);
        let mut f = FedLs::new(
            data.building.num_aps(),
            data.building.num_rps(),
            ServerConfig::tiny(),
        );
        assert_eq!(f.name(), "FEDLS");
        f.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::full(clients.len());
        f.run_round(&mut clients, &plan);
        assert!(f.accuracy(&data.server_train.x, &data.server_train.labels) > 0.5);
    }

    #[test]
    fn is_the_largest_framework() {
        let f = FedLs::new(100, 20, ServerConfig::tiny());
        let fedloc = crate::FedLoc::new(100, 20, ServerConfig::tiny());
        assert!(f.num_params() > fedloc.num_params());
    }
}
