//! FEDCC (Jeong et al. 2022): DNN + similarity clustering of updates.

use crate::arch::fedcc_dims;
use safeloc_dataset::FingerprintSet;
use safeloc_fl::{
    Client, ClusterAggregator, DefensePipeline, Framework, RoundPlan, RoundReport,
    SequentialFlServer, ServerConfig,
};
use safeloc_nn::Matrix;

/// FEDCC: clusters client updates by gradient similarity and aggregates
/// only the majority cluster.
///
/// Resilient to label flipping (flipped LMs form their own cluster) but —
/// per the paper's Fig. 6 analysis — weak against strong backdoors, where
/// honest heterogeneous clients scatter enough that legitimate updates land
/// in the discarded cluster.
#[derive(Debug, Clone)]
pub struct FedCc {
    inner: SequentialFlServer,
}

impl FedCc {
    /// Creates FEDCC for a building.
    pub fn new(input_dim: usize, n_classes: usize, cfg: ServerConfig) -> Self {
        Self {
            inner: SequentialFlServer::named(
                "FEDCC",
                &fedcc_dims(input_dim, n_classes),
                Box::new(DefensePipeline::cluster(
                    ClusterAggregator::default().separation_threshold,
                )),
                cfg,
            ),
        }
    }
}

impl Framework for FedCc {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        self.inner.pretrain(train);
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        self.inner.run_round(clients, plan)
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.inner.predict(x)
    }

    fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    fn global_params(&self) -> safeloc_nn::NamedParams {
        self.inner.global_params()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(
        &mut self,
        aggregator: Box<dyn safeloc_fl::Aggregator>,
    ) -> Result<(), String> {
        self.inner.set_aggregator(aggregator);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    #[test]
    fn trains_with_clustering() {
        let data = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 1);
        let mut f = FedCc::new(
            data.building.num_aps(),
            data.building.num_rps(),
            ServerConfig::tiny(),
        );
        assert_eq!(f.name(), "FEDCC");
        f.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::full(clients.len());
        f.run_round(&mut clients, &plan);
        assert!(f.accuracy(&data.server_train.x, &data.server_train.labels) > 0.5);
    }
}
