//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal replacement exposing the surface the SAFELOC crates actually
//! use: `#[derive(Serialize, Deserialize)]`, the two traits, and (through
//! the sibling `serde_json` stub) JSON round-trips in the same externally
//! tagged format real serde produces.
//!
//! The data model is a single [`Value`] tree rather than serde's
//! visitor-based zero-copy pipeline. That trades speed for simplicity —
//! serialization is not on the training hot path anywhere in this
//! workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of `(key, value)` pairs. Order is
    /// preserved so struct round-trips are byte-stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Numeric view as `u64` (accepts non-negative integers and integral
    /// floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Looks up `name` in an object's entry list (first match wins, as in JSON).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn serialize_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `v`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between `v` and
    /// the expected shape.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_float {
    ($t:ty) => {
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::msg(concat!("expected number for ", stringify!($t))))
            }
        }
    };
}

impl_float!(f32);
impl_float!(f64);

macro_rules! impl_uint {
    ($t:ty) => {
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| {
                        Error::msg(concat!("expected unsigned integer for ", stringify!($t)))
                    })
            }
        }
    };
}

impl_uint!(u8);
impl_uint!(u16);
impl_uint!(u32);
impl_uint!(u64);
impl_uint!(usize);

macro_rules! impl_int {
    ($t:ty) => {
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::msg(concat!("expected integer for ", stringify!($t))))
            }
        }
    };
}

impl_int!(i8);
impl_int!(i16);
impl_int!(i32);
impl_int!(i64);
impl_int!(isize);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(v).map(Some)
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::msg("expected 2-tuple"))?;
        if arr.len() != 2 {
            return Err(Error::msg("expected 2-tuple"));
        }
        Ok((
            A::deserialize_value(&arr[0])?,
            B::deserialize_value(&arr[1])?,
        ))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}
