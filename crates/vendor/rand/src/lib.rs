//! Offline stand-in for the `rand` crate.
//!
//! Exposes the subset of rand 0.8's API this workspace uses — `Rng` with
//! `gen_range`/`gen_bool`, `SeedableRng::seed_from_u64`, `rngs::StdRng` and
//! `seq::SliceRandom` — backed by xoshiro256++ seeded through SplitMix64.
//! Streams are fully deterministic per seed, which is all the workspace's
//! reproducibility guarantees rely on; there is no OS entropy source here
//! at all.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform `f32` in `[0, 1)`.
    fn gen_unit_f32(&mut self) -> f32 {
        unit_f32(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f32(word: u64) -> f32 {
    // 24 high-quality mantissa bits -> [0, 1).
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Constructs the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic general-purpose generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Commonly used generators.
pub mod rngs {
    pub use super::StdRng;

    /// Alias: the stub's `SmallRng` is the same generator as [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Slice shuffling and selection.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // span unit — negligible for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    };
}

macro_rules! impl_float_range {
    ($t:ty, $unit:ident) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * $unit(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                start + (end - start) * $unit(rng.next_u64()) as $t
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);
impl_int_range!(i64);
impl_int_range!(i32);
impl_float_range!(f32, unit_f32);
impl_float_range!(f64, unit_f64);

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let g = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = 0;
        for _ in 0..1000 {
            if rng.gen_range(0.0f32..1.0) < 0.5 {
                lo += 1;
            }
        }
        assert!((350..=650).contains(&lo), "heavily skewed: {lo}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((600..=800).contains(&hits), "p=0.7 got {hits}/1000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
