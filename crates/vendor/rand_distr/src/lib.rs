//! Offline stand-in for `rand_distr`: the [`Normal`] distribution over
//! `f32`/`f64` via Box–Muller, which is all the SAFELOC workspace samples.

use rand::RngCore;

/// A distribution that can be sampled with any RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`] (non-finite or negative std-dev).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Floating-point scalar usable by [`Normal`] (`f32` / `f64`).
pub trait Float: Copy {
    /// `true` if neither NaN nor infinite.
    fn is_finite_val(self) -> bool;
    /// Comparison against zero.
    fn is_negative_val(self) -> bool;
    /// Conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Fused `mean + std * z`.
    fn mul_add_val(self, std: Self, z: f64) -> Self;
}

impl Float for f32 {
    fn is_finite_val(self) -> bool {
        self.is_finite()
    }
    fn is_negative_val(self) -> bool {
        self < 0.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn mul_add_val(self, std: Self, z: f64) -> Self {
        self + std * (z as f32)
    }
}

impl Float for f64 {
    fn is_finite_val(self) -> bool {
        self.is_finite()
    }
    fn is_negative_val(self) -> bool {
        self < 0.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn mul_add_val(self, std: Self, z: f64) -> Self {
        self + std * z
    }
}

/// Gaussian distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl<T: Float> Normal<T> {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative or either parameter
    /// is non-finite.
    pub fn new(mean: T, std_dev: T) -> Result<Self, NormalError> {
        if !mean.is_finite_val() || !std_dev.is_finite_val() || std_dev.is_negative_val() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> T {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> T {
        self.std_dev
    }
}

impl<T: Float> Distribution<T> for Normal<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        // Box–Muller on two fresh uniforms. The cosine branch alone keeps
        // the stream length per sample fixed (2 words), which matters for
        // reproducibility across call sites.
        let u1 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let r = (-2.0 * (1.0 - u1).max(f64::MIN_POSITIVE).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean.mul_add_val(self.std_dev, r * theta.cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }

    #[test]
    fn moments_are_close() {
        let n = Normal::new(2.0f32, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let samples: Vec<f32> = (0..20000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f32>() / samples.len() as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_is_constant() {
        let n = Normal::new(5.0f32, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 5.0);
        }
    }
}
