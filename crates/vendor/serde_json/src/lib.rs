//! Offline stand-in for `serde_json`: prints and parses the [`Value`] tree
//! of the workspace's `serde` stub in standard JSON syntax (externally
//! tagged enums, struct field order preserved).

pub use serde::{Error, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for finite data; the `Result` mirrors the real crate's API.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Infallible for finite data; the `Result` mirrors the real crate's API.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize_value(&v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Bare integers like `1` are valid JSON numbers; keep as-is.
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,`/`}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,`/`]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&-2i32).unwrap(), "-2");
        assert_eq!(from_str::<f32>("0.5").unwrap(), 0.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn round_trip_vec() {
        let v = vec![1.0f32, -2.5, 3.25];
        let s = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn large_u64_survives() {
        let v = u64::MAX - 3;
        let back: u64 = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("3 x").is_err());
    }
}
