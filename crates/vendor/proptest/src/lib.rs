//! Offline stand-in for `proptest`.
//!
//! Supports the subset the SAFELOC property tests use: the `proptest!`
//! macro with `#![proptest_config(...)]`, range and collection strategies,
//! `prop_map`, `any::<bool>()` and the `prop_assert*` macros. Cases are
//! generated from a fixed-seed RNG, so runs are deterministic; failing
//! cases are reported with their inputs' debug output but are **not**
//! shrunk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic source of randomness for strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Fixed-seed RNG: every `cargo test` run sees the same cases.
    pub fn deterministic() -> Self {
        Self(StdRng::seed_from_u64(0x5EED_CAFE))
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Mapping combinator (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    };
}

impl_range_strategy!(f32);
impl_range_strategy!(f64);
impl_range_strategy!(usize);
impl_range_strategy!(u64);
impl_range_strategy!(u32);
impl_range_strategy!(i64);
impl_range_strategy!(i32);

/// Strategy returning a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy (only what the workspace needs).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for [`Arbitrary`] booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Vec`s of exactly `size` elements.
        pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.size).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} == {:?}",
                a, b
            )));
        }
    }};
}

/// Declares property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident(
            $($arg:ident in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f32..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..5, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_applies(x in (1usize..4).prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20 || x == 30);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        let sa = (0.0f32..1.0).generate(&mut a);
        let sb = (0.0f32..1.0).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
