//! Offline stand-in for `rayon`.
//!
//! Implements the small parallel-iterator surface the SAFELOC workspace
//! uses with `std::thread::scope` fork/join: contiguous chunks of the input
//! are processed on OS threads and results are reassembled **in input
//! order**, so `par_iter().map(f).collect()` is always element-for-element
//! identical to the serial `iter().map(f).collect()` — parallelism never
//! changes results, only wall-time. There is no work stealing and no
//! persistent pool; for the coarse-grained tasks here (client-side training
//! runs, row-block inference, distance-matrix rows) chunk-per-thread is
//! within noise of a real pool.
//!
//! Thread count resolution order: `ThreadPool::install` override →
//! `RAYON_NUM_THREADS` env var → `std::thread::available_parallelism()`.

use std::cell::Cell;

thread_local! {
    static OVERRIDE_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations will use in this context.
pub fn current_num_threads() -> usize {
    if let Some(n) = OVERRIDE_THREADS.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a [`ThreadPool`] (thread-count control only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the number of threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Infallible; the `Result` mirrors the real crate's API.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A logical thread pool: holds only the configured width, threads are
/// spawned per operation.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing every parallel
    /// operation `f` performs on the current thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE_THREADS.with(|c| c.replace(self.num_threads));
        let out = f();
        OVERRIDE_THREADS.with(|c| c.set(prev));
        out
    }
}

/// The traits and extension methods, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

// ------------------------------------------------------------- execution

/// Splits `len` items into at most `threads` contiguous chunk ranges.
fn chunk_ranges(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.min(len).max(1);
    let base = len / threads;
    let extra = len % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let size = base + usize::from(t < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Order-preserving parallel map over index ranges: calls `run(start, end)`
/// for each chunk on its own thread and concatenates the per-chunk outputs
/// in chunk order.
fn run_chunked<U: Send>(len: usize, run: impl Fn(usize, usize) -> Vec<U> + Sync + Send) -> Vec<U> {
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return run(0, len);
    }
    let ranges = chunk_ranges(len, threads);
    let mut pieces: Vec<Vec<U>> = Vec::with_capacity(ranges.len());
    let run = &run;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| scope.spawn(move || run(s, e)))
            .collect();
        for h in handles {
            pieces.push(h.join().expect("rayon stub worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for p in pieces {
        out.extend(p);
    }
    out
}

// -------------------------------------------------------------- by-ref

/// `par_iter()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<'_, T>;

    /// Parallel iterator over non-overlapping chunks of at most
    /// `chunk_size` elements, in order.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            items: self,
            chunk_size,
        }
    }
}

/// Parallel shared-reference iterator (see [`ParallelSlice::par_iter`]).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParIterMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        self.map(f).collect::<Vec<()>>();
    }
}

/// Mapped parallel iterator.
pub struct ParIterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParIterMap<'a, T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        run_chunked(items.len(), |s, e| items[s..e].iter().map(f).collect()).into()
    }
}

/// Parallel chunk iterator (see [`ParallelSlice::par_chunks`]).
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Maps each chunk through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
    {
        ParChunksMap {
            items: self.items,
            chunk_size: self.chunk_size,
            f,
        }
    }
}

/// Mapped parallel chunk iterator.
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a [T]) -> U + Sync> ParChunksMap<'a, T, F> {
    /// Executes the map and collects per-chunk results in chunk order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let n_chunks = self.items.len().div_ceil(self.chunk_size.max(1));
        let items = self.items;
        let size = self.chunk_size;
        let f = &self.f;
        run_chunked(n_chunks, |s, e| {
            (s..e)
                .map(|c| f(&items[c * size..((c + 1) * size).min(items.len())]))
                .collect()
        })
        .into()
    }
}

// -------------------------------------------------------------- by-mut

/// `par_iter_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }
}

/// Parallel exclusive-reference iterator.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParIterMutMap<'a, T, F>
    where
        U: Send,
        F: Fn(&mut T) -> U + Sync,
    {
        ParIterMutMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        self.map(f).collect::<Vec<()>>();
    }
}

/// Mapped parallel exclusive-reference iterator.
pub struct ParIterMutMap<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T: Send, U: Send, F: Fn(&mut T) -> U + Sync> ParIterMutMap<'a, T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let len = self.items.len();
        let threads = current_num_threads();
        let f = &self.f;
        if threads <= 1 || len <= 1 {
            let out: Vec<U> = self.items.iter_mut().map(f).collect();
            return out.into();
        }
        let ranges = chunk_ranges(len, threads);
        // Split into disjoint &mut chunks, one per worker.
        let mut rest = self.items;
        let mut chunks: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
        let mut consumed = 0;
        for &(s, e) in &ranges {
            debug_assert_eq!(s, consumed);
            let (head, tail) = rest.split_at_mut(e - s);
            chunks.push(head);
            rest = tail;
            consumed = e;
        }
        let mut pieces: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                pieces.push(h.join().expect("rayon stub worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for p in pieces {
            out.extend(p);
        }
        out.into()
    }
}

// -------------------------------------------------------------- by-value

/// `into_par_iter()` conversions.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParRangeMap<F>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        self.map(f).collect::<Vec<()>>();
    }
}

/// Mapped parallel range iterator.
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<U: Send, F: Fn(usize) -> U + Sync> ParRangeMap<F> {
    /// Executes the map and collects results in index order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        run_chunked(len, |s, e| (start + s..start + e).map(f).collect()).into()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Parallel by-value iterator over a `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Maps each element through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParVecMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel by-value iterator.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParVecMap<T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let len = self.items.len();
        let threads = current_num_threads();
        let f = &self.f;
        if threads <= 1 || len <= 1 {
            let out: Vec<U> = self.items.into_iter().map(f).collect();
            return out.into();
        }
        let ranges = chunk_ranges(len, threads);
        let mut items = self.items;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
        for &(s, e) in ranges.iter().rev() {
            chunks.push(items.split_off(s));
            debug_assert_eq!(items.len(), s);
            let _ = e;
        }
        chunks.reverse();
        let mut pieces: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                pieces.push(h.join().expect("rayon stub worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for p in pieces {
            out.extend(p);
        }
        out.into()
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon stub join worker panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mut_map_sees_every_element_once() {
        let mut v = vec![0usize; 500];
        let ids: Vec<usize> = v
            .par_iter_mut()
            .map(|slot| {
                *slot += 1;
                *slot
            })
            .collect();
        assert!(v.iter().all(|&x| x == 1));
        assert_eq!(ids, vec![1; 500]);
    }

    #[test]
    fn range_map_matches_serial() {
        let par: Vec<usize> = (3..103).into_par_iter().map(|i| i * i).collect();
        let ser: Vec<usize> = (3..103).map(|i| i * i).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn chunks_cover_input_in_order() {
        let v: Vec<usize> = (0..97).collect();
        let sums: Vec<usize> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        let expect: Vec<usize> = v.chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        let pool3 = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool3.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let v: Vec<usize> = (0..256).collect();
        let run = |threads: usize| -> Vec<usize> {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    v.par_iter()
                        .map(|&x| x.wrapping_mul(31).rotate_left(7))
                        .collect()
                })
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(2), run(8));
    }

    #[test]
    fn into_par_iter_vec() {
        let v: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|s| s.len()).collect();
        let ser: Vec<usize> = v.iter().map(|s| s.len()).collect();
        assert_eq!(out, ser);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
