//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the simplified `Value`-tree traits in the sibling `serde` stub. The
//! parser is hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline) and supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (any visibility),
//! * enums with unit, newtype/tuple and struct variants,
//! * the `#[serde(default = "path")]` field attribute,
//! * `Option<T>` fields defaulting to `None` when missing (matching real
//!   serde's behaviour).
//!
//! Generics are intentionally unsupported — none of the workspace's
//! serialized types are generic — and the macro panics with a clear message
//! if it meets a shape it cannot handle, which surfaces as a compile error
//! at the derive site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    /// Flattened type tokens, used only to special-case `Option<…>`.
    ty: String,
    /// Body of `#[serde(default = "…")]`, if present.
    default_path: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let src = match &parsed {
        Input::Struct { name, fields } => gen_struct_serialize(name, fields),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    src.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let src = match &parsed {
        Input::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    src.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type {name} is not supported");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive stub: expected braced body for {name}, got {other:?}"),
    };

    match kw.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, String)> {
    let mut serde_attrs = Vec::new();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if let Some(kv) = parse_serde_attr(g.stream()) {
                        serde_attrs.push(kv);
                    }
                    *i += 1;
                } else {
                    panic!("serde_derive stub: malformed attribute");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(in …)`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return serde_attrs,
        }
    }
}

/// Extracts `(key, value)` from `#[serde(key = "value")]`; returns `None`
/// for non-serde attributes (docs, other derives' helpers).
fn parse_serde_attr(stream: TokenStream) -> Option<(String, String)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let key = match inner.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    // `default = "path"`
    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
        (inner.get(1), inner.get(2))
    {
        if eq.as_char() == '=' {
            let raw = lit.to_string();
            let value = raw.trim_matches('"').to_string();
            return Some((key, value));
        }
    }
    Some((key, String::new()))
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, got {other:?}"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field {name}, got {other:?}"),
        }
        // Consume the type up to a comma at angle-bracket depth 0.
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tokens[i].to_string());
            i += 1;
        }
        let default_path = attrs
            .iter()
            .find(|(k, _)| k == "default")
            .map(|(_, v)| v.clone());
        fields.push(Field {
            name,
            ty,
            default_path,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next comma at depth 0 (handles discriminants, none
        // expected) and past it.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => n += 1,
                _ => {}
            }
        }
    }
    n
}

fn is_option(ty: &str) -> bool {
    let t = ty.trim_start_matches(": :").trim();
    t.starts_with("Option ")
        || t.starts_with("Option<")
        || t.contains("option :: Option <")
        || t.starts_with("std :: option :: Option")
        || t.starts_with("core :: option :: Option")
}

// ------------------------------------------------------------- generation

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut entries = String::new();
    for f in fields {
        entries.push_str(&format!(
            "(\"{n}\".to_string(), ::serde::Serialize::serialize_value(&self.{n})),",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn gen_field_extraction(f: &Field, obj: &str, owner: &str) -> String {
    let missing = if let Some(path) = &f.default_path {
        format!("{path}()")
    } else if is_option(&f.ty) {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::msg(\
                 \"missing field `{n}` in {owner}\"))",
            n = f.name
        )
    };
    format!(
        "{n}: match ::serde::field({obj}, \"{n}\") {{\n\
             ::std::option::Option::Some(v) => ::serde::Deserialize::deserialize_value(v)?,\n\
             ::std::option::Option::None => {missing},\n\
         }},",
        n = f.name
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&gen_field_extraction(f, "obj", name));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = v.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                ));
            }
            VariantKind::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::serialize_value(f0))]),"
                ));
            }
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({bl}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Value::Array(vec![{el}]))]),",
                    bl = binds.join(","),
                    el = elems.join(",")
                ));
            }
            VariantKind::Struct(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{n}\".to_string(), ::serde::Serialize::serialize_value({n}))",
                            n = f.name
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {bl} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Value::Object(vec![{en}]))]),",
                    bl = binds.join(","),
                    en = entries.join(",")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                ));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),"
                ));
            }
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::deserialize_value(arr.get({k}).ok_or_else(|| \
                                 ::serde::Error::msg(\"short tuple for {name}::{vn}\"))?)?"
                        )
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let arr = inner.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn}({el}))\n\
                     }},",
                    el = elems.join(",")
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| gen_field_extraction(f, "obj", &format!("{name}::{vn}")))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let obj = inner.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected object for {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                     }},",
                    inits = inits.join("")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     _ => {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected string or object for {name}\"))?;\n\
                         let (tag, inner) = obj.first().ok_or_else(|| \
                             ::serde::Error::msg(\"empty object for {name}\"))?;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
             }}\n\
         }}"
    )
}
