//! Offline stand-in for `criterion`.
//!
//! Provides the macro/trait surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`, `black_box`) with a straightforward
//! measurement loop: a warmup phase, then `sample_size` timed samples of an
//! automatically calibrated iteration batch, reporting min / median / mean.
//! Results are printed in a stable `name ... time: [...]` format that
//! `perf_report`-style tooling and humans can both read.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark outcome, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampled {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 30,
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Replaces the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(5);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warmup: self.warmup,
            measurement: self.measurement,
            _parent: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sampled = run_bench(self.sample_size, self.warmup, self.measurement, |b| f(b));
        report(name, sampled);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    _parent: &'a Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Replaces the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Replaces the group's measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let sampled = run_bench(self.sample_size, self.warmup, self.measurement, |b| {
            f(b, input)
        });
        report(&format!("{}/{}", self.name, id.0), sampled);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sampled = run_bench(self.sample_size, self.warmup, self.measurement, |b| f(b));
        report(&format!("{}/{}", self.name, id), sampled);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Iterations to run per timed sample (calibrated by the harness).
    iters_per_sample: u64,
    /// Collected per-iteration times, one entry per sample.
    samples: Vec<f64>,
    mode: BenchMode,
}

enum BenchMode {
    Calibrate,
    Measure,
}

impl Bencher {
    /// Times `routine`, running it in calibrated batches.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            BenchMode::Calibrate => {
                // Find an iteration count that takes ≥ ~1 ms per sample, so
                // Instant overhead is amortized away.
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                        self.iters_per_sample = iters;
                        return;
                    }
                    iters *= 4;
                }
            }
            BenchMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                self.samples
                    .push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
            }
        }
    }
}

fn run_bench(
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    mut f: impl FnMut(&mut Bencher),
) -> Sampled {
    // Calibration pass (also serves as warmup start).
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: BenchMode::Calibrate,
    };
    f(&mut b);
    let iters = b.iters_per_sample;

    // Warmup.
    let warm_start = Instant::now();
    while warm_start.elapsed() < warmup {
        let mut wb = Bencher {
            iters_per_sample: iters,
            samples: Vec::new(),
            mode: BenchMode::Measure,
        };
        f(&mut wb);
    }

    // Measurement: `sample_size` samples, but stop early if the time budget
    // runs out (keeps slow federated-round benches bounded).
    let mut bench = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
        mode: BenchMode::Measure,
    };
    let meas_start = Instant::now();
    for _ in 0..sample_size {
        f(&mut bench);
        if meas_start.elapsed() > measurement && bench.samples.len() >= 5 {
            break;
        }
    }

    let mut sorted = bench.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let min = sorted.first().copied().unwrap_or(0.0);
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    Sampled {
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, s: Sampled) {
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.mean_ns)
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(5);
        // Direct harness call (bench_function prints; we test run_bench).
        let s = run_bench(
            5,
            Duration::from_millis(10),
            Duration::from_millis(50),
            |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for i in 0..100u64 {
                        acc = acc.wrapping_add(black_box(i));
                    }
                    acc
                })
            },
        );
        assert!(s.min_ns > 0.0);
        assert!(s.median_ns >= s.min_ns);
        let _ = &mut c;
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
