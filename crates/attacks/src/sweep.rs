//! Parameter grids used by the paper's sweeps.

/// The ε grid of Fig. 5 (and the τ-selection study of Fig. 4): 0.01 to 0.09
/// in steps of 0.01, then 0.1 to 1.0 in steps of 0.1 — 19 points.
pub fn paper_epsilon_grid() -> Vec<f32> {
    let mut grid = Vec::with_capacity(19);
    for i in 1..10 {
        grid.push(i as f32 * 0.01);
    }
    for i in 1..=10 {
        grid.push(i as f32 * 0.1);
    }
    grid
}

/// The τ grid of Fig. 4: 0.05 to 0.5 in steps of 0.05 — 10 points.
pub fn paper_tau_grid() -> Vec<f32> {
    (1..=10).map(|i| i as f32 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_grid_matches_paper() {
        let g = paper_epsilon_grid();
        assert_eq!(g.len(), 19);
        assert!((g[0] - 0.01).abs() < 1e-6);
        assert!((g[8] - 0.09).abs() < 1e-6);
        assert!((g[9] - 0.1).abs() < 1e-6);
        assert!((g[18] - 1.0).abs() < 1e-6);
        // Strictly increasing.
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn tau_grid_matches_paper() {
        let g = paper_tau_grid();
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.05).abs() < 1e-6);
        assert!((g[1] - 0.1).abs() < 1e-6);
        assert!((g[9] - 0.5).abs() < 1e-6);
    }
}
