//! Client-side poison injection: applies an [`Attack`] to a fingerprint set,
//! the way a compromised device poisons its local training data.

use crate::attack::Attack;
use crate::gradient::GradientSource;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safeloc_dataset::FingerprintSet;
use serde::{Deserialize, Serialize};

/// A reusable, seeded poisoner bound to one attack configuration.
///
/// The FL layer hands each malicious client an injector; clean clients have
/// none. Every call advances a per-injector RNG stream derived from the
/// seed, so a simulation is reproducible regardless of client ordering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoisonInjector {
    attack: Attack,
    seed: u64,
    invocation: u64,
    #[serde(default = "default_boost")]
    boost: f32,
}

fn default_boost() -> f32 {
    1.0
}

impl PoisonInjector {
    /// Creates an injector for `attack` with a deterministic seed.
    pub fn new(attack: Attack, seed: u64) -> Self {
        Self {
            attack,
            seed,
            invocation: 0,
            boost: 1.0,
        }
    }

    /// Sets the attacker's update-boost factor.
    ///
    /// A malicious client is not bound by the honest training protocol: to
    /// dominate sample-weighted averaging it scales its model delta by
    /// `boost` before upload (`LM' = GM + boost · (LM − GM)`), the
    /// *model-replacement* technique of Bagdasaryan et al. With
    /// `boost = n_clients` one compromised phone steers a plain FedAvg
    /// aggregate completely — this compresses the paper's long-running
    /// poisoning deployment into a handful of rounds (see `DESIGN.md` §5).
    pub fn with_boost(mut self, boost: f32) -> Self {
        self.boost = boost;
        self
    }

    /// The attacker's update-boost factor (1.0 = honest magnitude).
    pub fn boost(&self) -> f32 {
        self.boost
    }

    /// The configured attack.
    pub fn attack(&self) -> &Attack {
        &self.attack
    }

    /// Poisons `set` using gradients from `model`, returning the poisoned
    /// copy. `n_classes` is the number of reference points.
    ///
    /// # Panics
    ///
    /// Panics on label/row mismatch inside `set` (impossible for sets built
    /// through [`FingerprintSet::new`]).
    pub fn poison_set(
        &mut self,
        set: &FingerprintSet,
        model: &dyn GradientSource,
        n_classes: usize,
    ) -> FingerprintSet {
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.invocation.wrapping_mul(0x9E37_79B9));
        self.invocation += 1;
        let (x, labels) = self
            .attack
            .poison(&set.x, &set.labels, model, n_classes, &mut rng);
        FingerprintSet::new(x, labels)
    }

    /// Applies the attack's *label* component only: a label-flipping
    /// attacker flips a fraction of `labels`; backdoor attacks leave labels
    /// untouched (their damage is done to the RSS earlier in the pipeline).
    pub fn poison_labels(&mut self, labels: &[usize], n_classes: usize) -> Vec<usize> {
        if self.attack.kind().is_backdoor() {
            return labels.to_vec();
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.invocation.wrapping_mul(0x9E37_79B9));
        self.invocation += 1;
        let dummy = safeloc_nn::Matrix::zeros(labels.len(), 1);
        let (_, flipped) = self
            .attack
            .poison(&dummy, labels, &NoGradient, n_classes, &mut rng);
        flipped
    }
}

/// Gradient source for label-only poisoning, where no model is involved.
struct NoGradient;

impl GradientSource for NoGradient {
    fn loss_input_gradient(&self, x: &safeloc_nn::Matrix, _labels: &[usize]) -> safeloc_nn::Matrix {
        safeloc_nn::Matrix::zeros(x.rows(), x.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::{Activation, Matrix, Sequential};

    fn set() -> FingerprintSet {
        FingerprintSet::new(
            Matrix::from_rows(&[vec![0.5, 0.5, 0.5], vec![0.2, 0.8, 0.4]]),
            vec![0, 1],
        )
    }

    fn model() -> Sequential {
        Sequential::mlp(&[3, 6, 2], Activation::Relu, 0)
    }

    #[test]
    fn backdoor_injection_preserves_labels() {
        let mut inj = PoisonInjector::new(Attack::fgsm(0.1), 7);
        let poisoned = inj.poison_set(&set(), &model(), 2);
        assert_eq!(poisoned.labels, set().labels);
        assert_ne!(poisoned.x, set().x);
    }

    #[test]
    fn label_flip_injection_preserves_rss() {
        let mut inj = PoisonInjector::new(Attack::label_flip(1.0), 7);
        let poisoned = inj.poison_set(&set(), &model(), 2);
        assert_eq!(poisoned.x, set().x);
        assert_ne!(poisoned.labels, set().labels);
    }

    #[test]
    fn invocations_use_fresh_randomness_but_stay_deterministic() {
        let mut a = PoisonInjector::new(Attack::label_flip(0.5), 3);
        let mut b = PoisonInjector::new(Attack::label_flip(0.5), 3);
        let s = FingerprintSet::new(Matrix::zeros(20, 3), (0..20).map(|i| i % 5).collect());
        let m = model3();
        let a1 = a.poison_set(&s, &m, 5);
        let a2 = a.poison_set(&s, &m, 5);
        let b1 = b.poison_set(&s, &m, 5);
        assert_eq!(a1, b1, "same seed, same first invocation");
        assert_ne!(a1, a2, "second invocation should differ");
    }

    fn model3() -> Sequential {
        Sequential::mlp(&[3, 4, 5], Activation::Relu, 0)
    }
}
