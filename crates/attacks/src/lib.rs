//! Data-poisoning attacks against FL indoor localization (paper §III.A).
//!
//! Five attacks are implemented, matching the paper's threat model:
//!
//! | Attack | Type | Mechanism |
//! |---|---|---|
//! | [`Attack::CleanLabelBackdoor`] | backdoor | sparse gradient-masked perturbation, labels untouched (Eq. 1) |
//! | [`Attack::Fgsm`] | backdoor | one-step sign-gradient perturbation (Eq. 2) |
//! | [`Attack::Pgd`] | backdoor | iterative normalized-gradient ascent, projected into the ε-ball (Eq. 3) |
//! | [`Attack::Mim`] | backdoor | momentum-accumulated iterative ascent (Eq. 4) |
//! | [`Attack::LabelFlip`] | label flipping | RSS untouched, a fraction ε of labels flipped (Eq. 5) |
//!
//! Backdoor attacks need the gradient of the global model's loss with
//! respect to the *input*; any model exposing [`GradientSource`] can be
//! attacked (both the baselines' `Sequential` DNNs and SAFELOC's fused
//! network implement it).
//!
//! ε semantics follow `DESIGN.md` §5: perturbation magnitude in normalized
//! RSS units for the gradient attacks, fraction of poisoned samples for
//! label flipping.
//!
//! # Example
//!
//! ```
//! use safeloc_attacks::Attack;
//! use safeloc_nn::{Activation, Matrix, Sequential};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = Sequential::mlp(&[4, 8, 3], Activation::Relu, 0);
//! let x = Matrix::from_rows(&[vec![0.2, 0.4, 0.6, 0.8]]);
//! let labels = vec![1usize];
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let attack = Attack::fgsm(0.1);
//! let (px, plabels) = attack.poison(&x, &labels, &model, 3, &mut rng);
//! assert_eq!(plabels, labels); // FGSM is a backdoor: labels stay clean
//! assert!(px.sub(&x).max_abs() <= 0.1 + 1e-6);
//! ```

pub mod attack;
pub mod gradient;
pub mod injector;
pub mod sweep;

pub use attack::{select_top_k_by_magnitude, Attack, AttackKind, ALL_ATTACK_KINDS, BACKDOOR_KINDS};
pub use gradient::GradientSource;
pub use injector::PoisonInjector;
pub use sweep::{paper_epsilon_grid, paper_tau_grid};
