//! The five poisoning attacks of paper §III.A.

use crate::gradient::GradientSource;
use rand::Rng;
use safeloc_nn::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Discriminant-only attack identifier, used to enumerate attacks in sweeps
/// and reports (Figs. 5 and 6 iterate over exactly these five).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Clean Label Backdoor.
    Clb,
    /// Fast Gradient Sign Method.
    Fgsm,
    /// Projected Gradient Descent.
    Pgd,
    /// Momentum Iterative Method.
    Mim,
    /// Label flipping.
    LabelFlip,
}

/// All five attack kinds in the paper's presentation order.
pub const ALL_ATTACK_KINDS: [AttackKind; 5] = [
    AttackKind::Clb,
    AttackKind::Fgsm,
    AttackKind::Pgd,
    AttackKind::Mim,
    AttackKind::LabelFlip,
];

/// The four backdoor (input-perturbation) attacks.
pub const BACKDOOR_KINDS: [AttackKind; 4] = [
    AttackKind::Clb,
    AttackKind::Fgsm,
    AttackKind::Pgd,
    AttackKind::Mim,
];

impl AttackKind {
    /// `true` for the input-perturbation (backdoor) attacks.
    pub fn is_backdoor(&self) -> bool {
        !matches!(self, AttackKind::LabelFlip)
    }

    /// Short display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::Clb => "CLB",
            AttackKind::Fgsm => "FGSM",
            AttackKind::Pgd => "PGD",
            AttackKind::Mim => "MIM",
            AttackKind::LabelFlip => "Label Flip",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully parameterized poisoning attack.
///
/// Construct via the convenience constructors ([`Attack::fgsm`],
/// [`Attack::of_kind`], …) or the variants directly for full control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Attack {
    /// Eq. 1: `X + ε · δ(∇J)` where the mask `δ` keeps only the
    /// `mask_fraction` highest-|gradient| input dimensions (sign preserved),
    /// making the perturbation sparse and hard to spot.
    CleanLabelBackdoor {
        /// Perturbation magnitude in normalized RSS units.
        epsilon: f32,
        /// Fraction of input dimensions perturbed (paper's mask).
        mask_fraction: f32,
    },
    /// Eq. 2: `X + ε · sign(∇J)` — one-step, dense.
    Fgsm {
        /// Perturbation magnitude in normalized RSS units.
        epsilon: f32,
    },
    /// Eq. 3: iterative ascent with L2-normalized steps, projected back into
    /// the L2 ε-ball around the clean input after every step.
    Pgd {
        /// Ball radius in normalized RSS units.
        epsilon: f32,
        /// Number of ascent iterations.
        steps: usize,
        /// Step size as a fraction of ε (per iteration).
        step_fraction: f32,
    },
    /// Eq. 4: PGD with momentum-accumulated gradients (Dong et al.), which
    /// keeps the ascent direction stable across iterations.
    Mim {
        /// Ball radius in normalized RSS units.
        epsilon: f32,
        /// Number of ascent iterations.
        steps: usize,
        /// Momentum coefficient α.
        momentum: f32,
    },
    /// Eq. 5: flips a `fraction` of labels to a uniformly random *different*
    /// class; the RSS data is left untouched.
    LabelFlip {
        /// Fraction of samples whose labels are flipped (the ε axis of
        /// Fig. 5 for this attack).
        fraction: f32,
    },
}

impl Attack {
    /// CLB with the default 25% gradient mask.
    pub fn clb(epsilon: f32) -> Self {
        Attack::CleanLabelBackdoor {
            epsilon,
            mask_fraction: 0.25,
        }
    }

    /// FGSM at magnitude `epsilon`.
    pub fn fgsm(epsilon: f32) -> Self {
        Attack::Fgsm { epsilon }
    }

    /// PGD with the standard 10 steps at ε/4 step size.
    pub fn pgd(epsilon: f32) -> Self {
        Attack::Pgd {
            epsilon,
            steps: 10,
            step_fraction: 0.25,
        }
    }

    /// MIM with 10 steps and momentum 0.9.
    pub fn mim(epsilon: f32) -> Self {
        Attack::Mim {
            epsilon,
            steps: 10,
            momentum: 0.9,
        }
    }

    /// Label flipping at `fraction`.
    pub fn label_flip(fraction: f32) -> Self {
        Attack::LabelFlip { fraction }
    }

    /// Default-parameter attack of `kind` at intensity `epsilon`.
    pub fn of_kind(kind: AttackKind, epsilon: f32) -> Self {
        match kind {
            AttackKind::Clb => Self::clb(epsilon),
            AttackKind::Fgsm => Self::fgsm(epsilon),
            AttackKind::Pgd => Self::pgd(epsilon),
            AttackKind::Mim => Self::mim(epsilon),
            AttackKind::LabelFlip => Self::label_flip(epsilon),
        }
    }

    /// This attack's kind.
    pub fn kind(&self) -> AttackKind {
        match self {
            Attack::CleanLabelBackdoor { .. } => AttackKind::Clb,
            Attack::Fgsm { .. } => AttackKind::Fgsm,
            Attack::Pgd { .. } => AttackKind::Pgd,
            Attack::Mim { .. } => AttackKind::Mim,
            Attack::LabelFlip { .. } => AttackKind::LabelFlip,
        }
    }

    /// The attack's intensity knob (ε or flip fraction).
    pub fn epsilon(&self) -> f32 {
        match *self {
            Attack::CleanLabelBackdoor { epsilon, .. } => epsilon,
            Attack::Fgsm { epsilon } => epsilon,
            Attack::Pgd { epsilon, .. } => epsilon,
            Attack::Mim { epsilon, .. } => epsilon,
            Attack::LabelFlip { fraction } => fraction,
        }
    }

    /// Poisons a batch of fingerprints.
    ///
    /// Backdoor attacks return perturbed RSS (clamped to `[0,1]`) with the
    /// original labels; label flipping returns the original RSS with flipped
    /// labels. `model` supplies the loss gradients (the attacker holds a
    /// copy of the distributed global model, per the paper's threat model);
    /// `n_classes` bounds the flipped labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`, or for label flipping if
    /// `n_classes < 2` while a flip is requested.
    pub fn poison(
        &self,
        x: &Matrix,
        labels: &[usize],
        model: &dyn GradientSource,
        n_classes: usize,
        rng: &mut impl Rng,
    ) -> (Matrix, Vec<usize>) {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        match *self {
            Attack::CleanLabelBackdoor {
                epsilon,
                mask_fraction,
            } => {
                let grad = model.loss_input_gradient(x, labels);
                let masked = top_k_sign_mask(&grad, mask_fraction);
                let poisoned = {
                    let mut p = x.clone();
                    p.axpy(epsilon, &masked);
                    p.clamp(0.0, 1.0)
                };
                (poisoned, labels.to_vec())
            }
            Attack::Fgsm { epsilon } => {
                let grad = model.loss_input_gradient(x, labels);
                let signs = grad.map(|v| {
                    if v > 0.0 {
                        1.0
                    } else if v < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                });
                let mut p = x.clone();
                p.axpy(epsilon, &signs);
                (p.clamp(0.0, 1.0), labels.to_vec())
            }
            Attack::Pgd {
                epsilon,
                steps,
                step_fraction,
            } => {
                let p = iterative_ascent(x, labels, model, epsilon, steps, step_fraction, 0.0);
                (p, labels.to_vec())
            }
            Attack::Mim {
                epsilon,
                steps,
                momentum,
            } => {
                let p = iterative_ascent(x, labels, model, epsilon, steps, 0.25, momentum);
                (p, labels.to_vec())
            }
            Attack::LabelFlip { fraction } => {
                let n = labels.len();
                let k = ((fraction.clamp(0.0, 1.0)) * n as f32).round() as usize;
                if k > 0 {
                    assert!(n_classes >= 2, "cannot flip labels with < 2 classes");
                }
                let mut idx: Vec<usize> = (0..n).collect();
                // Partial Fisher–Yates: choose k random victims.
                for i in 0..k.min(n) {
                    let j = rng.gen_range(i..n);
                    idx.swap(i, j);
                }
                let mut flipped = labels.to_vec();
                for &i in idx.iter().take(k.min(n)) {
                    flipped[i] = flip_label(labels[i], n_classes, rng);
                }
                (x.clone(), flipped)
            }
        }
    }
}

/// Picks a uniformly random class different from `y`.
fn flip_label(y: usize, n_classes: usize, rng: &mut impl Rng) -> usize {
    let mut new = rng.gen_range(0..n_classes - 1);
    if new >= y {
        new += 1;
    }
    new
}

/// Keeps the `fraction` largest-|v| entries per row, mapped to ±1; zeroes the
/// rest. This is the CLB mask δ.
///
/// Selection is a per-row `select_nth_unstable_by` partition over one
/// scratch buffer reused across rows — the poisoning hot path runs this
/// for every client batch every round, and the seed's full `O(cols log
/// cols)` sort plus a fresh index `Vec` per row dominated CLB generation.
/// Ties at the k-boundary break by column index (ascending), which is
/// exactly the set the seed's stable descending-|v| sort kept, so the
/// produced mask is bit-identical.
fn top_k_sign_mask(grad: &Matrix, fraction: f32) -> Matrix {
    let cols = grad.cols();
    let k = ((fraction.clamp(0.0, 1.0)) * cols as f32).ceil() as usize;
    let mut out = Matrix::zeros(grad.rows(), cols);
    if k == 0 || cols == 0 {
        return out;
    }
    let mut scratch: Vec<usize> = (0..cols).collect();
    for r in 0..grad.rows() {
        let row = grad.row(r);
        select_top_k_by_magnitude(row, k, &mut scratch);
        for &c in scratch.iter().take(k) {
            let s = if row[c] > 0.0 {
                1.0
            } else if row[c] < 0.0 {
                -1.0
            } else {
                0.0
            };
            out.set(r, c, s);
        }
    }
    out
}

/// Partitions `scratch` so its first `k` entries index the `k`
/// largest-|v| values of `values`. Ties at the k-boundary break by index
/// (ascending), so the selected *set* is unique — the total order that
/// makes an unstable partition deterministic.
///
/// `scratch` is reinitialized to `0..values.len()` on every call; reusing
/// one buffer across calls keeps the hot path allocation-free. Shared by
/// the CLB mask δ above and the FL layer's top-k delta sparsifier, so the
/// two selections cannot drift apart.
///
/// # Panics
///
/// Panics if `scratch.len() != values.len()`.
pub fn select_top_k_by_magnitude(values: &[f32], k: usize, scratch: &mut [usize]) {
    assert_eq!(
        scratch.len(),
        values.len(),
        "scratch must be values-sized (fill with any content; it is reset)"
    );
    for (slot, c) in scratch.iter_mut().enumerate() {
        *c = slot;
    }
    if k == 0 || k >= values.len() {
        return;
    }
    // Total order: |v| descending, then index ascending — a deterministic
    // tie-break makes the top-k *set* unique, so an unstable partition
    // selects the same entries a stable sort would.
    scratch.select_nth_unstable_by(k - 1, |&a, &b| {
        values[b]
            .abs()
            .partial_cmp(&values[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// Shared PGD/MIM loop: L2-normalized (optionally momentum-accumulated)
/// ascent steps, projected into the per-row L2 ε-ball and the `[0,1]` box.
fn iterative_ascent(
    x: &Matrix,
    labels: &[usize],
    model: &dyn GradientSource,
    epsilon: f32,
    steps: usize,
    step_fraction: f32,
    momentum: f32,
) -> Matrix {
    let mut current = x.clone();
    let mut velocity = Matrix::zeros(x.rows(), x.cols());
    let step = epsilon * step_fraction.max(1e-3);
    for _ in 0..steps.max(1) {
        let grad = model.loss_input_gradient(&current, labels);
        // Per-row L2 normalization of the update direction.
        let mut dir = grad;
        for r in 0..dir.rows() {
            let norm: f32 = dir.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in dir.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        if momentum > 0.0 {
            velocity.scale_assign(momentum);
            velocity.add_assign(&dir);
            dir = velocity.clone();
        }
        current.axpy(step, &dir);
        // Project each row's perturbation back into the L2 ε-ball.
        for r in 0..current.rows() {
            let norm: f32 = current
                .row(r)
                .iter()
                .zip(x.row(r))
                .map(|(c, o)| (c - o) * (c - o))
                .sum::<f32>()
                .sqrt();
            if norm > epsilon && norm > 1e-12 {
                let scale = epsilon / norm;
                let orig = x.row(r).to_vec();
                for (c, o) in current.row_mut(r).iter_mut().zip(orig) {
                    *c = o + (*c - o) * scale;
                }
            }
        }
        current = current.clamp(0.0, 1.0);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use safeloc_nn::{Activation, Sequential};

    fn model() -> Sequential {
        Sequential::mlp(&[6, 10, 4], Activation::Relu, 3)
    }

    fn batch() -> (Matrix, Vec<usize>) {
        (
            Matrix::from_rows(&[
                vec![0.2, 0.4, 0.6, 0.8, 0.5, 0.3],
                vec![0.9, 0.1, 0.5, 0.2, 0.7, 0.6],
            ]),
            vec![0, 3],
        )
    }

    #[test]
    fn fgsm_perturbation_is_bounded_by_epsilon() {
        let (x, y) = batch();
        let mut rng = StdRng::seed_from_u64(0);
        let (px, py) = Attack::fgsm(0.05).poison(&x, &y, &model(), 4, &mut rng);
        assert_eq!(py, y);
        assert!(px.sub(&x).max_abs() <= 0.05 + 1e-6);
        assert!(px.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // It actually moved something.
        assert!(px.sub(&x).max_abs() > 1e-4);
    }

    #[test]
    fn clb_perturbs_only_masked_fraction() {
        let (x, y) = batch();
        let mut rng = StdRng::seed_from_u64(0);
        let attack = Attack::CleanLabelBackdoor {
            epsilon: 0.1,
            mask_fraction: 0.25,
        };
        let (px, py) = attack.poison(&x, &y, &model(), 4, &mut rng);
        assert_eq!(py, y, "CLB must keep labels clean");
        for r in 0..x.rows() {
            let changed = x
                .row(r)
                .iter()
                .zip(px.row(r))
                .filter(|(a, b)| (*a - *b).abs() > 1e-9)
                .count();
            // ceil(0.25 * 6) = 2 dims at most (clamping can reduce it).
            assert!(changed <= 2, "row {r}: {changed} dims changed");
        }
    }

    #[test]
    fn pgd_stays_in_l2_ball() {
        let (x, y) = batch();
        let mut rng = StdRng::seed_from_u64(0);
        let eps = 0.2;
        let (px, _) = Attack::pgd(eps).poison(&x, &y, &model(), 4, &mut rng);
        for r in 0..x.rows() {
            let norm: f32 = px
                .row(r)
                .iter()
                .zip(x.row(r))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            assert!(norm <= eps + 1e-5, "row {r}: ||δ||₂ = {norm} > {eps}");
        }
    }

    #[test]
    fn mim_stays_in_l2_ball_and_moves() {
        let (x, y) = batch();
        let mut rng = StdRng::seed_from_u64(0);
        let eps = 0.15;
        let (px, _) = Attack::mim(eps).poison(&x, &y, &model(), 4, &mut rng);
        for r in 0..x.rows() {
            let norm: f32 = px
                .row(r)
                .iter()
                .zip(x.row(r))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            assert!(norm <= eps + 1e-5);
        }
        assert!(px.sub(&x).max_abs() > 1e-4, "MIM did not move the input");
    }

    #[test]
    fn iterative_attacks_raise_loss_more_than_fgsm() {
        use safeloc_nn::SparseCrossEntropyLoss;
        let (x, y) = batch();
        let m = model();
        let mut rng = StdRng::seed_from_u64(0);
        let eps = 0.3;
        let (fgsm_x, _) = Attack::fgsm(eps).poison(&x, &y, &m, 4, &mut rng);
        let (pgd_x, _) = Attack::pgd(eps).poison(&x, &y, &m, 4, &mut rng);
        let clean = SparseCrossEntropyLoss.loss(&m.forward(&x), &y);
        let l_fgsm = SparseCrossEntropyLoss.loss(&m.forward(&fgsm_x), &y);
        let l_pgd = SparseCrossEntropyLoss.loss(&m.forward(&pgd_x), &y);
        assert!(l_fgsm > clean, "FGSM did not increase loss");
        assert!(l_pgd > clean, "PGD did not increase loss");
    }

    #[test]
    fn label_flip_changes_exactly_fraction_of_labels() {
        let x = Matrix::zeros(10, 4);
        let y: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let (px, py) = Attack::label_flip(0.5).poison(&x, &y, &model_for(4), 3, &mut rng);
        assert_eq!(px, x, "label flip must not touch RSS");
        let changed = py.iter().zip(&y).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 5);
        // All labels remain valid classes.
        assert!(py.iter().all(|&l| l < 3));
    }

    #[test]
    fn label_flip_fraction_one_changes_everything() {
        let x = Matrix::zeros(7, 2);
        let y = vec![1usize; 7];
        let mut rng = StdRng::seed_from_u64(9);
        let (_, py) = Attack::label_flip(1.0).poison(&x, &y, &model_for(2), 5, &mut rng);
        assert!(py.iter().all(|&l| l != 1));
    }

    #[test]
    fn label_flip_zero_is_identity() {
        let x = Matrix::zeros(4, 2);
        let y = vec![0usize, 1, 2, 0];
        let mut rng = StdRng::seed_from_u64(1);
        let (px, py) = Attack::label_flip(0.0).poison(&x, &y, &model_for(2), 3, &mut rng);
        assert_eq!(px, x);
        assert_eq!(py, y);
    }

    /// Reference mask: the seed's implementation — full stable sort by
    /// |v| descending, fresh index Vec per row.
    fn reference_mask(grad: &Matrix, fraction: f32) -> Matrix {
        let cols = grad.cols();
        let k = ((fraction.clamp(0.0, 1.0)) * cols as f32).ceil() as usize;
        let mut out = Matrix::zeros(grad.rows(), cols);
        for r in 0..grad.rows() {
            let row = grad.row(r);
            let mut order: Vec<usize> = (0..cols).collect();
            order.sort_by(|&a, &b| {
                row[b]
                    .abs()
                    .partial_cmp(&row[a].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &c in order.iter().take(k) {
                let s = if row[c] > 0.0 {
                    1.0
                } else if row[c] < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                out.set(r, c, s);
            }
        }
        out
    }

    /// The select-based mask must reproduce the seed's sort-based mask
    /// bit for bit — including tied |v| at the k-boundary, where the
    /// stable sort kept the lowest column indices.
    #[test]
    fn top_k_sign_mask_matches_the_seed_sort_exactly() {
        let tied = Matrix::from_rows(&[
            // Ties straddling the boundary: |0.5| appears three times.
            vec![0.5, -0.5, 0.1, 0.5, -0.9, 0.0],
            // All equal magnitudes.
            vec![-0.3, 0.3, -0.3, 0.3, -0.3, 0.3],
            // Zeros and a lone spike.
            vec![0.0, 0.0, 7.0, 0.0, 0.0, 0.0],
            // Pseudo-random mix.
            vec![0.12, -0.7, 0.12, 0.44, -0.44, 0.01],
        ]);
        for fraction in [0.0, 0.17, 0.25, 0.5, 0.9, 1.0] {
            let fast = top_k_sign_mask(&tied, fraction);
            let slow = reference_mask(&tied, fraction);
            assert_eq!(
                fast.as_slice(),
                slow.as_slice(),
                "mask diverged at fraction {fraction}"
            );
        }
    }

    #[test]
    fn of_kind_round_trips() {
        for kind in ALL_ATTACK_KINDS {
            let a = Attack::of_kind(kind, 0.3);
            assert_eq!(a.kind(), kind);
            assert!((a.epsilon() - 0.3).abs() < 1e-6);
        }
    }

    #[test]
    fn backdoor_classification() {
        assert!(AttackKind::Fgsm.is_backdoor());
        assert!(AttackKind::Clb.is_backdoor());
        assert!(!AttackKind::LabelFlip.is_backdoor());
        assert_eq!(BACKDOOR_KINDS.len(), 4);
    }

    #[test]
    fn display_labels_match_paper() {
        assert_eq!(AttackKind::Clb.to_string(), "CLB");
        assert_eq!(AttackKind::LabelFlip.to_string(), "Label Flip");
    }

    fn model_for(in_dim: usize) -> Sequential {
        Sequential::mlp(&[in_dim, 4, 3], Activation::Relu, 0)
    }
}
