//! The gradient interface attacked models must expose.

use safeloc_nn::{Matrix, Sequential};

/// A model that can report the gradient of its classification loss with
/// respect to the input — the quantity Eqs. 1–4 of the paper are built from.
///
/// Implemented here for [`Sequential`] (the baselines' DNN global models);
/// the `safeloc` crate implements it for the fused network.
pub trait GradientSource {
    /// `dL/dx` of the cross-entropy classification loss at `(x, labels)`.
    ///
    /// Shape must equal `x`'s shape.
    fn loss_input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix;
}

impl GradientSource for Sequential {
    fn loss_input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix {
        self.input_gradient(x, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::Activation;

    #[test]
    fn sequential_gradient_has_input_shape() {
        let m = Sequential::mlp(&[5, 4, 3], Activation::Relu, 1);
        let x = Matrix::from_rows(&[vec![0.1; 5], vec![0.9; 5]]);
        let g = m.loss_input_gradient(&x, &[0, 2]);
        assert_eq!(g.shape(), x.shape());
        assert!(!g.has_non_finite());
    }

    #[test]
    fn gradient_ascent_increases_loss() {
        use safeloc_nn::SparseCrossEntropyLoss;
        let m = Sequential::mlp(&[4, 8, 3], Activation::Relu, 2);
        let x = Matrix::from_rows(&[vec![0.3, 0.6, 0.2, 0.8]]);
        let y = [1usize];
        let g = m.loss_input_gradient(&x, &y);
        let stepped = {
            let mut s = x.clone();
            s.axpy(0.05 / g.l2_norm().max(1e-9), &g);
            s
        };
        let before = SparseCrossEntropyLoss.loss(&m.forward(&x), &y);
        let after = SparseCrossEntropyLoss.loss(&m.forward(&stepped), &y);
        assert!(
            after >= before - 1e-5,
            "ascent along gradient decreased loss: {before} -> {after}"
        );
    }
}
