//! Property-based tests for the attack invariants the defenses rely on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safeloc_attacks::{Attack, AttackKind, ALL_ATTACK_KINDS};
use safeloc_nn::{Activation, Matrix, Sequential};

fn input_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.0f32..1.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every attack keeps poisoned RSS inside the valid [0,1] range.
    #[test]
    fn poisoned_rss_stays_normalized(
        x in input_strategy(3, 6),
        eps in 0.01f32..1.0,
        seed in 0u64..100,
        kind_idx in 0usize..5,
    ) {
        let model = Sequential::mlp(&[6, 8, 4], Activation::Relu, 1);
        let labels = vec![0usize, 1, 2];
        let attack = Attack::of_kind(ALL_ATTACK_KINDS[kind_idx], eps);
        let mut rng = StdRng::seed_from_u64(seed);
        let (px, py) = attack.poison(&x, &labels, &model, 4, &mut rng);
        prop_assert!(px.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert_eq!(py.len(), labels.len());
        prop_assert!(py.iter().all(|&l| l < 4));
    }

    /// FGSM's perturbation never exceeds ε per dimension.
    #[test]
    fn fgsm_linf_bound(
        x in input_strategy(2, 5),
        eps in 0.01f32..0.5,
        seed in 0u64..50,
    ) {
        let model = Sequential::mlp(&[5, 6, 3], Activation::Relu, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let (px, _) = Attack::fgsm(eps).poison(&x, &[0, 1], &model, 3, &mut rng);
        prop_assert!(px.sub(&x).max_abs() <= eps + 1e-5);
    }

    /// PGD and MIM perturbations stay inside the per-row L2 ε-ball.
    #[test]
    fn iterative_l2_bound(
        x in input_strategy(2, 5),
        eps in 0.05f32..0.5,
        seed in 0u64..50,
        use_mim in any::<bool>(),
    ) {
        let model = Sequential::mlp(&[5, 6, 3], Activation::Relu, 2);
        let attack = if use_mim { Attack::mim(eps) } else { Attack::pgd(eps) };
        let mut rng = StdRng::seed_from_u64(seed);
        let (px, _) = attack.poison(&x, &[0, 1], &model, 3, &mut rng);
        for r in 0..x.rows() {
            let norm: f32 = px.row(r).iter().zip(x.row(r))
                .map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
            prop_assert!(norm <= eps + 1e-4, "row {} norm {} > {}", r, norm, eps);
        }
    }

    /// Label flipping changes round(fraction*n) labels, never to an invalid
    /// class and never to the original.
    #[test]
    fn label_flip_count_and_validity(
        frac in 0.0f32..=1.0,
        n in 1usize..30,
        n_classes in 2usize..10,
        seed in 0u64..100,
    ) {
        let model = Sequential::mlp(&[3, 4, 2], Activation::Relu, 0);
        let x = Matrix::zeros(n, 3);
        let labels: Vec<usize> = (0..n).map(|i| i % n_classes).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (px, py) = Attack::label_flip(frac).poison(&x, &labels, &model, n_classes, &mut rng);
        prop_assert_eq!(px, x);
        let expected = ((frac * n as f32).round() as usize).min(n);
        let changed = py.iter().zip(&labels).filter(|(a, b)| a != b).count();
        prop_assert_eq!(changed, expected);
        prop_assert!(py.iter().all(|&l| l < n_classes));
    }

    /// Backdoor attacks never change labels; label flipping never changes X.
    #[test]
    fn attack_type_separation(
        x in input_strategy(2, 4),
        eps in 0.05f32..0.8,
        seed in 0u64..50,
    ) {
        let model = Sequential::mlp(&[4, 5, 3], Activation::Relu, 7);
        let labels = vec![0usize, 2];
        for kind in ALL_ATTACK_KINDS {
            let mut rng = StdRng::seed_from_u64(seed);
            let (px, py) = Attack::of_kind(kind, eps).poison(&x, &labels, &model, 3, &mut rng);
            if kind.is_backdoor() {
                prop_assert_eq!(&py, &labels, "{} altered labels", kind);
            } else {
                prop_assert_eq!(&px, &x, "{} altered RSS", kind);
            }
        }
    }

    /// Stronger ε never *shrinks* the FGSM perturbation norm.
    #[test]
    fn fgsm_monotone_in_epsilon(
        x in input_strategy(1, 6),
        seed in 0u64..30,
    ) {
        let model = Sequential::mlp(&[6, 8, 3], Activation::Relu, 4);
        let labels = vec![1usize];
        let mut norms = Vec::new();
        for eps in [0.05f32, 0.2, 0.5] {
            let mut rng = StdRng::seed_from_u64(seed);
            let (px, _) = Attack::fgsm(eps).poison(&x, &labels, &model, 3, &mut rng);
            norms.push(px.sub(&x).l2_norm());
        }
        prop_assert!(norms[0] <= norms[1] + 1e-5 && norms[1] <= norms[2] + 1e-5,
            "norms not monotone: {:?}", norms);
    }
}

#[test]
fn all_kinds_are_enumerated_once() {
    use std::collections::HashSet;
    let set: HashSet<_> = ALL_ATTACK_KINDS.iter().map(|k| k.label()).collect();
    assert_eq!(set.len(), 5);
    assert!(ALL_ATTACK_KINDS.contains(&AttackKind::LabelFlip));
}
