//! Round telemetry: what happened to every client update.
//!
//! The seed engine's `round()` returned nothing, so nobody could report
//! *which* updates Krum/FEDCC/FEDLS rejected or measure attacker-rejection
//! rates. Two types fix that:
//!
//! * [`AggregationOutcome`] — what an [`Aggregator`](crate::Aggregator)
//!   decided: the next GM plus one [`UpdateDecision`] per input update.
//! * [`RoundReport`] — what a whole round did: one [`ClientReport`] per
//!   cohort member (trained / dropped / straggled / rejected, with the
//!   rejecting rule's name and score) plus wall-clock timings.

use crate::client::Client;
use crate::round::{Availability, RoundPlan};
use crate::update::ClientUpdate;
use safeloc_nn::NamedParams;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// One defense stage's footprint on a round: how many updates it
/// rejected and how long it ran. A
/// [`DefensePipeline`](crate::defense::DefensePipeline) emits one entry
/// per stage in execution order, combiner last; engines fold the trail
/// into [`RoundReport::stages`] so suite reports and `BENCH_nn.json` can
/// attribute both rejections and wall time to individual stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTelemetry {
    /// Stage (or combiner) name, e.g. `"norm-clip"`, `"latent"`, `"krum"`.
    pub stage: String,
    /// Updates this stage rejected this round (clipping stages reject 0).
    pub rejections: usize,
    /// Wall-clock time of the stage, milliseconds.
    pub wall_ms: f64,
}

/// An aggregation rule's verdict on one client update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UpdateDecision {
    /// The update contributed to the next GM with the given aggregation
    /// weight (FedAvg: sample-count share; Krum: 1 for the selected LM;
    /// saliency: mean elementwise saliency — the *soft* acceptance weight).
    Accepted {
        /// Aggregation weight in `[0, 1]`.
        weight: f32,
    },
    /// The update was excluded by a defense rule.
    Rejected {
        /// Name of the rejecting rule (`"krum"`, `"cluster"`, `"latent"`,
        /// `"non-finite"`).
        rule: String,
        /// The rule's anomaly score for this update (rule-specific units).
        score: f32,
    },
}

impl UpdateDecision {
    /// `true` for [`UpdateDecision::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, UpdateDecision::Accepted { .. })
    }
}

/// The result of one [`Aggregator::aggregate`](crate::Aggregator::aggregate)
/// call: the next global model plus a per-update decision trail.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationOutcome {
    /// The next global model.
    pub params: NamedParams,
    /// One decision per input update, in input order.
    pub decisions: Vec<UpdateDecision>,
}

impl AggregationOutcome {
    /// Outcome accepting every one of `n` updates with equal weight —
    /// the shape rules without per-update rejection produce.
    pub fn all_accepted(params: NamedParams, n: usize) -> Self {
        let weight = if n == 0 { 0.0 } else { 1.0 / n as f32 };
        Self {
            params,
            decisions: vec![UpdateDecision::Accepted { weight }; n],
        }
    }

    /// Number of accepted updates.
    pub fn accepted(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_accepted()).count()
    }

    /// Number of rejected updates.
    pub fn rejected(&self) -> usize {
        self.decisions.len() - self.accepted()
    }
}

/// What one cohort member did this round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientOutcome {
    /// Trained, delivered in time, and was accepted by the aggregator.
    Trained {
        /// Aggregation weight of the accepted update.
        weight: f32,
    },
    /// Sampled into the cohort but never responded.
    DroppedOut,
    /// Missed the round deadline; the late update was discarded.
    Straggled,
    /// Delivered in time but excluded by a defense rule.
    Rejected {
        /// Name of the rejecting rule.
        rule: String,
        /// The rule's anomaly score.
        score: f32,
    },
}

/// One cohort member's round record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientReport {
    /// The client's id ([`Client::id`]).
    pub client_id: usize,
    /// `true` if the client carried a poison injector.
    pub malicious: bool,
    /// Local samples trained on (0 unless the client trained).
    pub samples: usize,
    /// What happened.
    pub outcome: ClientOutcome,
}

/// Everything one federated round did, per client and in wall-clock time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index (0-based, the framework's own counter).
    pub round: usize,
    /// Framework name.
    pub framework: String,
    /// One record per cohort member, sorted by fleet position.
    pub clients: Vec<ClientReport>,
    /// Wall-clock time of client-side training, milliseconds.
    pub train_ms: f64,
    /// Wall-clock time of server-side aggregation, milliseconds.
    pub aggregate_ms: f64,
    /// Per-stage defense telemetry, in pipeline order (combiner last).
    /// Empty for aggregators without internal stages and for reports
    /// serialized before the pipeline redesign.
    #[serde(default = "Vec::new")]
    pub stages: Vec<StageTelemetry>,
}

impl RoundReport {
    /// Assembles the report for one executed round.
    ///
    /// `updates` must be the participant updates in cohort order (the order
    /// [`RoundPlan::active_indices`] yields) and `outcome.decisions` must
    /// parallel `updates` — which is exactly what the engine produces.
    ///
    /// # Panics
    ///
    /// Panics if `updates` and `outcome.decisions` lengths differ, or if
    /// the update count does not match the plan's in-range participant
    /// count (in either direction — a mismatch would silently corrupt the
    /// per-client outcome trail).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        round: usize,
        framework: &str,
        clients: &[Client],
        plan: &RoundPlan,
        updates: &[ClientUpdate],
        outcome: &AggregationOutcome,
        stages: Vec<StageTelemetry>,
        train_ms: f64,
        aggregate_ms: f64,
    ) -> Self {
        assert_eq!(
            updates.len(),
            outcome.decisions.len(),
            "one decision per update"
        );
        let mut delivered = updates.iter().zip(&outcome.decisions);
        let reports = plan
            .cohort()
            .iter()
            .filter(|(i, _)| *i < clients.len())
            .map(|(i, availability)| {
                let c = &clients[*i];
                let (samples, outcome) = match availability {
                    Availability::DropsOut => (0, ClientOutcome::DroppedOut),
                    Availability::Straggles => (0, ClientOutcome::Straggled),
                    Availability::Participates => {
                        let (u, d) = delivered
                            .next()
                            .expect("one update per participating cohort member");
                        let outcome = match d {
                            UpdateDecision::Accepted { weight } => {
                                ClientOutcome::Trained { weight: *weight }
                            }
                            UpdateDecision::Rejected { rule, score } => ClientOutcome::Rejected {
                                rule: rule.clone(),
                                score: *score,
                            },
                        };
                        (u.num_samples, outcome)
                    }
                };
                ClientReport {
                    client_id: c.id,
                    malicious: c.is_malicious(),
                    samples,
                    outcome,
                }
            })
            .collect();
        assert!(
            delivered.next().is_none(),
            "more updates than participating cohort members"
        );
        Self {
            round,
            framework: framework.to_string(),
            clients: reports,
            train_ms,
            aggregate_ms,
            stages,
        }
    }

    /// Cohort members that trained and delivered in time (accepted or
    /// rejected).
    pub fn participants(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| {
                matches!(
                    c.outcome,
                    ClientOutcome::Trained { .. } | ClientOutcome::Rejected { .. }
                )
            })
            .count()
    }

    /// Accepted updates this round.
    pub fn accepted(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| matches!(c.outcome, ClientOutcome::Trained { .. }))
            .count()
    }

    /// Updates rejected by a defense rule this round.
    pub fn rejected(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| matches!(c.outcome, ClientOutcome::Rejected { .. }))
            .count()
    }

    /// Cohort members that dropped out.
    pub fn dropped(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| c.outcome == ClientOutcome::DroppedOut)
            .count()
    }

    /// Cohort members that straggled past the deadline.
    pub fn straggled(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| c.outcome == ClientOutcome::Straggled)
            .count()
    }

    /// Fraction of *malicious participants* whose update was rejected, or
    /// `None` if no malicious client delivered an update this round — the
    /// defense-effectiveness statistic the seed engine could not measure.
    pub fn attacker_rejection_rate(&self) -> Option<f32> {
        rejection_rate(self.clients.iter().filter(|c| c.malicious))
    }

    /// Fraction of *honest participants* whose update was rejected
    /// (collateral damage), or `None` if no honest client delivered.
    pub fn honest_rejection_rate(&self) -> Option<f32> {
        rejection_rate(self.clients.iter().filter(|c| !c.malicious))
    }

    /// Mean accepted weight of malicious participants (0 when rejected),
    /// or `None` if no malicious client delivered. For soft defenses like
    /// saliency aggregation — which never rejects outright — this is the
    /// statistic that shows suppression.
    pub fn mean_attacker_weight(&self) -> Option<f32> {
        let weights: Vec<f32> = self
            .clients
            .iter()
            .filter(|c| c.malicious)
            .filter_map(|c| match c.outcome {
                ClientOutcome::Trained { weight } => Some(weight),
                ClientOutcome::Rejected { .. } => Some(0.0),
                _ => None,
            })
            .collect();
        if weights.is_empty() {
            None
        } else {
            Some(weights.iter().sum::<f32>() / weights.len() as f32)
        }
    }
}

/// Two-phase wall clock for one round, shared by every engine so the
/// timing/assemble boilerplate lives once: start it before client
/// training, [`RoundTimer::split`] between training and aggregation, and
/// [`RoundSplit::finish`] after the new GM is loaded.
///
/// ```ignore
/// let timer = RoundTimer::start();
/// let updates = self.collect_updates(clients, plan);
/// let timer = timer.split();
/// let outcome = self.aggregator.aggregate(&gm.snapshot(), &updates);
/// let stages = self.aggregator.take_stage_telemetry();
/// gm.load(&outcome.params)?;
/// let report =
///     timer.finish(self.rounds_run, self.name(), clients, plan, &updates, &outcome, stages);
/// ```
#[derive(Debug)]
pub struct RoundTimer {
    train_start: Instant,
}

/// The second phase of a [`RoundTimer`]: training time is banked,
/// aggregation is being timed.
#[derive(Debug)]
pub struct RoundSplit {
    train_ms: f64,
    aggregate_start: Instant,
}

impl RoundTimer {
    /// Starts timing client-side training.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Self {
            // det: round timers feed *_ms report fields only; nothing
            // model-visible reads wall time, trajectories stay bitwise.
            train_start: Instant::now(),
        }
    }

    /// Ends the training phase and starts timing aggregation.
    pub fn split(self) -> RoundSplit {
        RoundSplit {
            train_ms: self.train_start.elapsed().as_secs_f64() * 1e3,
            // det: report-only timing, as in RoundTimer::start.
            aggregate_start: Instant::now(),
        }
    }
}

impl RoundSplit {
    /// Ends the aggregation phase and assembles the round's report (see
    /// [`RoundReport::assemble`] for the contract on `updates` and
    /// `outcome`; `stages` is the aggregator's drained
    /// [`Aggregator::take_stage_telemetry`](crate::Aggregator::take_stage_telemetry)).
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        self,
        round: usize,
        framework: &str,
        clients: &[Client],
        plan: &RoundPlan,
        updates: &[ClientUpdate],
        outcome: &AggregationOutcome,
        stages: Vec<StageTelemetry>,
    ) -> RoundReport {
        let aggregate_ms = self.aggregate_start.elapsed().as_secs_f64() * 1e3;
        // Every engine funnels through this assembly point, so recording
        // round wall time and cohort size here covers sequential, remote
        // and streaming rounds alike.
        crate::metrics::fl_metrics().on_round(self.train_ms, aggregate_ms, plan.cohort().len());
        RoundReport::assemble(
            round,
            framework,
            clients,
            plan,
            updates,
            outcome,
            stages,
            self.train_ms,
            aggregate_ms,
        )
    }
}

/// Pools a per-round statistic over a report history: the mean of the
/// rounds where the statistic exists (rounds where the relevant population
/// delivered no update are skipped, exactly like the per-round helpers).
/// Shared by [`FlSession`](crate::FlSession) and the bench harness so the
/// pooling semantics cannot drift apart.
pub fn pooled_rate<'a>(
    reports: impl Iterator<Item = &'a RoundReport>,
    stat: impl Fn(&RoundReport) -> Option<f32>,
) -> Option<f32> {
    let present: Vec<f32> = reports.filter_map(stat).collect();
    if present.is_empty() {
        None
    } else {
        Some(present.iter().sum::<f32>() / present.len() as f32)
    }
}

/// Pools per-round stage telemetry over a report history into one entry
/// per stage name, in order of first appearance (= pipeline order):
/// `rejections` totalled, `wall_ms` averaged over the rounds the stage
/// appeared in. This is the single fold behind the suite's per-cell
/// `stage_stats`, `BENCH_nn.json`'s `session[].stage_ms` and any ad-hoc
/// report consumer — so the pooling semantics cannot drift between them.
pub fn pooled_stage_telemetry<'a>(
    reports: impl Iterator<Item = &'a RoundReport>,
) -> Vec<StageTelemetry> {
    let mut pooled: Vec<StageTelemetry> = Vec::new();
    let mut rounds_seen: Vec<usize> = Vec::new();
    for report in reports {
        for stage in &report.stages {
            let slot = match pooled.iter().position(|s| s.stage == stage.stage) {
                Some(slot) => slot,
                None => {
                    pooled.push(StageTelemetry {
                        stage: stage.stage.clone(),
                        rejections: 0,
                        wall_ms: 0.0,
                    });
                    rounds_seen.push(0);
                    pooled.len() - 1
                }
            };
            pooled[slot].rejections += stage.rejections;
            pooled[slot].wall_ms += stage.wall_ms;
            rounds_seen[slot] += 1;
        }
    }
    for (s, rounds) in pooled.iter_mut().zip(rounds_seen) {
        s.wall_ms /= rounds.max(1) as f64;
    }
    pooled
}

fn rejection_rate<'a>(clients: impl Iterator<Item = &'a ClientReport>) -> Option<f32> {
    let mut delivered = 0usize;
    let mut rejected = 0usize;
    for c in clients {
        match c.outcome {
            ClientOutcome::Trained { .. } => delivered += 1,
            ClientOutcome::Rejected { .. } => {
                delivered += 1;
                rejected += 1;
            }
            _ => {}
        }
    }
    if delivered == 0 {
        None
    } else {
        Some(rejected as f32 / delivered as f32)
    }
}

impl fmt::Display for RoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "round {:>3} [{}]: cohort {}, accepted {}, rejected {}, dropped {}, straggled {} \
             (train {:.1} ms, aggregate {:.2} ms)",
            self.round,
            self.framework,
            self.clients.len(),
            self.accepted(),
            self.rejected(),
            self.dropped(),
            self.straggled(),
            self.train_ms,
            self.aggregate_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(outcomes: Vec<(bool, ClientOutcome)>) -> RoundReport {
        RoundReport {
            round: 0,
            framework: "TEST".into(),
            clients: outcomes
                .into_iter()
                .enumerate()
                .map(|(i, (malicious, outcome))| ClientReport {
                    client_id: i,
                    malicious,
                    samples: 10,
                    outcome,
                })
                .collect(),
            train_ms: 1.0,
            aggregate_ms: 0.5,
            stages: Vec::new(),
        }
    }

    #[test]
    fn counts_by_outcome() {
        let r = report_with(vec![
            (false, ClientOutcome::Trained { weight: 0.5 }),
            (false, ClientOutcome::DroppedOut),
            (false, ClientOutcome::Straggled),
            (
                true,
                ClientOutcome::Rejected {
                    rule: "krum".into(),
                    score: 3.0,
                },
            ),
        ]);
        assert_eq!(r.participants(), 2);
        assert_eq!(r.accepted(), 1);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.straggled(), 1);
    }

    #[test]
    fn attacker_rejection_rate_counts_only_delivered_attackers() {
        let r = report_with(vec![
            (true, ClientOutcome::DroppedOut),
            (
                true,
                ClientOutcome::Rejected {
                    rule: "latent".into(),
                    score: 9.0,
                },
            ),
            (true, ClientOutcome::Trained { weight: 0.2 }),
            (false, ClientOutcome::Trained { weight: 0.2 }),
        ]);
        assert_eq!(r.attacker_rejection_rate(), Some(0.5));
        assert_eq!(r.honest_rejection_rate(), Some(0.0));
        assert_eq!(r.mean_attacker_weight(), Some(0.1));
    }

    #[test]
    fn rates_are_none_without_delivered_updates() {
        let r = report_with(vec![(false, ClientOutcome::DroppedOut)]);
        assert_eq!(r.attacker_rejection_rate(), None);
        assert_eq!(r.honest_rejection_rate(), None);
        assert_eq!(r.mean_attacker_weight(), None);
    }

    #[test]
    fn display_mentions_the_counts() {
        let r = report_with(vec![(false, ClientOutcome::Trained { weight: 1.0 })]);
        let s = r.to_string();
        assert!(s.contains("TEST"));
        assert!(s.contains("accepted 1"));
    }

    #[test]
    fn outcome_helpers() {
        let o = AggregationOutcome::all_accepted(NamedParams::new(vec![]), 4);
        assert_eq!(o.accepted(), 4);
        assert_eq!(o.rejected(), 0);
        assert!(o.decisions[0].is_accepted());
    }

    #[test]
    fn serde_round_trip() {
        let mut r = report_with(vec![(
            true,
            ClientOutcome::Rejected {
                rule: "cluster".into(),
                score: 0.7,
            },
        )]);
        r.stages = vec![StageTelemetry {
            stage: "cluster".into(),
            rejections: 1,
            wall_ms: 0.2,
        }];
        let json = serde_json::to_string(&r).unwrap();
        let back: RoundReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn reports_without_a_stages_field_still_deserialize() {
        // Reports persisted before the pipeline redesign carry no stage
        // telemetry; the field defaults to empty.
        let r = report_with(vec![(false, ClientOutcome::Trained { weight: 1.0 })]);
        let json = serde_json::to_string(&r).unwrap();
        let without = json.replace(",\"stages\":[]", "");
        assert_ne!(json, without, "fixture no longer serializes the field");
        let back: RoundReport = serde_json::from_str(&without).unwrap();
        assert!(back.stages.is_empty());
        assert_eq!(back.clients, r.clients);
    }
}
