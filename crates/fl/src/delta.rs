//! Compressed client-update representations — the bandwidth lever of
//! city-scale rounds.
//!
//! A federated round moves one model-sized vector per client per round.
//! At paper scale that is negligible; at 10k–100k clients it is the
//! dominant cost, and the FL poisoning survey (arXiv:2306.03397) frames
//! sparsified/quantized updates as the standard mitigation. This module
//! makes the representation a first-class value:
//!
//! | Repr | Payload | Bytes (d params) | Lossy |
//! |---|---|---|---|
//! | [`DeltaRepr::Dense`] | full `f32` params | `4·d` | no |
//! | [`DeltaRepr::TopK`] | k largest-|δ| coords | `≈ 8·k` | yes |
//! | [`DeltaRepr::QuantizedI8`] | per-update scale + `i8` words | `≈ d + 4` | yes |
//!
//! Compression is **opt-in and lossy by design**: the dense path keeps the
//! repo's bitwise-trajectory invariant (full `f32` params round-trip
//! exactly; `f32` addition is not invertible, so even a dense *delta*
//! encoding would break it). A compressing client therefore re-materializes
//! its own update as `GM + decode(encode(δ))` before upload, so server and
//! client agree bit for bit on what was sent and the defense layer screens
//! exactly what it aggregates.
//!
//! Lossy compression without memory diverges; [`DeltaCompressor`] carries
//! the standard error-feedback accumulator (EF-SGD): each round compresses
//! `δ + residual` and banks what the encoding dropped, so the error stays
//! bounded instead of compounding. The accumulator is per-client state and
//! lives with the client across rounds.
//!
//! Top-k selection reuses the CLB attack's magnitude-partition machinery
//! ([`safeloc_attacks::select_top_k_by_magnitude`]) — same total order,
//! same deterministic tie-break, one implementation.

use safeloc_attacks::select_top_k_by_magnitude;
use serde::{Deserialize, Serialize};

/// The encoded form of one client update's delta, as it travels on the
/// wire and rides on [`ClientUpdate`](crate::ClientUpdate) for accounting.
///
/// The update's `params` field always holds the full re-materialized
/// model, whatever the repr — defenses and aggregation never special-case
/// compressed updates. The repr records what *would* cross the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum DeltaRepr {
    /// Full dense `f32` parameters — the exact, bitwise-pinned path.
    #[default]
    Dense,
    /// The `k` largest-magnitude delta coordinates, indices ascending.
    TopK {
        /// Flat parameter indices of the kept coordinates, ascending.
        indices: Vec<u32>,
        /// The kept delta values, parallel to `indices`.
        values: Vec<f32>,
        /// The selection size (`indices.len()`, kept explicit for
        /// reports).
        k: usize,
    },
    /// The whole delta quantized to `i8` words under one per-update scale.
    QuantizedI8 {
        /// Dequantization scale: `value = word as f32 * scale`.
        scale: f32,
        /// One quantized word per parameter, in flat order.
        values: Vec<i8>,
    },
}

impl DeltaRepr {
    /// Bytes this representation occupies on the wire for a `num_params`
    /// model (payload only, excluding frame metadata). The dense figure is
    /// the raw `f32` tensor data an uncompressed update ships.
    pub fn wire_bytes(&self, num_params: usize) -> usize {
        match self {
            DeltaRepr::Dense => 4 * num_params,
            // u32 count + (u32 index, f32 value) pairs.
            DeltaRepr::TopK { indices, .. } => 4 + 8 * indices.len(),
            // f32 scale + u32 count + one byte per word.
            DeltaRepr::QuantizedI8 { values, .. } => 8 + values.len(),
        }
    }

    /// Decodes the repr into a flat dense delta of length `num_params`.
    /// Returns `None` for [`DeltaRepr::Dense`] — a dense update carries no
    /// separate delta payload (its `params` field *is* the exact model).
    pub fn decode(&self, num_params: usize) -> Option<Vec<f32>> {
        match self {
            DeltaRepr::Dense => None,
            DeltaRepr::TopK {
                indices, values, ..
            } => {
                let mut out = vec![0.0; num_params];
                for (&i, &v) in indices.iter().zip(values) {
                    if let Some(slot) = out.get_mut(i as usize) {
                        *slot = v;
                    }
                }
                Some(out)
            }
            DeltaRepr::QuantizedI8 { scale, values } => {
                let mut out = vec![0.0; num_params];
                for (slot, &q) in out.iter_mut().zip(values) {
                    *slot = q as f32 * scale;
                }
                Some(out)
            }
        }
    }

    /// Short display label (`"dense"`, `"topk(512)"`, `"q8"`).
    pub fn label(&self) -> String {
        match self {
            DeltaRepr::Dense => "dense".to_string(),
            DeltaRepr::TopK { k, .. } => format!("topk({k})"),
            DeltaRepr::QuantizedI8 { .. } => "q8".to_string(),
        }
    }
}

/// The `delta` scenario axis: which representation a cell's clients
/// compress their updates into.
///
/// Unknown repr names fail spec parsing with serde's unknown-variant
/// error (naming the offender and the valid set), matching the
/// `DefenseSpec` convention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DeltaSpec {
    /// No compression — the exact, bitwise-pinned path.
    #[default]
    Dense,
    /// Keep the `ceil(fraction · d)` largest-|δ| coordinates per round.
    TopK {
        /// Kept fraction of the parameter vector, clamped to `[0, 1]`.
        fraction: f32,
    },
    /// Quantize the whole delta to `i8` under one per-update scale.
    QuantizedI8,
}

impl DeltaSpec {
    /// `true` for the uncompressed representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, DeltaSpec::Dense)
    }

    /// The compressor this spec configures, or `None` for
    /// [`DeltaSpec::Dense`] (the exact path runs compressor-free).
    pub fn compressor(&self) -> Option<DeltaCompressor> {
        if self.is_dense() {
            None
        } else {
            Some(DeltaCompressor::new(*self))
        }
    }

    /// Display label (`"dense"`, `"topk=0.05"`, `"q8"`).
    pub fn label(&self) -> String {
        match self {
            DeltaSpec::Dense => "dense".to_string(),
            DeltaSpec::TopK { fraction } => format!("topk={fraction}"),
            DeltaSpec::QuantizedI8 => "q8".to_string(),
        }
    }
}

/// Per-client compressing encoder with an error-feedback accumulator.
///
/// Each round the client hands it the raw delta `δ = LM − GM` (flat); the
/// compressor encodes `δ + residual`, banks what the encoding dropped, and
/// returns both the wire repr and the decoded delta the update must
/// re-materialize from. Deterministic: same spec, same delta stream ⇒ same
/// reprs and residuals, independent of thread count (no RNG anywhere).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaCompressor {
    spec: DeltaSpec,
    /// What encoding dropped so far; empty until the first compression,
    /// then exactly parameter-sized.
    residual: Vec<f32>,
}

impl DeltaCompressor {
    /// A fresh compressor with a zero residual.
    pub fn new(spec: DeltaSpec) -> Self {
        Self {
            spec,
            residual: Vec::new(),
        }
    }

    /// The configured representation.
    pub fn spec(&self) -> DeltaSpec {
        self.spec
    }

    /// The banked residual (empty before the first compression).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// `true` once the accumulator carries round-to-round state — the
    /// signal streaming fleets use to decide whether a reclaimed client
    /// must persist or can be rebuilt from its seed.
    pub fn has_state(&self) -> bool {
        !self.residual.is_empty()
    }

    /// One EF-SGD step: encodes `delta + residual`, banks the encoding
    /// error, and returns `(repr, decoded)` where `decoded` is the dense
    /// delta the server will reconstruct from `repr`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` changes length between calls (the model
    /// architecture is fixed for a session).
    pub fn compress(&mut self, delta: &[f32]) -> (DeltaRepr, Vec<f32>) {
        if self.residual.is_empty() {
            self.residual = vec![0.0; delta.len()];
        }
        assert_eq!(
            self.residual.len(),
            delta.len(),
            "delta length changed between rounds"
        );
        let target: Vec<f32> = delta
            .iter()
            .zip(&self.residual)
            .map(|(d, r)| d + r)
            .collect();
        let repr = encode(self.spec, &target);
        crate::metrics::fl_metrics().on_delta(4 * delta.len(), repr.wire_bytes(delta.len()));
        let decoded = repr.decode(delta.len()).unwrap_or_else(|| target.clone());
        for ((r, t), d) in self.residual.iter_mut().zip(&target).zip(&decoded) {
            *r = t - d;
        }
        (repr, decoded)
    }
}

/// Encodes one flat target vector under the given spec.
fn encode(spec: DeltaSpec, target: &[f32]) -> DeltaRepr {
    match spec {
        DeltaSpec::Dense => DeltaRepr::Dense,
        DeltaSpec::TopK { fraction } => {
            let d = target.len();
            let k = ((fraction.clamp(0.0, 1.0)) * d as f32).ceil() as usize;
            let k = k.min(d);
            let mut scratch: Vec<usize> = (0..d).collect();
            select_top_k_by_magnitude(target, k, &mut scratch);
            let mut kept: Vec<usize> = scratch[..k].to_vec();
            // Ascending indices: a canonical wire layout independent of
            // the partition's internal order.
            kept.sort_unstable();
            DeltaRepr::TopK {
                indices: kept.iter().map(|&i| i as u32).collect(),
                values: kept.iter().map(|&i| target[i]).collect(),
                k,
            }
        }
        DeltaSpec::QuantizedI8 => {
            let max_abs = target.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
            let values = target
                .iter()
                .map(|&v| {
                    if scale > 0.0 {
                        (v / scale).round().clamp(-127.0, 127.0) as i8
                    } else {
                        0
                    }
                })
                .collect();
            DeltaRepr::QuantizedI8 { scale, values }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> Vec<f32> {
        vec![0.5, -2.0, 0.01, 3.0, -0.02, 0.0, 1.5, -0.4]
    }

    #[test]
    fn top_k_keeps_the_largest_magnitudes_ascending() {
        let mut c = DeltaCompressor::new(DeltaSpec::TopK { fraction: 0.375 });
        let (repr, decoded) = c.compress(&target());
        match &repr {
            DeltaRepr::TopK { indices, values, k } => {
                assert_eq!(*k, 3);
                assert_eq!(indices, &[1, 3, 6]);
                assert_eq!(values, &[-2.0, 3.0, 1.5]);
            }
            other => panic!("wrong repr {other:?}"),
        }
        let mut expect = vec![0.0; 8];
        expect[1] = -2.0;
        expect[3] = 3.0;
        expect[6] = 1.5;
        assert_eq!(decoded, expect);
        // The residual banks exactly what was dropped.
        assert_eq!(c.residual()[0], 0.5);
        assert_eq!(c.residual()[1], 0.0);
    }

    #[test]
    fn compression_round_trip_is_deterministic() {
        for spec in [DeltaSpec::TopK { fraction: 0.25 }, DeltaSpec::QuantizedI8] {
            let (r1, d1) = DeltaCompressor::new(spec).compress(&target());
            let (r2, d2) = DeltaCompressor::new(spec).compress(&target());
            assert_eq!(r1, r2, "same spec + delta must encode identically");
            assert_eq!(d1, d2);
            let json = serde_json::to_string(&r1).unwrap();
            let back: DeltaRepr = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r1, "reprs serde round-trip");
        }
    }

    #[test]
    fn error_feedback_residual_converges_on_a_fixed_target() {
        // Feed the same delta every round: with EF the *cumulative*
        // decoded sum approaches rounds · delta, i.e. nothing is
        // permanently lost to sparsification.
        let delta = target();
        let mut c = DeltaCompressor::new(DeltaSpec::TopK { fraction: 0.25 });
        let mut cumulative = vec![0.0f32; delta.len()];
        let rounds = 40;
        for _ in 0..rounds {
            let (_, decoded) = c.compress(&delta);
            for (acc, d) in cumulative.iter_mut().zip(&decoded) {
                *acc += d;
            }
        }
        for (i, (&acc, &d)) in cumulative.iter().zip(&delta).enumerate() {
            let want = d * rounds as f32;
            // The residual bounds the shortfall by a few deltas' worth,
            // not by rounds' worth — the EF guarantee.
            assert!(
                (acc - want).abs() <= 4.0 * delta.iter().fold(0.0f32, |m, v| m.max(v.abs())),
                "coord {i}: cumulative {acc} vs ideal {want}"
            );
        }
        assert!(c.has_state());
    }

    #[test]
    fn quantization_error_is_bounded_by_half_a_step() {
        let mut c = DeltaCompressor::new(DeltaSpec::QuantizedI8);
        let (repr, decoded) = c.compress(&target());
        let scale = match repr {
            DeltaRepr::QuantizedI8 { scale, .. } => scale,
            other => panic!("wrong repr {other:?}"),
        };
        for (d, t) in decoded.iter().zip(&target()) {
            assert!((d - t).abs() <= scale * 0.5 + 1e-6);
        }
    }

    #[test]
    fn zero_delta_encodes_without_dividing_by_zero() {
        let zeros = vec![0.0f32; 6];
        let (repr, decoded) = DeltaCompressor::new(DeltaSpec::QuantizedI8).compress(&zeros);
        assert_eq!(decoded, zeros);
        assert!(matches!(repr, DeltaRepr::QuantizedI8 { scale, .. } if scale == 0.0));
        let (repr, decoded) =
            DeltaCompressor::new(DeltaSpec::TopK { fraction: 0.5 }).compress(&zeros);
        assert_eq!(decoded.len(), 6);
        assert!(matches!(repr, DeltaRepr::TopK { k: 3, .. }));
    }

    #[test]
    fn wire_bytes_shrink_proportionally_to_k() {
        let d = 10_000;
        let dense = DeltaRepr::Dense.wire_bytes(d);
        let topk = DeltaRepr::TopK {
            indices: vec![0; 500],
            values: vec![0.0; 500],
            k: 500,
        }
        .wire_bytes(d);
        let q8 = DeltaRepr::QuantizedI8 {
            scale: 1.0,
            values: vec![0; d],
        }
        .wire_bytes(d);
        assert_eq!(dense, 4 * d);
        assert!(topk < dense / 9, "5% top-k must shrink ~10x: {topk}");
        assert!(q8 < dense / 3, "i8 quantization must shrink ~4x: {q8}");
    }

    #[test]
    fn unknown_repr_names_fail_parsing_naming_the_offender() {
        let err = serde_json::from_str::<DeltaSpec>("{\"TopQ\":{\"fraction\":0.1}}")
            .expect_err("unknown variant must fail");
        let msg = format!("{err:?}");
        assert!(msg.contains("TopQ"), "error must name the offender: {msg}");
    }

    #[test]
    fn spec_labels_and_compressor_construction() {
        assert_eq!(DeltaSpec::Dense.label(), "dense");
        assert_eq!(DeltaSpec::TopK { fraction: 0.05 }.label(), "topk=0.05");
        assert_eq!(DeltaSpec::QuantizedI8.label(), "q8");
        assert!(DeltaSpec::Dense.compressor().is_none());
        assert!(DeltaSpec::QuantizedI8.compressor().is_some());
        assert_eq!(DeltaRepr::Dense.label(), "dense");
        assert_eq!(
            DeltaRepr::TopK {
                indices: vec![],
                values: vec![],
                k: 9
            }
            .label(),
            "topk(9)"
        );
    }
}
