//! Generic terminal combiners: the uniform mean the screened rules share,
//! plus the two classic robust-statistics combiners (coordinate-wise
//! trimmed mean and median) the defense literature composes with.

use crate::defense::{Combiner, RoundContext, Verdicts};
use rayon::prelude::*;
use safeloc_nn::{Matrix, NamedParams};
use std::borrow::Cow;

/// Uniform mean of the surviving updates — the combiner the screened
/// paper rules (FEDCC clustering, FEDLS latent filtering) terminate in.
/// Every survivor is accepted with weight `1 / n_survivors`.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformMean;

impl Combiner for UniformMean {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams {
        let active = verdicts.active_indices();
        let kept: Vec<NamedParams> = active
            .iter()
            .map(|&i| verdicts.effective(ctx, i).into_owned())
            .collect();
        let weight = 1.0 / kept.len() as f32;
        for &i in &active {
            verdicts.set_weight(i, weight);
        }
        NamedParams::mean(&kept)
    }

    fn clone_combiner(&self) -> Box<dyn Combiner> {
        Box::new(*self)
    }
}

/// Materializes the active updates' effective parameters (clip scales
/// applied), shared by the coordinate-wise combiners.
fn effective_active<'c>(
    ctx: &'c RoundContext<'_>,
    verdicts: &Verdicts,
    active: &[usize],
) -> Vec<Cow<'c, NamedParams>> {
    active.iter().map(|&i| verdicts.effective(ctx, i)).collect()
}

/// Applies `fold` to every coordinate across the active updates: for each
/// tensor (in global-model order, fanned out over threads) and each
/// element, the update values are gathered into a scratch buffer and
/// reduced to the output element.
fn coordinate_wise(
    ctx: &RoundContext<'_>,
    sources: &[Cow<'_, NamedParams>],
    fold: impl Fn(&mut [f32]) -> f32 + Sync,
) -> NamedParams {
    let names = ctx.global().names();
    let per_tensor: Vec<(String, Matrix)> = names
        .par_iter()
        .map(|name| {
            let gm = ctx.global().get(name).expect("same arch");
            let rows: Vec<&[f32]> = sources
                .iter()
                .map(|p| p.get(name).expect("same arch").as_slice())
                .collect();
            let mut out = vec![0.0f32; gm.len()];
            let mut buf = vec![0.0f32; rows.len()];
            for (e, slot) in out.iter_mut().enumerate() {
                for (b, row) in buf.iter_mut().zip(&rows) {
                    *b = row[e];
                }
                *slot = fold(&mut buf);
            }
            let (r, c) = gm.shape();
            (
                name.to_string(),
                Matrix::from_vec(r, c, out).expect("shape preserved"),
            )
        })
        .collect();
    per_tensor.into_iter().collect()
}

/// Coordinate-wise trimmed mean (Yin et al. 2018): per scalar parameter,
/// the `t` smallest and `t` largest values across the surviving updates
/// are dropped and the rest averaged, where `t = ⌊trim_fraction · n⌋`
/// (capped so at least one value survives). Robust to up to `t` arbitrary
/// updates per coordinate without discarding whole clients.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    /// Fraction trimmed from *each* tail, in `[0, 0.5)`.
    pub trim_fraction: f32,
}

impl TrimmedMean {
    /// Trims `trim_fraction` of the updates from each tail.
    pub fn new(trim_fraction: f32) -> Self {
        Self { trim_fraction }
    }
}

impl Default for TrimmedMean {
    fn default() -> Self {
        Self::new(0.25)
    }
}

impl Combiner for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }

    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams {
        let active = verdicts.active_indices();
        let n = active.len();
        let t = ((self.trim_fraction.clamp(0.0, 0.5) * n as f32).floor() as usize)
            .min(n.saturating_sub(1) / 2);
        let sources = effective_active(ctx, verdicts, &active);
        let params = coordinate_wise(ctx, &sources, |values| {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let kept = &values[t..values.len() - t];
            kept.iter().sum::<f32>() / kept.len() as f32
        });
        // Every survivor nominally contributes to (n - 2t) of n slots per
        // coordinate; the decision trail records the uniform share.
        let weight = 1.0 / n as f32;
        for &i in &active {
            verdicts.set_weight(i, weight);
        }
        params
    }

    fn clone_combiner(&self) -> Box<dyn Combiner> {
        Box::new(*self)
    }
}

/// Coordinate-wise median: per scalar parameter, the median of the
/// surviving updates' values (mean of the two middle values for even
/// counts). The most aggressive of the classic robust combiners — up to
/// half the updates can be arbitrary per coordinate.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinateMedian;

impl Combiner for CoordinateMedian {
    fn name(&self) -> &'static str {
        "coordinate-median"
    }

    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams {
        let active = verdicts.active_indices();
        let sources = effective_active(ctx, verdicts, &active);
        let params = coordinate_wise(ctx, &sources, |values| {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let n = values.len();
            if n % 2 == 1 {
                values[n / 2]
            } else {
                0.5 * (values[n / 2 - 1] + values[n / 2])
            }
        });
        let weight = 1.0 / active.len() as f32;
        for &i in &active {
            verdicts.set_weight(i, weight);
        }
        params
    }

    fn clone_combiner(&self) -> Box<dyn Combiner> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::test_support::{params, update};
    use crate::defense::DefensePipeline;
    use crate::Aggregator;

    fn pipeline(combiner: Box<dyn Combiner>) -> DefensePipeline {
        DefensePipeline::new("test", Vec::new(), combiner)
    }

    #[test]
    fn uniform_mean_matches_named_params_mean_bitwise() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[4.0]), update(1, &[4.0], &[8.0])];
        let out = pipeline(Box::new(UniformMean)).aggregate(&g, &u);
        let expected = NamedParams::mean(&[u[0].params.clone(), u[1].params.clone()]);
        assert_eq!(out.params, expected);
        assert_eq!(out.accepted(), 2);
    }

    #[test]
    fn trimmed_mean_drops_the_outlier_coordinate_wise() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[1.0]),
            update(1, &[1.2], &[1.0]),
            update(2, &[0.8], &[1.0]),
            update(3, &[900.0], &[-900.0]),
        ];
        let out = pipeline(Box::new(TrimmedMean::new(0.25))).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        // t = 1: the 900 and the 0.8 are trimmed; mean(1.0, 1.2) = 1.1.
        assert!((w - 1.1).abs() < 1e-6, "trimmed mean {w}");
        let b = out.params.get("layer0.b").unwrap().get(0, 0);
        assert!((b - 1.0).abs() < 1e-6, "the -900 tail was kept: {b}");
        assert_eq!(out.accepted(), 4, "trimming rejects no whole update");
    }

    #[test]
    fn trimmed_mean_degenerates_to_mean_for_tiny_rounds() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[0.0]), update(1, &[4.0], &[0.0])];
        // n = 2 ⇒ t caps at 0: plain mean, no empty-slice panic.
        let out = pipeline(Box::new(TrimmedMean::new(0.49))).aggregate(&g, &u);
        assert!((out.params.get("layer0.w").unwrap().get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn coordinate_median_resists_a_minority_of_arbitrary_updates() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0, -1.0], &[0.5]),
            update(1, &[1.1, -0.9], &[0.5]),
            update(2, &[0.9, -1.1], &[0.5]),
            update(3, &[-500.0, 500.0], &[50.0]),
            update(4, &[500.0, -500.0], &[-50.0]),
        ];
        let out = pipeline(Box::new(CoordinateMedian)).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.9..=1.1).contains(&w), "median dragged: {w}");
        assert_eq!(out.params.get("layer0.b").unwrap().get(0, 0), 0.5);
    }

    #[test]
    fn even_count_median_averages_the_middles() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[3.0], &[0.0]),
            update(2, &[5.0], &[0.0]),
            update(3, &[100.0], &[0.0]),
        ];
        let out = pipeline(Box::new(CoordinateMedian)).aggregate(&g, &u);
        assert_eq!(out.params.get("layer0.w").unwrap().get(0, 0), 4.0);
    }

    #[test]
    fn identical_updates_are_a_fixed_point_for_all_robust_combiners() {
        let g = params(&[1.0, -2.0], &[0.5]);
        let u = vec![
            update(0, &[1.0, -2.0], &[0.5]),
            update(1, &[1.0, -2.0], &[0.5]),
            update(2, &[1.0, -2.0], &[0.5]),
        ];
        for combiner in [
            Box::new(UniformMean) as Box<dyn Combiner>,
            Box::new(TrimmedMean::default()),
            Box::new(CoordinateMedian),
        ] {
            let out = pipeline(combiner).aggregate(&g, &u);
            assert_eq!(out.params, g);
        }
    }
}
