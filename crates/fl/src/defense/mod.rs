//! Composable defense pipelines: screening stages + a terminal combiner.
//!
//! The paper's defenses — and the wider robust-aggregation literature
//! (Krum, trimmed mean, coordinate-wise median, norm bounding) — all
//! decompose into the same two phases:
//!
//! 1. **Screen**: look at the round's updates (through a shared
//!    [`RoundContext`]) and write per-update [`Verdicts`] — reject
//!    outliers with a named rule and score, or cap their influence with a
//!    clip scale.
//! 2. **Combine**: turn the surviving updates into the next global model
//!    and assign each survivor its acceptance weight.
//!
//! A [`DefensePipeline`] is an ordered list of [`DefenseStage`]s followed
//! by one [`Combiner`], and is itself an
//! [`Aggregator`] — so `FlSession`, every framework,
//! serve publishing and the scenario-suite engine keep their call sites
//! while arbitrary compositions (`non-finite → norm-clip → Krum-select`,
//! `latent-screen → history-screen → mean`, …) become values instead of
//! new types. The six paper rules are canonical one-stage/one-combiner
//! pipelines ([`DefensePipeline::fedavg`] and friends) that reproduce the
//! monolithic aggregators they replaced bit for bit.
//!
//! Fang et al. 2020 (arXiv:1911.11815) show single defenses fall to
//! adaptive model poisoning; the point of this API is that layered
//! defenses are now a spec-file concern (`scenarios/*.json` via
//! `safeloc-bench`'s `DefenseSpec`), not a new Rust type per combination.
//!
//! # Example
//!
//! ```
//! use safeloc_fl::defense::{DefensePipeline, NormClip};
//! use safeloc_fl::{Aggregator, ClientUpdate, Krum};
//! use safeloc_nn::{Matrix, NamedParams};
//!
//! // Norm-bound every update to 3x the round median, then Krum-select.
//! let mut defense = DefensePipeline::new(
//!     "norm-clip+krum",
//!     vec![Box::new(NormClip::new(3.0))],
//!     Box::new(Krum::new(1)),
//! );
//! let gm = NamedParams::new(vec![("w".into(), Matrix::row_vector(&[0.0]))]);
//! let honest = |id, v| {
//!     ClientUpdate::new(
//!         id,
//!         NamedParams::new(vec![("w".into(), Matrix::row_vector(&[v]))]),
//!         10,
//!     )
//! };
//! let updates = vec![honest(0, 1.0), honest(1, 1.1), honest(2, 0.9), honest(3, 500.0)];
//! let out = defense.aggregate(&gm, &updates);
//! assert_eq!(out.accepted(), 1, "Krum selects exactly one update");
//! assert!(out.params.get("w").unwrap().get(0, 0) < 2.0);
//! ```

mod context;
mod robust;
mod stages;
mod verdicts;

pub use context::{DistanceScratch, RoundContext, EXACT_SCREEN_MAX, SCREEN_SAMPLE_DIM};
pub use robust::{CoordinateMedian, TrimmedMean, UniformMean};
pub use stages::{NonFiniteGuard, NormClip};
pub use verdicts::Verdicts;

use crate::aggregate::Aggregator;
use crate::report::{AggregationOutcome, StageTelemetry};
use crate::update::ClientUpdate;
use safeloc_nn::NamedParams;
use std::time::Instant;

/// A screening stage of a [`DefensePipeline`]: reads the shared
/// [`RoundContext`] and writes per-update [`Verdicts`] (rejections and
/// clip scales). Stages never produce a model — that is the
/// [`Combiner`]'s job — and they must only touch updates that are still
/// active.
///
/// Stages may be stateful across rounds (the latent filter accumulates a
/// benign history); state must stay deterministic for a fixed seed.
pub trait DefenseStage: Send {
    /// Stage name, used for the rejection-telemetry trail.
    fn name(&self) -> &'static str;

    /// Screens the round: inspect `ctx`, reject or clip in `verdicts`.
    fn screen(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts);

    /// Boxed clone, so pipelines (and the frameworks holding them) stay
    /// clonable.
    fn clone_stage(&self) -> Box<dyn DefenseStage>;
}

impl Clone for Box<dyn DefenseStage> {
    fn clone(&self) -> Self {
        self.clone_stage()
    }
}

/// The terminal phase of a [`DefensePipeline`]: folds the surviving
/// updates into the next global model and records each survivor's
/// acceptance weight in the verdicts. A combiner may also reject
/// (Krum-select accepts exactly one update and scores the rest out).
///
/// Called only with at least one active verdict; an all-rejected round
/// short-circuits to `GM.clone()` in the pipeline itself.
pub trait Combiner: Send {
    /// Combiner name, used for the telemetry trail.
    fn name(&self) -> &'static str;

    /// Produces the next global model from the active updates.
    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams;

    /// Boxed clone.
    fn clone_combiner(&self) -> Box<dyn Combiner>;
}

impl Clone for Box<dyn Combiner> {
    fn clone(&self) -> Self {
        self.clone_combiner()
    }
}

/// An ordered stage list plus a terminal combiner — the composable form
/// every server-side defense now takes (see the module docs).
#[derive(Clone)]
pub struct DefensePipeline {
    label: String,
    stages: Vec<Box<dyn DefenseStage>>,
    combiner: Box<dyn Combiner>,
    last_telemetry: Vec<StageTelemetry>,
    /// Distance buffers reused across rounds — reuse is bitwise-neutral
    /// (see [`DistanceScratch`]).
    scratch: DistanceScratch,
}

impl std::fmt::Debug for DefensePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefensePipeline")
            .field("label", &self.label)
            .field(
                "stages",
                &self.stages.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("combiner", &self.combiner.name())
            .finish()
    }
}

impl DefensePipeline {
    /// Builds a pipeline with a display label (reports print it as the
    /// rule name).
    pub fn new(
        label: impl Into<String>,
        stages: Vec<Box<dyn DefenseStage>>,
        combiner: Box<dyn Combiner>,
    ) -> Self {
        Self {
            label: label.into(),
            stages,
            combiner,
            last_telemetry: Vec::new(),
            scratch: DistanceScratch::default(),
        }
    }

    /// The pipeline's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Stage names in execution order, combiner last.
    pub fn stage_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.stages.iter().map(|s| s.name()).collect();
        names.push(self.combiner.name());
        names
    }

    // ----------------------------------------------- canonical pipelines
    //
    // The six paper rules as stage compositions. Each reproduces the
    // monolithic aggregator it replaced bitwise (`tests/round_lifecycle.rs`
    // pins the full-participation trajectories).

    /// FEDLOC's rule: no screening, sample-weighted federated averaging.
    pub fn fedavg() -> Self {
        Self::new("FedAvg", Vec::new(), Box::new(crate::aggregate::FedAvg))
    }

    /// The Krum baseline: no screening, Krum selection assuming `f`
    /// Byzantine clients.
    pub fn krum(f: usize) -> Self {
        Self::new("Krum", Vec::new(), Box::new(crate::aggregate::Krum::new(f)))
    }

    /// FEDCC's rule: majority-cluster screening, then a uniform mean of
    /// the kept cluster.
    pub fn cluster(separation_threshold: f32) -> Self {
        Self::new(
            "Cluster",
            vec![Box::new(crate::aggregate::ClusterAggregator::new(
                separation_threshold,
            ))],
            Box::new(UniformMean),
        )
    }

    /// FEDLS's rule: latent-space anomaly screening, then a uniform mean
    /// of the survivors.
    pub fn latent(seed: u64) -> Self {
        Self::new(
            "LatentFilter",
            vec![Box::new(crate::aggregate::LatentFilterAggregator::new(
                seed,
            ))],
            Box::new(UniformMean),
        )
    }

    /// The opt-in FEDLS variant closing the small-but-≥3-round gap: the
    /// latent screen followed by a benign-history screen, so a boosted
    /// attacker hiding inside a 3-update round's own z-test is still
    /// checked against the accumulated history (the ROADMAP small-cohort
    /// follow-up). Not the pinned default — select it from a scenario
    /// spec.
    pub fn latent_with_history(seed: u64) -> Self {
        Self::new(
            "LatentFilter+History",
            vec![
                Box::new(crate::aggregate::LatentFilterAggregator::new(seed)),
                Box::new(crate::aggregate::HistoryScreen::new(seed)),
            ],
            Box::new(UniformMean),
        )
    }

    /// FEDHIL's rule: no screening, selective per-tensor aggregation.
    pub fn selective(aggregate_fraction: f32) -> Self {
        Self::new(
            "Selective",
            Vec::new(),
            Box::new(crate::aggregate::SelectiveAggregator::new(
                aggregate_fraction,
            )),
        )
    }
}

impl Aggregator for DefensePipeline {
    fn aggregate_filtered(
        &mut self,
        global: &NamedParams,
        updates: &[&ClientUpdate],
    ) -> AggregationOutcome {
        let ctx = RoundContext::with_scratch(global, updates, std::mem::take(&mut self.scratch));
        let mut verdicts = Verdicts::new(updates.len());
        let mut telemetry = Vec::with_capacity(self.stages.len() + 1);
        for stage in &mut self.stages {
            let rejected_before = verdicts.rejected_count();
            // det: wall_ms is telemetry only — no screening decision or
            // model value ever reads it, so trajectories stay bitwise.
            let start = Instant::now();
            stage.screen(&ctx, &mut verdicts);
            telemetry.push(StageTelemetry {
                stage: stage.name().to_string(),
                rejections: verdicts.rejected_count() - rejected_before,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            });
        }
        let rejected_before = verdicts.rejected_count();
        // det: aggregation wall_ms is telemetry only, as above.
        let start = Instant::now();
        let params = if verdicts.active_count() == 0 {
            // Every update screened out: the GM survives unchanged, the
            // same invariant the shared empty-round guard enforces.
            global.clone()
        } else {
            self.combiner.combine(&ctx, &mut verdicts)
        };
        telemetry.push(StageTelemetry {
            stage: self.combiner.name().to_string(),
            rejections: verdicts.rejected_count() - rejected_before,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        });
        // Feed the trail into the process-global registry here, at the
        // layer that produced it: callers that never drain
        // `take_stage_telemetry` (ad-hoc aggregations, engines without
        // report plumbing) would otherwise silently lose the stage
        // timings and rejection counts.
        for stage in &telemetry {
            crate::metrics::fl_metrics().on_stage(stage);
        }
        self.last_telemetry = telemetry;
        self.scratch = ctx.reclaim_scratch();
        AggregationOutcome {
            params,
            decisions: verdicts.into_decisions(),
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn take_stage_telemetry(&mut self) -> Vec<StageTelemetry> {
        std::mem::take(&mut self.last_telemetry)
    }

    fn clone_box(&self) -> Box<dyn Aggregator> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::test_support::{params, update};
    use crate::report::UpdateDecision;

    #[test]
    fn composed_pipeline_reports_per_stage_rejections() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0, 1.0], &[0.1]),
            update(1, &[1.1, 0.9], &[0.1]),
            update(2, &[0.9, 1.1], &[0.1]),
            update(3, &[f32::NAN, 0.0], &[0.0]),
        ];
        let mut p = DefensePipeline::new(
            "guard+krum",
            vec![Box::new(NonFiniteGuard)],
            Box::new(crate::aggregate::Krum::new(1)),
        );
        let out = p.aggregate(&g, &u);
        assert_eq!(out.accepted(), 1);
        let telemetry = p.take_stage_telemetry();
        // The outer guard already dropped the NaN update, so the stage
        // trail is [non-finite: 0, Krum: 2] over the three survivors.
        assert_eq!(telemetry.len(), 2);
        assert_eq!(telemetry[0].stage, "non-finite");
        assert_eq!(telemetry[0].rejections, 0);
        assert_eq!(telemetry[1].stage, "krum");
        assert_eq!(telemetry[1].rejections, 2);
        assert!(telemetry.iter().all(|t| t.wall_ms >= 0.0));
        // take_* drains.
        assert!(p.take_stage_telemetry().is_empty());
    }

    #[test]
    fn all_rejected_round_clones_the_global_model() {
        struct RejectAll;
        impl DefenseStage for RejectAll {
            fn name(&self) -> &'static str {
                "reject-all"
            }
            fn screen(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) {
                for i in 0..ctx.len() {
                    verdicts.reject(i, "reject-all", 1.0);
                }
            }
            fn clone_stage(&self) -> Box<dyn DefenseStage> {
                Box::new(RejectAll)
            }
        }
        let g = params(&[7.0], &[8.0]);
        let u = vec![update(0, &[1.0], &[1.0])];
        let mut p = DefensePipeline::new("wall", vec![Box::new(RejectAll)], Box::new(UniformMean));
        let out = p.aggregate(&g, &u);
        assert_eq!(out.params, g);
        assert!(matches!(
            &out.decisions[0],
            UpdateDecision::Rejected { rule, .. } if rule == "reject-all"
        ));
    }

    #[test]
    fn canonical_labels_and_stage_names() {
        assert_eq!(DefensePipeline::fedavg().label(), "FedAvg");
        assert_eq!(DefensePipeline::krum(1).stage_names(), vec!["krum"]);
        assert_eq!(
            DefensePipeline::latent_with_history(0).stage_names(),
            vec!["latent", "history-screen", "mean"]
        );
        let dbg = format!("{:?}", DefensePipeline::cluster(0.15));
        assert!(dbg.contains("Cluster") && dbg.contains("cluster"));
    }

    #[test]
    fn reused_distance_scratch_never_changes_an_outcome() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0, 1.0], &[0.1]),
            update(1, &[1.1, 0.9], &[0.1]),
            update(2, &[0.9, 1.1], &[0.1]),
            update(3, &[9.0, -9.0], &[4.0]),
        ];
        // A warm pipeline (scratch from round 1) must produce bitwise the
        // same round-2 outcome as a cold one.
        let mut warm = DefensePipeline::krum(1);
        let _ = warm.aggregate(&g, &u);
        let mut cold = DefensePipeline::krum(1);
        assert_eq!(warm.aggregate(&g, &u), cold.aggregate(&g, &u));
    }

    #[test]
    fn pipelines_clone_through_the_aggregator_box() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[2.0]), update(1, &[4.0], &[4.0])];
        let mut a: Box<dyn Aggregator> = Box::new(DefensePipeline::fedavg());
        let mut b = a.clone();
        assert_eq!(a.aggregate(&g, &u), b.aggregate(&g, &u));
        assert_eq!(a.name(), "FedAvg");
    }
}
