//! The shared, lazily-built quantities one defense round computes once.
//!
//! Every screening stage and combiner reads the same per-round facts —
//! update deltas, their norms, pairwise distances. Before the pipeline
//! redesign each monolithic aggregator recomputed its own copy (Krum its
//! distance set, clustering its delta flattening, the latent filter its
//! own delta-flatten pass). A [`RoundContext`] owns all of them behind
//! lazy cells: the first stage that needs a quantity pays for it, every
//! later stage reads it for free, and compositions like
//! `cluster → latent-screen` share one delta pass instead of two.

use crate::aggregate::DistanceMatrix;
use crate::update::ClientUpdate;
use rayon::prelude::*;
use safeloc_nn::{Matrix, NamedParams};
use std::borrow::Cow;
use std::sync::OnceLock;

/// Read-only facts about one aggregation round, built lazily and shared by
/// every [`DefenseStage`](crate::defense::DefenseStage) and
/// [`Combiner`](crate::defense::Combiner) in a pipeline.
///
/// The context never mutates updates; stages record their conclusions in
/// the round's [`Verdicts`](crate::defense::Verdicts) instead.
pub struct RoundContext<'a> {
    global: &'a NamedParams,
    updates: &'a [&'a ClientUpdate],
    deltas: OnceLock<Vec<Matrix>>,
    raw_norms: OnceLock<Vec<f32>>,
    squared_l2: OnceLock<DistanceMatrix>,
    cosine: OnceLock<DistanceMatrix>,
}

impl<'a> RoundContext<'a> {
    /// Wraps one round's global model and (guard-filtered) updates.
    pub fn new(global: &'a NamedParams, updates: &'a [&'a ClientUpdate]) -> Self {
        Self {
            global,
            updates,
            deltas: OnceLock::new(),
            raw_norms: OnceLock::new(),
            squared_l2: OnceLock::new(),
            cosine: OnceLock::new(),
        }
    }

    /// The current global model.
    pub fn global(&self) -> &NamedParams {
        self.global
    }

    /// The round's updates, in cohort order.
    pub fn updates(&self) -> &[&ClientUpdate] {
        self.updates
    }

    /// Number of updates in the round.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` when the round carries no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Flattened update deltas `LM_i − GM`, one `1 × num_params` row per
    /// update, computed in parallel on first use. This is the
    /// representation the clustering split and the latent projection both
    /// read.
    pub fn deltas(&self) -> &[Matrix] {
        self.deltas.get_or_init(|| {
            self.updates
                .par_iter()
                .map(|u| u.params.delta(self.global).flatten())
                .collect()
        })
    }

    /// L2 norm of each update's delta (the magnitude a norm-bounding stage
    /// screens, and the quantity a boost attack inflates).
    pub fn raw_norms(&self) -> &[f32] {
        self.raw_norms
            .get_or_init(|| self.deltas().iter().map(|d| d.l2_norm()).collect())
    }

    /// Pairwise squared-L2 distances between update parameters — the
    /// matrix Krum scores against, computed once per round.
    pub fn squared_l2(&self) -> &DistanceMatrix {
        self.squared_l2
            .get_or_init(|| DistanceMatrix::squared_l2(self.updates))
    }

    /// Pairwise cosine distances between update deltas — the metric the
    /// clustering split groups by.
    pub fn cosine(&self) -> &DistanceMatrix {
        self.cosine
            .get_or_init(|| DistanceMatrix::cosine(self.deltas()))
    }

    /// Update `i`'s parameters after applying a clip scale: the raw LM for
    /// `scale >= 1`, otherwise `GM + scale · (LM − GM)` (the norm-bounded
    /// update a clipping stage admits). Borrows in the unclipped fast path
    /// so canonical single-rule pipelines stay allocation-identical to the
    /// monoliths they replaced.
    pub fn effective_params(&self, i: usize, scale: f32) -> Cow<'_, NamedParams> {
        if scale >= 1.0 {
            Cow::Borrowed(&self.updates[i].params)
        } else {
            let mut p = self.global.scale(1.0 - scale);
            p.axpy(scale, &self.updates[i].params);
            Cow::Owned(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::test_support::{params, update};

    #[test]
    fn deltas_and_norms_match_direct_computation() {
        let g = params(&[1.0, 1.0], &[0.0]);
        let u = [
            update(0, &[2.0, 1.0], &[0.0]),
            update(1, &[1.0, 4.0], &[3.0]),
        ];
        let refs: Vec<&ClientUpdate> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.deltas()[0].as_slice(), &[1.0, 0.0, 0.0]);
        assert_eq!(ctx.deltas()[1].as_slice(), &[0.0, 3.0, 3.0]);
        let expected: f32 = (9.0f32 + 9.0).sqrt();
        assert!((ctx.raw_norms()[1] - expected).abs() < 1e-6);
        // Distance matrices agree with the direct constructors.
        assert_eq!(*ctx.squared_l2(), DistanceMatrix::squared_l2(&refs));
    }

    #[test]
    fn effective_params_borrows_unclipped_and_interpolates_clipped() {
        let g = params(&[0.0], &[0.0]);
        let u = [update(0, &[4.0], &[8.0])];
        let refs: Vec<&ClientUpdate> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        assert!(matches!(ctx.effective_params(0, 1.0), Cow::Borrowed(_)));
        let half = ctx.effective_params(0, 0.5);
        assert_eq!(half.get("layer0.w").unwrap().get(0, 0), 2.0);
        assert_eq!(half.get("layer0.b").unwrap().get(0, 0), 4.0);
    }
}
