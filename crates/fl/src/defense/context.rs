//! The shared, lazily-built quantities one defense round computes once.
//!
//! Every screening stage and combiner reads the same per-round facts —
//! update deltas, their norms, pairwise distances. Before the pipeline
//! redesign each monolithic aggregator recomputed its own copy (Krum its
//! distance set, clustering its delta flattening, the latent filter its
//! own delta-flatten pass). A [`RoundContext`] owns all of them behind
//! lazy cells: the first stage that needs a quantity pays for it, every
//! later stage reads it for free, and compositions like
//! `cluster → latent-screen` share one delta pass instead of two.
//!
//! # Exact vs. sampled screening distances
//!
//! Rounds of up to [`EXACT_SCREEN_MAX`] updates use the exact distance
//! paths — every pair over every coordinate, bitwise-pinned by
//! `tests/round_lifecycle.rs` (every paper-scale cohort is far below the
//! threshold). Larger rounds switch to a *sampled* estimate: each delta is
//! reduced to a deterministic stride subsample of
//! [`SCREEN_SAMPLE_DIM`] coordinates laid out as one contiguous `n × d′`
//! block, pairwise distances are computed blockwise on it, and squared-L2
//! values are rescaled by `d/d′` (cosine needs no rescale — both norms
//! shrink together). No RNG is involved, so sampled rounds stay
//! bitwise-identical for any thread count. This keeps Krum/Cluster-style
//! screening `O(n²·d′)` instead of `O(n²·d)` at city-scale cohorts.
//!
//! # Buffer reuse
//!
//! The O(n²) distance triangles are the round's largest screening
//! allocations; a [`DistanceScratch`] carries them across rounds
//! ([`RoundContext::with_scratch`] → [`RoundContext::reclaim_scratch`]),
//! so steady-state rounds reallocate nothing. Reuse never changes a
//! value — warm-scratch rounds are bitwise-identical to cold ones.

use crate::aggregate::DistanceMatrix;
use crate::update::ClientUpdate;
use rayon::prelude::*;
use safeloc_nn::{Matrix, NamedParams};
use std::borrow::Cow;
use std::sync::{Mutex, OnceLock};

/// Largest round screened through the exact distance paths; bigger rounds
/// use the deterministic coordinate subsample (see the module docs).
pub const EXACT_SCREEN_MAX: usize = 64;

/// Coordinate budget per update for sampled screening distances.
pub const SCREEN_SAMPLE_DIM: usize = 2048;

/// Reusable buffers for the per-round O(n²) distance triangles, carried
/// across rounds by the owning pipeline.
#[derive(Debug, Default, Clone)]
pub struct DistanceScratch {
    squared_l2: Vec<f32>,
    cosine: Vec<f32>,
}

/// The `n × d′` stride-subsampled delta block sampled screening computes
/// distances on.
struct SampledDeltas {
    rows: Vec<f32>,
    d_prime: usize,
    /// `d / d′` — the unbiased rescale for sampled squared distances.
    scale: f32,
}

/// Read-only facts about one aggregation round, built lazily and shared by
/// every [`DefenseStage`](crate::defense::DefenseStage) and
/// [`Combiner`](crate::defense::Combiner) in a pipeline.
///
/// The context never mutates updates; stages record their conclusions in
/// the round's [`Verdicts`](crate::defense::Verdicts) instead.
pub struct RoundContext<'a> {
    global: &'a NamedParams,
    updates: &'a [&'a ClientUpdate],
    deltas: OnceLock<Vec<Matrix>>,
    raw_norms: OnceLock<Vec<f32>>,
    squared_l2: OnceLock<DistanceMatrix>,
    cosine: OnceLock<DistanceMatrix>,
    sampled: OnceLock<SampledDeltas>,
    scratch: Mutex<DistanceScratch>,
}

impl<'a> RoundContext<'a> {
    /// Wraps one round's global model and (guard-filtered) updates.
    pub fn new(global: &'a NamedParams, updates: &'a [&'a ClientUpdate]) -> Self {
        Self::with_scratch(global, updates, DistanceScratch::default())
    }

    /// [`new`](Self::new), reusing a previous round's distance buffers.
    pub fn with_scratch(
        global: &'a NamedParams,
        updates: &'a [&'a ClientUpdate],
        scratch: DistanceScratch,
    ) -> Self {
        Self {
            global,
            updates,
            deltas: OnceLock::new(),
            raw_norms: OnceLock::new(),
            squared_l2: OnceLock::new(),
            cosine: OnceLock::new(),
            sampled: OnceLock::new(),
            scratch: Mutex::new(scratch),
        }
    }

    /// Dismantles the context, handing its distance buffers back for the
    /// next round.
    pub fn reclaim_scratch(self) -> DistanceScratch {
        let mut scratch = self.scratch.into_inner().expect("scratch lock poisoned");
        if let Some(m) = self.squared_l2.into_inner() {
            scratch.squared_l2 = m.into_values();
        }
        if let Some(m) = self.cosine.into_inner() {
            scratch.cosine = m.into_values();
        }
        scratch
    }

    /// The current global model.
    pub fn global(&self) -> &NamedParams {
        self.global
    }

    /// The round's updates, in cohort order.
    pub fn updates(&self) -> &[&ClientUpdate] {
        self.updates
    }

    /// Number of updates in the round.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` when the round carries no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Flattened update deltas `LM_i − GM`, one `1 × num_params` row per
    /// update, computed in parallel on first use. This is the
    /// representation the clustering split and the latent projection both
    /// read.
    pub fn deltas(&self) -> &[Matrix] {
        self.deltas.get_or_init(|| {
            self.updates
                .par_iter()
                .map(|u| u.params.delta(self.global).flatten())
                .collect()
        })
    }

    /// L2 norm of each update's delta (the magnitude a norm-bounding stage
    /// screens, and the quantity a boost attack inflates).
    pub fn raw_norms(&self) -> &[f32] {
        self.raw_norms
            .get_or_init(|| self.deltas().iter().map(|d| d.l2_norm()).collect())
    }

    /// Pairwise squared-L2 distances between update parameters — the
    /// matrix Krum scores against, computed once per round. Exact up to
    /// [`EXACT_SCREEN_MAX`] updates, a `d/d′`-rescaled blockwise estimate
    /// on the coordinate subsample above it (see the module docs).
    pub fn squared_l2(&self) -> &DistanceMatrix {
        self.squared_l2.get_or_init(|| {
            let scratch = std::mem::take(&mut self.lock_scratch().squared_l2);
            if self.updates.len() <= EXACT_SCREEN_MAX {
                return DistanceMatrix::squared_l2_into(self.updates, scratch);
            }
            let s = self.sampled();
            let (rows, d_prime, scale) = (&s.rows, s.d_prime, s.scale);
            DistanceMatrix::build_into(self.updates.len(), scratch, |i, j| {
                let a = &rows[i * d_prime..(i + 1) * d_prime];
                let b = &rows[j * d_prime..(j + 1) * d_prime];
                let sum: f32 = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| {
                        let d = x - y;
                        d * d
                    })
                    .sum();
                sum * scale
            })
        })
    }

    /// Pairwise cosine distances between update deltas — the metric the
    /// clustering split groups by. Exact up to [`EXACT_SCREEN_MAX`]
    /// updates, blockwise on the coordinate subsample above it (cosine
    /// needs no rescale — both norms shrink with the sample).
    pub fn cosine(&self) -> &DistanceMatrix {
        self.cosine.get_or_init(|| {
            let scratch = std::mem::take(&mut self.lock_scratch().cosine);
            if self.updates.len() <= EXACT_SCREEN_MAX {
                return DistanceMatrix::cosine_into(self.deltas(), scratch);
            }
            let s = self.sampled();
            let (rows, d_prime) = (&s.rows, s.d_prime);
            let norms: Vec<f32> = rows
                .chunks(d_prime)
                .map(|r| r.iter().map(|&v| v * v).sum::<f32>().sqrt())
                .collect();
            DistanceMatrix::build_into(self.updates.len(), scratch, |i, j| {
                let denom = norms[i] * norms[j];
                if denom == 0.0 {
                    return 1.0;
                }
                let a = &rows[i * d_prime..(i + 1) * d_prime];
                let b = &rows[j * d_prime..(j + 1) * d_prime];
                let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                1.0 - dot / denom
            })
        })
    }

    fn lock_scratch(&self) -> std::sync::MutexGuard<'_, DistanceScratch> {
        self.scratch.lock().expect("scratch lock poisoned")
    }

    /// The `n × d′` subsampled delta block (built once). Coordinates are a
    /// deterministic stride `⌊j·d/d′⌋` over each flattened delta, so two
    /// runs — at any thread count — sample identical coordinates.
    fn sampled(&self) -> &SampledDeltas {
        self.sampled.get_or_init(|| {
            let d = self.global.num_params().max(1);
            let d_prime = d.min(SCREEN_SAMPLE_DIM);
            let per_update: Vec<Vec<f32>> = self
                .updates
                .par_iter()
                .map(|u| {
                    let flat = u.params.delta(self.global).flatten();
                    let s = flat.as_slice();
                    // `get` only misses for a zero-parameter model (d was
                    // clamped to 1); its "delta" samples as zero.
                    (0..d_prime)
                        .map(|j| s.get(j * d / d_prime).copied().unwrap_or(0.0))
                        .collect()
                })
                .collect();
            let mut rows = Vec::with_capacity(self.updates.len() * d_prime);
            for r in per_update {
                rows.extend(r);
            }
            SampledDeltas {
                rows,
                d_prime,
                scale: d as f32 / d_prime as f32,
            }
        })
    }

    /// Update `i`'s parameters after applying a clip scale: the raw LM for
    /// `scale >= 1`, otherwise `GM + scale · (LM − GM)` (the norm-bounded
    /// update a clipping stage admits). Borrows in the unclipped fast path
    /// so canonical single-rule pipelines stay allocation-identical to the
    /// monoliths they replaced.
    pub fn effective_params(&self, i: usize, scale: f32) -> Cow<'_, NamedParams> {
        if scale >= 1.0 {
            Cow::Borrowed(&self.updates[i].params)
        } else {
            let mut p = self.global.scale(1.0 - scale);
            p.axpy(scale, &self.updates[i].params);
            Cow::Owned(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::test_support::{params, update};

    #[test]
    fn deltas_and_norms_match_direct_computation() {
        let g = params(&[1.0, 1.0], &[0.0]);
        let u = [
            update(0, &[2.0, 1.0], &[0.0]),
            update(1, &[1.0, 4.0], &[3.0]),
        ];
        let refs: Vec<&ClientUpdate> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.deltas()[0].as_slice(), &[1.0, 0.0, 0.0]);
        assert_eq!(ctx.deltas()[1].as_slice(), &[0.0, 3.0, 3.0]);
        let expected: f32 = (9.0f32 + 9.0).sqrt();
        assert!((ctx.raw_norms()[1] - expected).abs() < 1e-6);
        // Distance matrices agree with the direct constructors.
        assert_eq!(*ctx.squared_l2(), DistanceMatrix::squared_l2(&refs));
    }

    #[test]
    fn warm_scratch_rounds_are_bitwise_identical_to_cold_ones() {
        let g = params(&[0.5, -0.5], &[0.1]);
        let u: Vec<ClientUpdate> = (0..6)
            .map(|i| {
                let v = i as f32 * 0.3 - 1.0;
                update(i, &[v, -v], &[v * 0.5])
            })
            .collect();
        let refs: Vec<&ClientUpdate> = u.iter().collect();

        let cold = RoundContext::new(&g, &refs);
        let cold_l2 = cold.squared_l2().clone();
        let cold_cos = cold.cosine().clone();
        let scratch = cold.reclaim_scratch();

        let warm = RoundContext::with_scratch(&g, &refs, scratch);
        assert_eq!(*warm.squared_l2(), cold_l2, "warm L2 diverged");
        assert_eq!(*warm.cosine(), cold_cos, "warm cosine diverged");
    }

    /// Large rounds over a model no wider than the sample budget: the
    /// stride subsample is the identity, so the sampled estimate must
    /// agree with the exact metric (up to f32 summation order).
    #[test]
    fn sampled_distances_match_exact_when_the_sample_covers_every_coordinate() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let n = EXACT_SCREEN_MAX + 3;
        let u: Vec<ClientUpdate> = (0..n)
            .map(|i| {
                let v = (i as f32 * 0.137).sin();
                update(i, &[v, v * 0.5], &[-v])
            })
            .collect();
        let refs: Vec<&ClientUpdate> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        let sampled_l2 = ctx.squared_l2();
        let sampled_cos = ctx.cosine();
        let exact_l2 = DistanceMatrix::squared_l2(&refs);
        let exact_cos = DistanceMatrix::cosine(
            &refs
                .iter()
                .map(|r| r.params.delta(&g).flatten())
                .collect::<Vec<_>>(),
        );
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (sampled_l2.get(i, j) - exact_l2.get(i, j)).abs() < 1e-5,
                    "L2 ({i},{j}): {} vs {}",
                    sampled_l2.get(i, j),
                    exact_l2.get(i, j)
                );
                assert!(
                    (sampled_cos.get(i, j) - exact_cos.get(i, j)).abs() < 1e-5,
                    "cos ({i},{j}): {} vs {}",
                    sampled_cos.get(i, j),
                    exact_cos.get(i, j)
                );
            }
        }
    }

    #[test]
    fn rounds_at_the_threshold_take_the_exact_path_bitwise() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u: Vec<ClientUpdate> = (0..EXACT_SCREEN_MAX)
            .map(|i| {
                let v = (i as f32 * 0.731).cos();
                update(i, &[v, -v], &[v * 2.0])
            })
            .collect();
        let refs: Vec<&ClientUpdate> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        assert_eq!(
            *ctx.squared_l2(),
            DistanceMatrix::squared_l2(&refs),
            "threshold rounds must stay on the exact, pinned path"
        );
    }

    #[test]
    fn effective_params_borrows_unclipped_and_interpolates_clipped() {
        let g = params(&[0.0], &[0.0]);
        let u = [update(0, &[4.0], &[8.0])];
        let refs: Vec<&ClientUpdate> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        assert!(matches!(ctx.effective_params(0, 1.0), Cow::Borrowed(_)));
        let half = ctx.effective_params(0, 0.5);
        assert_eq!(half.get("layer0.w").unwrap().get(0, 0), 2.0);
        assert_eq!(half.get("layer0.b").unwrap().get(0, 0), 4.0);
    }
}
