//! Generic screening stages usable in any pipeline composition.

use crate::aggregate::NON_FINITE_RULE;
use crate::defense::{DefenseStage, RoundContext, Verdicts};

/// Rejects updates carrying NaN/Inf weights with the shared
/// [`NON_FINITE_RULE`] name.
///
/// The [`Aggregator::aggregate`](crate::Aggregator::aggregate) entry point
/// already applies this guard before any pipeline runs, so inside a
/// framework the stage is a no-op; it exists so spec-built pipelines are
/// self-contained when driven directly (tests, offline update audits).
#[derive(Debug, Clone, Copy, Default)]
pub struct NonFiniteGuard;

impl DefenseStage for NonFiniteGuard {
    fn name(&self) -> &'static str {
        NON_FINITE_RULE
    }

    fn screen(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) {
        for (i, u) in ctx.updates().iter().enumerate() {
            if verdicts.is_active(i) && u.params.has_non_finite() {
                verdicts.reject(i, NON_FINITE_RULE, 1.0);
            }
        }
    }

    fn clone_stage(&self) -> Box<dyn DefenseStage> {
        Box::new(*self)
    }
}

/// Norm bounding (the classic defense against boosted model-replacement
/// attacks): caps every update's delta norm at `multiple ×` the round's
/// benign norm scale, shrinking — never rejecting — oversized updates.
///
/// The reference scale is the *lower median* of the active updates'
/// delta norms: boost attacks only ever inflate norms, so when a
/// contaminated round has an even split the smaller middle value is the
/// benign one. An update whose norm exceeds `multiple × reference` gets
/// clip scale `reference · multiple / norm`, i.e. its effective update
/// becomes `GM + scale · (LM − GM)` at exactly the cap. Any positive
/// `multiple` is honored as written — values below 1 shrink even
/// sub-median updates toward the GM; non-positive values disable the
/// stage (nothing is clipped) rather than zeroing the round.
#[derive(Debug, Clone, Copy)]
pub struct NormClip {
    /// Cap as a multiple of the round's lower-median delta norm
    /// (non-positive disables clipping).
    pub multiple: f32,
}

impl NormClip {
    /// Clips at `multiple ×` the round's lower-median delta norm.
    pub fn new(multiple: f32) -> Self {
        Self { multiple }
    }
}

impl Default for NormClip {
    fn default() -> Self {
        // A model-replacement attacker boosts by n_clients / n_attackers,
        // ≥ 3 for any minority attacker in the paper's fleets.
        Self::new(3.0)
    }
}

impl DefenseStage for NormClip {
    fn name(&self) -> &'static str {
        "norm-clip"
    }

    fn screen(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) {
        let active = verdicts.active_indices();
        if active.len() < 2 {
            // A lone update defines its own scale; nothing to bound
            // against.
            return;
        }
        let norms = ctx.raw_norms();
        let mut active_norms: Vec<f32> = active.iter().map(|&i| norms[i]).collect();
        active_norms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let reference = active_norms[(active_norms.len() - 1) / 2];
        let cap = self.multiple * reference;
        if cap <= 0.0 {
            // A non-positive multiple, or a degenerate round whose
            // lower-median norm is 0 (most updates identical to the GM):
            // decline to clip rather than zeroing every update.
            return;
        }
        for &i in &active {
            if norms[i] > cap {
                verdicts.clip(i, cap / norms[i]);
            }
        }
    }

    fn clone_stage(&self) -> Box<dyn DefenseStage> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::test_support::{params, update};
    use crate::defense::{DefensePipeline, UniformMean};
    use crate::Aggregator;

    #[test]
    fn non_finite_guard_rejects_only_bad_updates() {
        let g = params(&[0.0], &[0.0]);
        let u = [update(0, &[1.0], &[1.0]), update(1, &[f32::NAN], &[0.0])];
        let refs: Vec<_> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        let mut v = Verdicts::new(2);
        NonFiniteGuard.screen(&ctx, &mut v);
        assert_eq!(v.active_indices(), vec![0]);
    }

    #[test]
    fn norm_clip_caps_the_boosted_update_and_spares_honest_ones() {
        let g = params(&[0.0, 0.0], &[0.0]);
        // Three honest updates around norm ~1.4, one 100x boost.
        let u = vec![
            update(0, &[1.0, 1.0], &[0.0]),
            update(1, &[1.1, 0.9], &[0.0]),
            update(2, &[0.9, 1.1], &[0.0]),
            update(3, &[100.0, 100.0], &[0.0]),
        ];
        let mut p = DefensePipeline::new(
            "norm-clip+mean",
            vec![Box::new(NormClip::new(3.0))],
            Box::new(UniformMean),
        );
        let out = p.aggregate(&g, &u);
        // Nothing is rejected — clipping is a soft defense.
        assert_eq!(out.accepted(), 4);
        // The mean sits near the honest consensus instead of being dragged
        // to ~25 by the boosted update: its contribution is capped at 3x
        // the benign norm.
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w < 2.0, "boosted update dragged the mean to {w}");
        assert!(w > 0.9, "honest signal lost: {w}");
    }

    /// Spec-swept multiples must mean what they say: a sub-1 multiple
    /// shrinks even sub-median updates, and a non-positive multiple
    /// disables the stage — neither silently degenerates into another
    /// configuration's behavior.
    #[test]
    fn norm_clip_honors_sub_one_and_non_positive_multiples() {
        let g = params(&[0.0], &[0.0]);
        let u = [
            update(0, &[1.0], &[0.0]),
            update(1, &[2.0], &[0.0]),
            update(2, &[4.0], &[0.0]),
        ];
        let refs: Vec<_> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        // Lower-median norm is 2; multiple 0.5 caps at 1: the norm-1
        // update is untouched, the others shrink to exactly the cap.
        let mut v = Verdicts::new(3);
        NormClip::new(0.5).screen(&ctx, &mut v);
        assert_eq!(v.scale(0), 1.0);
        assert!((v.scale(1) - 0.5).abs() < 1e-6);
        assert!((v.scale(2) - 0.25).abs() < 1e-6);
        // Non-positive multiple: no clipping at all.
        let mut v = Verdicts::new(3);
        NormClip::new(0.0).screen(&ctx, &mut v);
        assert!((0..3).all(|i| v.scale(i) == 1.0));
    }

    #[test]
    fn norm_clip_leaves_homogeneous_rounds_untouched() {
        let g = params(&[0.0], &[0.0]);
        let u = [update(0, &[1.0], &[0.0]), update(1, &[1.1], &[0.0])];
        let refs: Vec<_> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        let mut v = Verdicts::new(2);
        NormClip::default().screen(&ctx, &mut v);
        assert_eq!(v.scale(0), 1.0);
        assert_eq!(v.scale(1), 1.0);
    }

    #[test]
    fn norm_clip_ignores_zero_norm_rounds() {
        let g = params(&[1.0], &[1.0]);
        let u = [
            update(0, &[1.0], &[1.0]),
            update(1, &[1.0], &[1.0]),
            update(2, &[9.0], &[1.0]),
        ];
        let refs: Vec<_> = u.iter().collect();
        let ctx = RoundContext::new(&g, &refs);
        let mut v = Verdicts::new(3);
        NormClip::default().screen(&ctx, &mut v);
        // Lower-median norm is 0 (two updates identical to the GM): the
        // cap degenerates and the stage declines to clip rather than
        // zeroing every update.
        assert_eq!(v.scale(2), 1.0);
    }
}
