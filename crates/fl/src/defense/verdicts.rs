//! The mutable per-update state a defense pipeline threads through its
//! stages: who is still in the round, who was rejected by which rule at
//! what score, and what clip scale survivors carry.

use crate::defense::RoundContext;
use crate::report::UpdateDecision;
use safeloc_nn::NamedParams;
use std::borrow::Cow;

/// One update's standing inside a running pipeline.
#[derive(Debug, Clone, PartialEq)]
enum Standing {
    /// Still in the round; `weight` is the acceptance weight the combiner
    /// assigns (0 until it runs).
    Active {
        /// Acceptance weight recorded in the final decision.
        weight: f32,
    },
    /// Excluded by a stage or the combiner.
    Rejected {
        /// Name of the rejecting rule.
        rule: String,
        /// The rule's anomaly score.
        score: f32,
    },
}

/// Per-update verdicts of a defense round: stages reject and clip, the
/// combiner weights, and [`Verdicts::into_decisions`] renders the trail
/// [`RoundReport`](crate::RoundReport)s are assembled from.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdicts {
    standings: Vec<Standing>,
    scales: Vec<f32>,
}

impl Verdicts {
    /// All-active verdicts for a round of `n` updates.
    pub fn new(n: usize) -> Self {
        Self {
            standings: vec![Standing::Active { weight: 0.0 }; n],
            scales: vec![1.0; n],
        }
    }

    /// Number of updates the verdicts cover.
    pub fn len(&self) -> usize {
        self.standings.len()
    }

    /// `true` when the verdicts cover no updates.
    pub fn is_empty(&self) -> bool {
        self.standings.is_empty()
    }

    /// `true` while update `i` is still in the round.
    pub fn is_active(&self, i: usize) -> bool {
        matches!(self.standings[i], Standing::Active { .. })
    }

    /// Indices of the updates still in the round, ascending.
    pub fn active_indices(&self) -> Vec<usize> {
        (0..self.standings.len())
            .filter(|&i| self.is_active(i))
            .collect()
    }

    /// Number of updates still in the round.
    pub fn active_count(&self) -> usize {
        self.standings
            .iter()
            .filter(|s| matches!(s, Standing::Active { .. }))
            .count()
    }

    /// Number of rejected updates.
    pub fn rejected_count(&self) -> usize {
        self.standings.len() - self.active_count()
    }

    /// Excludes update `i` with the rejecting rule's name and score. A
    /// no-op if an earlier stage already rejected it — the first rejection
    /// owns the decision trail.
    pub fn reject(&mut self, i: usize, rule: &str, score: f32) {
        if self.is_active(i) {
            self.standings[i] = Standing::Rejected {
                rule: rule.to_string(),
                score,
            };
        }
    }

    /// Caps update `i`'s influence: its effective parameters become
    /// `GM + scale · (LM − GM)`. Scales compose multiplicatively across
    /// stages and clamp to `[0, 1]`.
    pub fn clip(&mut self, i: usize, scale: f32) {
        self.scales[i] = (self.scales[i] * scale.clamp(0.0, 1.0)).clamp(0.0, 1.0);
    }

    /// Update `i`'s accumulated clip scale (1 when never clipped).
    pub fn scale(&self, i: usize) -> f32 {
        self.scales[i]
    }

    /// Sets the acceptance weight the combiner grants active update `i`.
    /// No-op on rejected updates.
    pub fn set_weight(&mut self, i: usize, weight: f32) {
        if let Standing::Active { weight: w } = &mut self.standings[i] {
            *w = weight;
        }
    }

    /// Update `i`'s parameters with its clip scale applied (see
    /// [`RoundContext::effective_params`]).
    pub fn effective<'c>(&self, ctx: &'c RoundContext<'_>, i: usize) -> Cow<'c, NamedParams> {
        ctx.effective_params(i, self.scales[i])
    }

    /// Renders the final per-update decision trail, in update order.
    pub fn into_decisions(self) -> Vec<UpdateDecision> {
        self.standings
            .into_iter()
            .map(|s| match s {
                Standing::Active { weight } => UpdateDecision::Accepted { weight },
                Standing::Rejected { rule, score } => UpdateDecision::Rejected { rule, score },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_is_first_writer_wins() {
        let mut v = Verdicts::new(3);
        v.reject(1, "norm", 2.0);
        v.reject(1, "krum", 9.0);
        assert_eq!(v.active_indices(), vec![0, 2]);
        assert_eq!(v.active_count(), 2);
        assert_eq!(v.rejected_count(), 1);
        let d = v.into_decisions();
        assert_eq!(
            d[1],
            UpdateDecision::Rejected {
                rule: "norm".into(),
                score: 2.0
            }
        );
    }

    #[test]
    fn clip_scales_compose_and_clamp() {
        let mut v = Verdicts::new(1);
        v.clip(0, 0.5);
        v.clip(0, 0.5);
        assert!((v.scale(0) - 0.25).abs() < 1e-6);
        v.clip(0, 7.0); // clamped to 1: cannot boost
        assert!((v.scale(0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn weights_only_land_on_active_updates() {
        let mut v = Verdicts::new(2);
        v.reject(0, "x", 1.0);
        v.set_weight(0, 0.9);
        v.set_weight(1, 0.4);
        let d = v.into_decisions();
        assert!(!d[0].is_accepted());
        assert_eq!(d[1], UpdateDecision::Accepted { weight: 0.4 });
    }
}
