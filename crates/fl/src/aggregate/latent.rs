//! FEDLS-style latent-space anomaly filtering.

use super::Aggregator;
use crate::report::{AggregationOutcome, UpdateDecision};
use crate::update::ClientUpdate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use safeloc_nn::{
    Activation, Adam, Dense, Init, Matrix, MseLoss, NamedParams, Optimizer, Sequential,
};

/// Latent-space update filtering, following the paper's §II summary of
/// FEDLS: "autoencoder-based latent space representations to detect
/// anomalous LM updates".
///
/// Update deltas are random-projected to a small feature space (the deltas
/// have tens of thousands of dimensions; FEDLS's own encoder serves the
/// same role), an autoencoder is fit on the round's features, and updates
/// whose reconstruction error exceeds `mean + z_threshold·std` are dropped
/// before federated averaging.
///
/// This is the "resource-intensive" baseline of Table I: it runs a second,
/// large model server-side every round.
#[derive(Debug, Clone)]
pub struct LatentFilterAggregator {
    /// Random-projection feature dimension.
    pub feature_dim: usize,
    /// Autoencoder training epochs per round.
    pub ae_epochs: usize,
    /// Rejection threshold in standard deviations above the mean RCE.
    pub z_threshold: f32,
    /// Seed for the projection and AE init.
    pub seed: u64,
    projection: Option<Matrix>,
    /// Feature rows of previously *accepted* updates: the AE is trained on
    /// this benign history, not on the round under test — otherwise a small
    /// round lets the AE memorize the outlier it is supposed to flag.
    history: Vec<Vec<f32>>,
}

impl LatentFilterAggregator {
    /// Creates the aggregator with sensible defaults (32-d features, 60
    /// epochs, 1.8σ rejection).
    pub fn new(seed: u64) -> Self {
        Self {
            feature_dim: 32,
            ae_epochs: 60,
            z_threshold: 1.8,
            seed,
            projection: None,
            history: Vec::new(),
        }
    }

    /// Builds (or rebuilds on dimension change) the random projection and
    /// returns it, so callers can project many updates in parallel against
    /// one shared matrix.
    fn projection_for(&mut self, d: usize) -> &Matrix {
        if self
            .projection
            .as_ref()
            .map(|p| p.rows() != d)
            .unwrap_or(true)
        {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9801_77CE);
            let scale = (1.0 / self.feature_dim as f32).sqrt();
            self.projection = Some(Init::Uniform(scale).matrix(d, self.feature_dim, &mut rng));
        }
        self.projection.as_ref().expect("just built")
    }
}

impl Aggregator for LatentFilterAggregator {
    fn aggregate_filtered(
        &mut self,
        global: &NamedParams,
        updates: &[&ClientUpdate],
    ) -> AggregationOutcome {
        if updates.len() < 3 {
            let snaps: Vec<NamedParams> = updates.iter().map(|u| u.params.clone()).collect();
            return AggregationOutcome::all_accepted(NamedParams::mean(&snaps), updates.len());
        }

        // Feature matrix: one row per update, scaled by the round's median
        // row norm so magnitudes stay comparable across rounds while
        // preserving outlier magnitude *within* the round. Each update's
        // delta-flatten-project chain is independent, so the fleet is
        // projected in parallel against the shared projection matrix.
        let projection = self.projection_for(global.num_params());
        let raw_rows: Vec<Vec<f32>> = updates
            .par_iter()
            .map(|u| {
                let flat = u.params.delta(global).flatten();
                flat.matmul(projection).into_vec()
            })
            .collect();
        let mut norms: Vec<f32> = raw_rows
            .iter()
            .map(|r| r.iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect();
        norms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median_norm = norms[norms.len() / 2].max(1e-9);
        let rows: Vec<Vec<f32>> = raw_rows
            .iter()
            .map(|r| r.iter().map(|v| v / median_norm).collect())
            .collect();
        let features = Matrix::from_rows(&rows);

        // Anomaly score per update: while the benign history is short, use a
        // robust distance to the round's coordinate-wise median; afterwards,
        // the reconstruction error of an AE trained on the accepted history
        // (FEDLS's latent-space detector proper).
        let scores: Vec<f32> = if self.history.len() < 4 {
            let cols = features.cols();
            let mut median = vec![0.0f32; cols];
            for (c, m) in median.iter_mut().enumerate() {
                let mut col: Vec<f32> = (0..features.rows()).map(|r| features.get(r, c)).collect();
                col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                *m = col[col.len() / 2];
            }
            (0..features.rows())
                .map(|r| {
                    features
                        .row(r)
                        .iter()
                        .zip(&median)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                        .sqrt()
                })
                .collect()
        } else {
            let hist = Matrix::from_rows(&self.history);
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xAE0);
            let f = self.feature_dim;
            let ae = vec![
                Dense::new(f, f / 2, Init::HeUniform, &mut rng),
                Dense::new(f / 2, f, Init::HeUniform, &mut rng),
            ];
            let mut ae = Sequential::from_layers(ae, vec![Activation::Relu, Activation::Identity]);
            let mut opt = Adam::new(5e-3);
            for _ in 0..self.ae_epochs {
                let trace = ae.forward_trace(&hist);
                let grad = MseLoss.grad(trace.output(), &hist);
                let grads = ae.backward(&trace, &grad).into_flat();
                use safeloc_nn::HasParams;
                opt.step(ae.param_tensors_mut(), &grads);
            }
            let recon = ae.forward(&features);
            MseLoss.per_row(&recon, &features)
        };

        let mean = scores.iter().sum::<f32>() / scores.len() as f32;
        let var = scores.iter().map(|r| (r - mean) * (r - mean)).sum::<f32>() / scores.len() as f32;
        let std = var.sqrt();
        let threshold = mean + self.z_threshold * std.max(1e-12);

        let mut kept: Vec<NamedParams> = Vec::new();
        let mut kept_slots: Vec<bool> = Vec::with_capacity(updates.len());
        for ((u, row), &score) in updates.iter().zip(&rows).zip(&scores) {
            let keep = score <= threshold;
            kept_slots.push(keep);
            if keep {
                kept.push(u.params.clone());
                self.history.push(row.clone());
            }
        }
        // Bound the benign history.
        if self.history.len() > 60 {
            let excess = self.history.len() - 60;
            self.history.drain(..excess);
        }
        let weight = 1.0 / kept.len().max(1) as f32;
        let decisions = kept_slots
            .into_iter()
            .zip(&scores)
            .map(|(keep, &score)| {
                if keep {
                    UpdateDecision::Accepted { weight }
                } else {
                    UpdateDecision::Rejected {
                        rule: "latent".to_string(),
                        score,
                    }
                }
            })
            .collect();
        let params = if kept.is_empty() {
            global.clone()
        } else {
            NamedParams::mean(&kept)
        };
        AggregationOutcome { params, decisions }
    }

    fn name(&self) -> &'static str {
        "LatentFilter"
    }

    fn clone_box(&self) -> Box<dyn Aggregator> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    use super::*;

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[1.0], &[1.0]);
        assert_eq!(LatentFilterAggregator::new(0).aggregate(&g, &[]).params, g);
    }

    #[test]
    fn small_rounds_average() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[0.0]), update(1, &[4.0], &[0.0])];
        let out = LatentFilterAggregator::new(0).aggregate(&g, &u);
        assert!((out.params.get("layer0.w").unwrap().get(0, 0) - 3.0).abs() < 1e-5);
        assert_eq!(out.accepted(), 2);
    }

    #[test]
    fn gross_outlier_is_filtered_and_scored() {
        let g = params(&[0.0, 0.0, 0.0, 0.0], &[0.0]);
        let mut u = vec![
            update(0, &[1.0, 1.0, 1.0, 1.0], &[0.1]),
            update(1, &[1.1, 0.9, 1.0, 1.05], &[0.1]),
            update(2, &[0.95, 1.05, 0.98, 1.0], &[0.1]),
            update(3, &[1.02, 1.0, 1.03, 0.97], &[0.1]),
        ];
        u.push(update(4, &[-80.0, 90.0, -70.0, 60.0], &[5.0]));
        let out = LatentFilterAggregator::new(1).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w.abs() < 5.0, "outlier leaked: {w}");
        match &out.decisions[4] {
            UpdateDecision::Rejected { rule, score } => {
                assert_eq!(rule, "latent");
                assert!(score.is_finite());
            }
            other => panic!("outlier accepted: {other:?}"),
        }
    }

    #[test]
    fn homogeneous_updates_mostly_survive() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u: Vec<_> = (0..6)
            .map(|i| update(i, &[1.0 + i as f32 * 0.01, 1.0], &[0.2]))
            .collect();
        let out = LatentFilterAggregator::new(2).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.9..=1.1).contains(&w), "homogeneous mean off: {w}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u: Vec<_> = (0..5)
            .map(|i| update(i, &[i as f32, 1.0], &[0.0]))
            .collect();
        let a = LatentFilterAggregator::new(7).aggregate(&g, &u);
        let b = LatentFilterAggregator::new(7).aggregate(&g, &u);
        assert_eq!(a, b);
    }
}
